"""Full-threshold additive secret sharing with SPDZ-style MACs.

A secret x is split into n shares summing to x; *all* n shares are required
to reconstruct, so the scheme tolerates n-1 colluding nodes.  Active security
(with abort) comes from information-theoretic MACs: a global key alpha is
itself additively shared, and every shared value x carries a sharing of
``alpha * x``.  When a value is opened, parties check the MAC relation; any
tampering with shares makes the check fail with overwhelming probability.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.errors import IntegrityError, SMPCError
from repro.smpc.field import PRIME, FieldVector, vector_sum


@dataclass
class AdditiveShared:
    """An additively shared vector with MAC shares (one entry per party)."""

    shares: list[FieldVector]
    macs: list[FieldVector]

    def __post_init__(self) -> None:
        if len(self.shares) != len(self.macs):
            raise SMPCError("share/MAC party-count mismatch")
        lengths = {len(s) for s in self.shares} | {len(m) for m in self.macs}
        if len(lengths) != 1:
            raise SMPCError("ragged additive sharing")

    @property
    def n_parties(self) -> int:
        return len(self.shares)

    def __len__(self) -> int:
        return len(self.shares[0])


def share_alpha(n_parties: int, rng: random.Random) -> tuple[int, list[int]]:
    """Sample the global MAC key and its additive sharing."""
    alpha = rng.randrange(PRIME)
    shares = [rng.randrange(PRIME) for _ in range(n_parties - 1)]
    last = (alpha - sum(shares)) % PRIME
    return alpha, shares + [last]


def share_vector(
    vector: FieldVector, n_parties: int, alpha: int, rng: random.Random
) -> AdditiveShared:
    """Dealer-style authenticated sharing of a vector."""
    value_shares = _split(vector, n_parties, rng)
    mac_vector = vector.scale(alpha)
    mac_shares = _split(mac_vector, n_parties, rng)
    return AdditiveShared(value_shares, mac_shares)


def _split(vector: FieldVector, n_parties: int, rng: random.Random) -> list[FieldVector]:
    shares = [FieldVector.random(len(vector), rng) for _ in range(n_parties - 1)]
    last = vector
    for share in shares:
        last = last - share
    return shares + [last]


def reconstruct(shared: AdditiveShared) -> FieldVector:
    """Sum all value shares (requires every party — full threshold)."""
    return vector_sum(shared.shares)


def resplit(shared: AdditiveShared, n_new: int, rng: random.Random) -> AdditiveShared:
    """Dealer-assisted re-split of a full-threshold sharing to a new party set.

    Full-threshold sharing cannot survive a lost share (that is the point of
    the scheme), so re-splitting after a membership change is performed by
    the trusted dealer, who holds every share in this simulation: the value
    and MAC totals are summed and split afresh among ``n_new`` parties.
    Both totals are preserved exactly, so the result still verifies under
    any additive sharing of the *same* global key alpha
    (see :func:`check_macs`).
    """
    if n_new < 2:
        raise SMPCError("an additive sharing needs at least two parties")
    value_total = vector_sum(shared.shares)
    mac_total = vector_sum(shared.macs)
    return AdditiveShared(
        _split(value_total, n_new, rng), _split(mac_total, n_new, rng)
    )


def check_macs(shared: AdditiveShared, opened: FieldVector, alpha_shares: Sequence[int]) -> None:
    """Verify the SPDZ MAC relation for an opened value.

    Each party i computes sigma_i = mac_i - alpha_i * opened; the sigmas must
    sum to zero.  Any modification of a value share (without the matching MAC
    forgery, which requires alpha) breaks the relation.
    """
    sigma_total = FieldVector.zeros(len(opened))
    for mac_share, alpha_share in zip(shared.macs, alpha_shares):
        sigma = mac_share - opened.scale(alpha_share)
        sigma_total = sigma_total + sigma
    if not sigma_total.is_zero():
        raise IntegrityError("MAC check failed: opened value was tampered with")


# --------------------------------------------------- local (linear) operators


def add(a: AdditiveShared, b: AdditiveShared) -> AdditiveShared:
    """Share-wise addition (local, no communication)."""
    return AdditiveShared(
        [x + y for x, y in zip(a.shares, b.shares)],
        [x + y for x, y in zip(a.macs, b.macs)],
    )


def sub(a: AdditiveShared, b: AdditiveShared) -> AdditiveShared:
    """Share-wise subtraction (local)."""
    return AdditiveShared(
        [x - y for x, y in zip(a.shares, b.shares)],
        [x - y for x, y in zip(a.macs, b.macs)],
    )


def scale(a: AdditiveShared, scalar: int) -> AdditiveShared:
    """Multiply by a public scalar (local; MACs scale with the value)."""
    return AdditiveShared(
        [x.scale(scalar) for x in a.shares],
        [m.scale(scalar) for m in a.macs],
    )


def add_public(a: AdditiveShared, public: FieldVector, alpha_shares: Sequence[int]) -> AdditiveShared:
    """Add a public vector: party 0 adjusts its value share; every party
    adjusts its MAC share by alpha_i * public."""
    shares = [s for s in a.shares]
    shares[0] = shares[0] + public
    macs = [m + public.scale(alpha_i) for m, alpha_i in zip(a.macs, alpha_shares)]
    return AdditiveShared(shares, macs)


def public_to_shared(
    public: FieldVector, n_parties: int, alpha_shares: Sequence[int]
) -> AdditiveShared:
    """Deterministic sharing of a public constant (share = value at party 0)."""
    shares = [FieldVector.zeros(len(public)) for _ in range(n_parties)]
    shares[0] = public.copy()
    macs = [public.scale(alpha_i) for alpha_i in alpha_shares]
    return AdditiveShared(shares, macs)
