"""The offline phase: a trusted dealer producing correlated randomness.

SPDZ runs "a lot of the required SMPC computations in an offline phase"
(paper §2): multiplication triples and shared random bits are produced before
the data-dependent online phase starts.  Real SPDZ generates them with
somewhat-homomorphic encryption; we substitute a trusted dealer, which
preserves the online protocol unchanged and keeps the offline/online cost
split measurable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import SMPCError
from repro.smpc import additive, shamir
from repro.smpc.field import PRIME, FieldVector, random_bit_elements


@dataclass
class AdditiveTriple:
    """Authenticated Beaver triple: c = a * b, all SPDZ-shared."""

    a: additive.AdditiveShared
    b: additive.AdditiveShared
    c: additive.AdditiveShared


@dataclass
class ShamirTriple:
    """Beaver triple under Shamir sharing."""

    a: shamir.ShamirShared
    b: shamir.ShamirShared
    c: shamir.ShamirShared


@dataclass
class OfflineUsage:
    """Meter for offline-phase production (for the E4 benchmark)."""

    triples: int = 0
    random_bits: int = 0
    elements_dealt: int = 0


class TrustedDealer:
    """Produces triples and shared random bits for either scheme."""

    def __init__(self, n_parties: int, seed: int | None = None) -> None:
        if n_parties < 2:
            raise SMPCError("SMPC needs at least two computing parties")
        self.n_parties = n_parties
        self._rng = random.Random(seed)
        self.usage = OfflineUsage()
        self.alpha, self.alpha_shares = additive.share_alpha(n_parties, self._rng)

    # -------------------------------------------------------------- additive

    def additive_triple(self, length: int) -> AdditiveTriple:
        a = FieldVector.random(length, self._rng)
        b = FieldVector.random(length, self._rng)
        c = a * b
        triple = AdditiveTriple(
            additive.share_vector(a, self.n_parties, self.alpha, self._rng),
            additive.share_vector(b, self.n_parties, self.alpha, self._rng),
            additive.share_vector(c, self.n_parties, self.alpha, self._rng),
        )
        self.usage.triples += length
        # value + MAC share for each of a, b, c, at each party
        self.usage.elements_dealt += 6 * self.n_parties * length
        return triple

    def additive_random_bits(self, count: int) -> additive.AdditiveShared:
        bits = FieldVector._raw(random_bit_elements(count, self._rng))
        shared = additive.share_vector(bits, self.n_parties, self.alpha, self._rng)
        self.usage.random_bits += count
        self.usage.elements_dealt += 2 * self.n_parties * count
        return shared

    # ---------------------------------------------------------------- shamir

    def shamir_triple(self, length: int, threshold: int) -> ShamirTriple:
        a = FieldVector.random(length, self._rng)
        b = FieldVector.random(length, self._rng)
        c = a * b
        triple = ShamirTriple(
            shamir.share_vector(a, self.n_parties, threshold, self._rng),
            shamir.share_vector(b, self.n_parties, threshold, self._rng),
            shamir.share_vector(c, self.n_parties, threshold, self._rng),
        )
        self.usage.triples += length
        self.usage.elements_dealt += 3 * self.n_parties * length
        return triple

    def shamir_random_bits(self, count: int, threshold: int) -> shamir.ShamirShared:
        bits = FieldVector._raw(random_bit_elements(count, self._rng))
        shared = shamir.share_vector(bits, self.n_parties, threshold, self._rng)
        self.usage.random_bits += count
        self.usage.elements_dealt += self.n_parties * count
        return shared

    @property
    def rng(self) -> random.Random:
        return self._rng
