"""Common Data Elements: the harmonized variable catalogue.

MIP's Data Catalogue describes every variable of a data model — code, label,
SQL type, whether it is nominal, its enumerations and plausible range.  The
CDE metadata drives the UI (variable pickers) and the algorithms (dummy
coding of nominal covariates uses the enumeration list so every worker
encodes identically).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.engine.types import SQLType
from repro.errors import CatalogError, SpecificationError
from repro.observability.log import get_logger

logger = get_logger("data.cdes")


@dataclass(frozen=True)
class CommonDataElement:
    """One harmonized variable."""

    code: str
    label: str
    sql_type: SQLType
    is_categorical: bool = False
    enumerations: tuple[str, ...] = ()
    min_value: float | None = None
    max_value: float | None = None
    unit: str = ""

    def __post_init__(self) -> None:
        if self.is_categorical and not self.enumerations:
            raise SpecificationError(f"nominal CDE {self.code!r} needs enumerations")
        if not self.is_categorical and self.enumerations:
            raise SpecificationError(f"numeric CDE {self.code!r} cannot have enumerations")

    @property
    def kind(self) -> str:
        return "nominal" if self.is_categorical else "numeric"

    def to_metadata(self) -> dict[str, Any]:
        """The per-variable metadata dict handed to algorithms."""
        return {
            "label": self.label,
            "is_categorical": self.is_categorical,
            "enumerations": list(self.enumerations),
            "min": self.min_value,
            "max": self.max_value,
            "sql_type": self.sql_type.value,
        }


@dataclass(frozen=True)
class DataModel:
    """A named, versioned set of CDEs (e.g. 'dementia' v0.1)."""

    name: str
    version: str
    cdes: Mapping[str, CommonDataElement]

    # ------------------------------------------------------- JSON interchange

    def to_json(self) -> str:
        """Serialize the data model as the catalogue's JSON interchange form
        (hospitals receive CDE definitions as metadata files)."""
        import json

        payload = {
            "name": self.name,
            "version": self.version,
            "variables": [
                {
                    "code": cde.code,
                    "label": cde.label,
                    "sql_type": cde.sql_type.value,
                    "is_categorical": cde.is_categorical,
                    "enumerations": list(cde.enumerations),
                    "min": cde.min_value,
                    "max": cde.max_value,
                    "unit": cde.unit,
                }
                for cde in self.cdes.values()
            ],
        }
        return json.dumps(payload, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "DataModel":
        """Parse a data model from the JSON interchange form."""
        import json

        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecificationError(f"invalid data-model JSON: {exc}") from exc
        for key in ("name", "version", "variables"):
            if key not in payload:
                raise SpecificationError(f"data-model JSON missing {key!r}")
        cdes = {}
        for entry in payload["variables"]:
            try:
                cde = CommonDataElement(
                    code=entry["code"],
                    label=entry.get("label", entry["code"]),
                    sql_type=SQLType.from_name(entry["sql_type"]),
                    is_categorical=bool(entry.get("is_categorical", False)),
                    enumerations=tuple(entry.get("enumerations", ())),
                    min_value=entry.get("min"),
                    max_value=entry.get("max"),
                    unit=entry.get("unit", ""),
                )
            except KeyError as exc:
                raise SpecificationError(
                    f"data-model JSON variable missing field {exc}"
                ) from exc
            cdes[cde.code] = cde
        return cls(payload["name"], payload["version"], cdes)

    def cde(self, code: str) -> CommonDataElement:
        try:
            return self.cdes[code]
        except KeyError:
            raise CatalogError(
                f"variable {code!r} is not in data model {self.name!r}"
            ) from None

    def variables(self) -> list[str]:
        return sorted(self.cdes)

    def metadata_for(self, codes: Sequence[str]) -> dict[str, dict[str, Any]]:
        return {code: self.cde(code).to_metadata() for code in codes}

    def validate_variables(self, codes: Sequence[str], kinds: Sequence[str]) -> None:
        """Check that variables exist and have one of the accepted kinds."""
        for code in codes:
            cde = self.cde(code)
            if cde.kind not in kinds:
                logger.warning(
                    "variable_kind_rejected",
                    data_model=self.name,
                    variable=code,
                    kind=cde.kind,
                    accepted=list(kinds),
                )
                raise SpecificationError(
                    f"variable {code!r} is {cde.kind}; expected one of {list(kinds)}"
                )


class CDERegistry:
    """All known data models (the platform's Data Catalogue backend)."""

    def __init__(self) -> None:
        self._models: dict[str, DataModel] = {}

    def register(self, model: DataModel, replace: bool = False) -> None:
        if model.name in self._models and not replace:
            raise CatalogError(f"data model {model.name!r} already registered")
        self._models[model.name] = model
        logger.info(
            "data_model_registered",
            data_model=model.name,
            variables=len(model.cdes),
            replace=replace,
        )

    def get(self, name: str) -> DataModel:
        model = self._models.get(name)
        if model is None:
            raise CatalogError(f"no such data model: {name!r}")
        return model

    def __contains__(self, name: str) -> bool:
        return name in self._models

    def names(self) -> list[str]:
        return sorted(self._models)


cde_registry = CDERegistry()


def _numeric(code: str, label: str, low: float, high: float, unit: str = "") -> CommonDataElement:
    return CommonDataElement(
        code, label, SQLType.REAL, min_value=low, max_value=high, unit=unit
    )


def dementia_data_model() -> DataModel:
    """The dementia data model used throughout the paper's examples.

    Variable names follow the MIP dashboard: regional brain volumes from the
    neuromorphometric atlas, CSF biomarkers (Abeta 1-42, pTau), demographics,
    neuropsychology scores and the diagnosis label.
    """
    cdes = [
        CommonDataElement(
            "dataset", "Dataset", SQLType.VARCHAR, is_categorical=True,
            enumerations=("edsd", "adni", "ppmi", "brescia", "lausanne", "lille",
                          "edsd-synthdata", "desd-synthdata"),
        ),
        CommonDataElement(
            "alzheimerbroadcategory", "Alzheimer broad category", SQLType.VARCHAR,
            is_categorical=True, enumerations=("CN", "MCI", "AD", "Other"),
        ),
        CommonDataElement(
            "gender", "Gender", SQLType.VARCHAR, is_categorical=True,
            enumerations=("F", "M"),
        ),
        CommonDataElement(
            "psy_etiology", "Depression etiology (PSY)", SQLType.VARCHAR,
            is_categorical=True, enumerations=("no", "yes"),
        ),
        CommonDataElement(
            "va_etiology", "Vascular white-matter damage (VA)", SQLType.VARCHAR,
            is_categorical=True, enumerations=("no", "yes"),
        ),
        _numeric("agevalue", "Age", 40.0, 95.0, "years"),
        _numeric("subjectage", "Subject age", 40.0, 95.0, "years"),
        _numeric("minimentalstate", "Mini-mental state examination", 0.0, 30.0),
        _numeric("p_tau", "CSF phosphorylated tau", 5.0, 200.0, "pg/mL"),
        _numeric("ab_42", "CSF amyloid beta 1-42", 100.0, 2000.0, "pg/mL"),
        _numeric("righthippocampus", "Right hippocampus volume", 1.0, 6.0, "cm3"),
        _numeric("lefthippocampus", "Left hippocampus volume", 1.0, 6.0, "cm3"),
        _numeric("rightententorhinalarea", "Right entorhinal area volume", 0.5, 3.5, "cm3"),
        _numeric("leftententorhinalarea", "Left entorhinal area volume", 0.5, 3.5, "cm3"),
        _numeric("rightlateralventricle", "Right lateral ventricle volume", 0.3, 9.0, "cm3"),
        _numeric("leftlateralventricle", "Left lateral ventricle volume", 0.3, 9.0, "cm3"),
        _numeric("rightamygdala", "Right amygdala volume", 0.4, 2.5, "cm3"),
        _numeric("leftamygdala", "Left amygdala volume", 0.4, 2.5, "cm3"),
        _numeric("brainstem", "Brainstem volume", 15.0, 30.0, "cm3"),
        _numeric("csfglobal", "Global CSF volume", 0.5, 3.0, "cm3"),
        _numeric("survival_months", "Months of follow-up", 0.0, 200.0, "months"),
        CommonDataElement(
            "event_observed", "Event observed (1) or censored (0)", SQLType.INT,
            min_value=0, max_value=1,
        ),
        _numeric("predicted_risk", "Predicted probability of AD conversion", 0.0, 1.0),
        CommonDataElement(
            "converted_ad", "Converted to AD within follow-up", SQLType.INT,
            min_value=0, max_value=1,
        ),
    ]
    return DataModel("dementia", "0.1", {cde.code: cde for cde in cdes})


def epilepsy_data_model() -> DataModel:
    """The epilepsy data model (the paper lists epilepsy among the
    pathologies MIP serves; variables follow its intracerebral-EEG and
    surgery-outcome theme)."""
    cdes = [
        CommonDataElement(
            "dataset", "Dataset", SQLType.VARCHAR, is_categorical=True,
            enumerations=("chuv_eeg", "niguarda_eeg", "lille_eeg"),
        ),
        CommonDataElement(
            "epilepsy_type", "Epilepsy type", SQLType.VARCHAR, is_categorical=True,
            enumerations=("focal", "generalized", "unknown"),
        ),
        CommonDataElement(
            "gender", "Gender", SQLType.VARCHAR, is_categorical=True,
            enumerations=("F", "M"),
        ),
        CommonDataElement(
            "surgery_outcome", "Engel class I outcome", SQLType.VARCHAR,
            is_categorical=True, enumerations=("seizure_free", "not_seizure_free"),
        ),
        _numeric("onset_age", "Age at onset", 0.0, 80.0, "years"),
        _numeric("seizure_frequency", "Seizures per month", 0.0, 300.0),
        _numeric("ieeg_spike_rate", "Interictal spike rate", 0.0, 120.0, "spikes/min"),
        _numeric("hfo_rate", "High-frequency-oscillation rate", 0.0, 60.0, "events/min"),
        _numeric("soz_channels", "Seizure-onset-zone channel count", 0.0, 40.0),
        _numeric("duration_years", "Epilepsy duration", 0.0, 60.0, "years"),
    ]
    return DataModel("epilepsy", "0.1", {cde.code: cde for cde in cdes})


def ensure_default_models() -> None:
    """Idempotently register the built-in data models."""
    if "dementia" not in cde_registry:
        cde_registry.register(dementia_data_model())
    if "epilepsy" not in cde_registry:
        cde_registry.register(epilepsy_data_model())


ensure_default_models()
