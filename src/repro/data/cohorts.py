"""Synthetic cohort generation (the stand-in for hospital data).

Each cohort is a draw from an explicit generative model of the dementia data
model: diagnosis mixes per cohort, per-diagnosis brain-volume and biomarker
distributions (AD: atrophic hippocampus/entorhinal cortex, enlarged
ventricles, low Abeta42, high pTau), correlated bilateral volumes, PSY/VA
etiology effects, survival times with diagnosis-dependent hazards, and a
deliberately miscalibrated risk score for the calibration-belt algorithm.

The marginals are tuned to the dashboard statistics visible in the paper's
Figure 3 (e.g. left entorhinal area mean ~1.53 cm3, lateral ventricle mean
~0.86 with long right tail, ~8% missingness on CSF biomarkers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.engine.column import Column
from repro.engine.table import ColumnSpec, Schema, Table
from repro.engine.types import SQLType
from repro.errors import SpecificationError
from repro.observability.log import get_logger

logger = get_logger("data.cohorts")

#: Per-diagnosis generative parameters: mean shifts in units of each block.
_DIAGNOSIS_PROFILE = {
    #           hip    ent    vent   amyg   mmse   ab42    ptau   hazard
    "CN":  dict(hip=3.6, ent=1.75, vent=0.70, amyg=1.45, mmse=28.5, ab42=1050.0, ptau=35.0, hazard=0.002),
    "MCI": dict(hip=3.1, ent=1.50, vent=0.90, amyg=1.25, mmse=26.0, ab42=800.0, ptau=55.0, hazard=0.012),
    "AD":  dict(hip=2.5, ent=1.15, vent=1.20, amyg=1.00, mmse=20.0, ab42=550.0, ptau=85.0, hazard=0.035),
    "Other": dict(hip=3.3, ent=1.60, vent=0.85, amyg=1.30, mmse=25.0, ab42=900.0, ptau=45.0, hazard=0.008),
}


@dataclass(frozen=True)
class CohortSpec:
    """Parameters for one synthetic dataset."""

    name: str
    n_patients: int
    seed: int = 0
    diagnosis_mix: Mapping[str, float] = field(
        default_factory=lambda: {"CN": 0.35, "MCI": 0.35, "AD": 0.30}
    )
    na_rate: float = 0.08
    psy_rate: float = 0.15
    va_rate: float = 0.20
    mean_age: float = 71.0

    def __post_init__(self) -> None:
        if self.n_patients < 1:
            raise SpecificationError("a cohort needs at least one patient")
        total = sum(self.diagnosis_mix.values())
        if not 0.999 < total < 1.001:
            raise SpecificationError(f"diagnosis mix must sum to 1, got {total}")
        unknown = set(self.diagnosis_mix) - set(_DIAGNOSIS_PROFILE)
        if unknown:
            raise SpecificationError(f"unknown diagnoses in mix: {sorted(unknown)}")
        if not 0 <= self.na_rate < 1:
            raise SpecificationError("na_rate must be in [0, 1)")


def generate_cohort(spec: CohortSpec) -> Table:
    """Draw one cohort as a dementia data-model table."""
    rng = np.random.default_rng(spec.seed)
    n = spec.n_patients
    labels = list(spec.diagnosis_mix)
    probabilities = np.array([spec.diagnosis_mix[label] for label in labels])
    diagnosis = rng.choice(labels, size=n, p=probabilities)

    age = rng.normal(spec.mean_age, 7.5, n).clip(40, 95)
    gender = rng.choice(["F", "M"], size=n, p=[0.55, 0.45])
    psy = rng.random(n) < spec.psy_rate
    va = rng.random(n) < spec.va_rate

    profile = {key: np.array([_DIAGNOSIS_PROFILE[d][key] for d in diagnosis])
               for key in ("hip", "ent", "vent", "amyg", "mmse", "ab42", "ptau", "hazard")}

    # A latent per-subject atrophy factor correlates all volumes.
    atrophy = rng.normal(0.0, 1.0, n)
    age_effect = (age - spec.mean_age) * 0.012
    va_effect = np.where(va, 0.12, 0.0)  # vascular damage enlarges ventricles
    psy_effect = np.where(psy, -0.05, 0.0)  # depression slightly lowers volumes

    def volume(base: np.ndarray, scale: float, sign: float = -1.0) -> np.ndarray:
        noise = rng.normal(0.0, scale * 0.5, n)
        return base + sign * scale * (0.35 * atrophy + age_effect) + psy_effect * scale + noise

    left_hip = volume(profile["hip"], 0.45).clip(1.0, 6.0)
    right_hip = (left_hip + rng.normal(0.03, 0.12, n)).clip(1.0, 6.0)
    left_ent = volume(profile["ent"], 0.23).clip(0.5, 3.5)
    right_ent = (left_ent + rng.normal(0.02, 0.08, n)).clip(0.5, 3.5)
    left_amyg = volume(profile["amyg"], 0.18).clip(0.4, 2.5)
    right_amyg = (left_amyg + rng.normal(0.01, 0.06, n)).clip(0.4, 2.5)
    left_vent = (
        profile["vent"] * np.exp(rng.normal(0.0, 0.35, n)) + va_effect + 0.10 * np.maximum(atrophy, 0)
    ).clip(0.3, 9.0)
    right_vent = (left_vent * np.exp(rng.normal(0.0, 0.12, n))).clip(0.3, 9.0)
    brainstem = rng.normal(21.5, 2.0, n).clip(15, 30)
    csf_global = rng.normal(1.4, 0.3, n).clip(0.5, 3.0)

    mmse = (profile["mmse"] + 1.5 * (left_hip - profile["hip"]) + rng.normal(0, 1.8, n)).clip(0, 30)
    ab42 = (profile["ab42"] + rng.normal(0.0, 140.0, n)).clip(100, 2000)
    ptau = (profile["ptau"] * np.exp(rng.normal(0.0, 0.25, n))).clip(5, 200)

    # Survival: exponential conversion times with diagnosis-dependent hazard,
    # administratively censored at a uniform follow-up horizon.
    conversion = rng.exponential(1.0 / profile["hazard"]).clip(0.5, None)
    follow_up = rng.uniform(12.0, 120.0, n)
    observed = conversion <= follow_up
    survival = np.minimum(conversion, follow_up).clip(0.0, 200.0)
    converted = observed.astype(np.int64)

    # A miscalibrated risk model (overconfident): true logit scaled by 1.6.
    # Depends on the *individual* biomarker values so conditional effects are
    # identifiable in regressions.
    true_logit = (
        -1.0 + 1.8 * (ptau / 85.0 - 0.6) - 1.6 * (left_hip - 3.0)
    )
    true_probability = 1.0 / (1.0 + np.exp(-true_logit))
    converted_model = (rng.random(n) < true_probability).astype(np.int64)
    predicted = 1.0 / (1.0 + np.exp(-1.6 * true_logit))
    predicted = predicted.clip(0.001, 0.999)

    def with_na(values: np.ndarray, rate: float) -> list[float | None]:
        mask = rng.random(n) < rate
        return [None if m else float(v) for m, v in zip(mask, values)]

    columns: dict[str, tuple[SQLType, list]] = {
        "dataset": (SQLType.VARCHAR, [spec.name] * n),
        "alzheimerbroadcategory": (SQLType.VARCHAR, list(diagnosis)),
        "gender": (SQLType.VARCHAR, list(gender)),
        "psy_etiology": (SQLType.VARCHAR, ["yes" if p else "no" for p in psy]),
        "va_etiology": (SQLType.VARCHAR, ["yes" if v else "no" for v in va]),
        "agevalue": (SQLType.REAL, [float(v) for v in age]),
        "subjectage": (SQLType.REAL, [float(v) for v in age]),
        "minimentalstate": (SQLType.REAL, with_na(mmse, spec.na_rate / 2)),
        "p_tau": (SQLType.REAL, with_na(ptau, spec.na_rate)),
        "ab_42": (SQLType.REAL, with_na(ab42, spec.na_rate)),
        "righthippocampus": (SQLType.REAL, [float(v) for v in right_hip]),
        "lefthippocampus": (SQLType.REAL, [float(v) for v in left_hip]),
        "rightententorhinalarea": (SQLType.REAL, with_na(right_ent, spec.na_rate)),
        "leftententorhinalarea": (SQLType.REAL, with_na(left_ent, spec.na_rate)),
        "rightlateralventricle": (SQLType.REAL, [float(v) for v in right_vent]),
        "leftlateralventricle": (SQLType.REAL, [float(v) for v in left_vent]),
        "rightamygdala": (SQLType.REAL, [float(v) for v in right_amyg]),
        "leftamygdala": (SQLType.REAL, [float(v) for v in left_amyg]),
        "brainstem": (SQLType.REAL, [float(v) for v in brainstem]),
        "csfglobal": (SQLType.REAL, [float(v) for v in csf_global]),
        "survival_months": (SQLType.REAL, [float(v) for v in survival]),
        "event_observed": (SQLType.INT, [int(v) for v in converted]),
        "predicted_risk": (SQLType.REAL, [float(v) for v in predicted]),
        "converted_ad": (SQLType.INT, [int(v) for v in converted_model]),
    }
    specs = [ColumnSpec(name, sql_type) for name, (sql_type, _) in columns.items()]
    built = [Column.from_values(sql_type, values) for sql_type, values in columns.values()]
    logger.debug(
        "cohort_generated",
        dataset=spec.name,
        patients=n,
        seed=spec.seed,
        na_rate=spec.na_rate,
    )
    return Table(Schema(specs), built)


def generate_synthetic_hospital(specs: Sequence[CohortSpec]) -> Table:
    """One hospital's data-model table holding several datasets."""
    if not specs:
        raise SpecificationError("a hospital needs at least one cohort")
    tables = [generate_cohort(spec) for spec in specs]
    result = tables[0]
    for table in tables[1:]:
        result = result.concat(table)
    return result


def generate_epilepsy_cohort(name: str, n_patients: int, seed: int = 0) -> Table:
    """A synthetic intracerebral-EEG cohort for the epilepsy data model.

    Focal epilepsy carries higher spike/HFO rates and a better surgical
    outcome when the seizure-onset zone is compact — the signals a surgical
    outcome analysis (logistic regression / CART) should find.
    """
    if n_patients < 1:
        raise SpecificationError("a cohort needs at least one patient")
    rng = np.random.default_rng(seed)
    n = n_patients
    epilepsy_type = rng.choice(["focal", "generalized", "unknown"], n, p=[0.6, 0.3, 0.1])
    focal = epilepsy_type == "focal"
    gender = rng.choice(["F", "M"], n)
    onset = rng.gamma(3.0, 5.0, n).clip(0, 80)
    duration = rng.gamma(2.0, 6.0, n).clip(0, 60)
    frequency = rng.lognormal(1.5, 1.0, n).clip(0, 300)
    spike_rate = (rng.gamma(2.0, 8.0, n) + np.where(focal, 10.0, 0.0)).clip(0, 120)
    hfo = (0.3 * spike_rate + rng.gamma(1.5, 3.0, n)).clip(0, 60)
    soz = (rng.poisson(6, n) + np.where(focal, 2, 6)).clip(0, 40).astype(float)
    # compact SOZ + focal type predict seizure freedom
    outcome_logit = 1.0 + 1.2 * focal.astype(float) - 0.18 * soz - 0.01 * duration
    seizure_free = rng.random(n) < 1 / (1 + np.exp(-outcome_logit))
    columns = {
        "dataset": (SQLType.VARCHAR, [name] * n),
        "epilepsy_type": (SQLType.VARCHAR, list(epilepsy_type)),
        "gender": (SQLType.VARCHAR, list(gender)),
        "surgery_outcome": (
            SQLType.VARCHAR,
            ["seizure_free" if s else "not_seizure_free" for s in seizure_free],
        ),
        "onset_age": (SQLType.REAL, [float(v) for v in onset]),
        "seizure_frequency": (SQLType.REAL, [float(v) for v in frequency]),
        "ieeg_spike_rate": (SQLType.REAL, [float(v) for v in spike_rate]),
        "hfo_rate": (SQLType.REAL, [float(v) for v in hfo]),
        "soz_channels": (SQLType.REAL, [float(v) for v in soz]),
        "duration_years": (SQLType.REAL, [float(v) for v in duration]),
    }
    specs = [ColumnSpec(column, sql_type) for column, (sql_type, _) in columns.items()]
    built = [Column.from_values(sql_type, values) for sql_type, values in columns.values()]
    return Table(Schema(specs), built)


def alzheimers_use_case_cohorts(seed: int = 2024) -> dict[str, Table]:
    """The paper's Alzheimer's use case: four centers, one cohort each.

    "the MIP combines data from memory clinics in Brescia (1960 patients),
    Lausanne (1032 patients), and Lille (1103 patients), as well as the
    reference dataset ADNI (1066 patients)."
    """
    specs = {
        "hospital_brescia": CohortSpec(
            "brescia", 1960, seed=seed + 1,
            diagnosis_mix={"CN": 0.25, "MCI": 0.40, "AD": 0.35},
        ),
        "hospital_lausanne": CohortSpec(
            "lausanne", 1032, seed=seed + 2,
            diagnosis_mix={"CN": 0.30, "MCI": 0.40, "AD": 0.30},
        ),
        "hospital_lille": CohortSpec(
            "lille", 1103, seed=seed + 3,
            diagnosis_mix={"CN": 0.35, "MCI": 0.35, "AD": 0.30},
        ),
        "hospital_adni": CohortSpec(
            "adni", 1066, seed=seed + 4,
            diagnosis_mix={"CN": 0.40, "MCI": 0.35, "AD": 0.25},
        ),
    }
    return {worker: generate_cohort(spec) for worker, spec in specs.items()}
