"""Data models, Common Data Elements, and synthetic cohort generators.

The paper's hospitals hold harmonized medical data described by Common Data
Elements (CDEs) — the dementia data model with regional brain volumes,
CSF biomarkers (Abeta42, pTau), diagnosis and demographics.  Real patient
data is obviously unavailable; :mod:`repro.data.cohorts` generates synthetic
cohorts whose marginal statistics follow the dashboard figures in the paper
(Figure 3) and whose joint structure carries the signals the Alzheimer's use
case analyzes (volume/diagnosis association, biomarker clusters).
"""

from repro.data.cdes import (
    CommonDataElement,
    DataModel,
    cde_registry,
    dementia_data_model,
    epilepsy_data_model,
)
from repro.data.cohorts import (
    CohortSpec,
    alzheimers_use_case_cohorts,
    generate_cohort,
    generate_epilepsy_cohort,
    generate_synthetic_hospital,
)

__all__ = [
    "CohortSpec",
    "CommonDataElement",
    "DataModel",
    "alzheimers_use_case_cohorts",
    "cde_registry",
    "dementia_data_model",
    "epilepsy_data_model",
    "generate_cohort",
    "generate_epilepsy_cohort",
    "generate_synthetic_hospital",
]
