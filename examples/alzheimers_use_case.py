"""The paper's §1 use case: "Federated analyses in Alzheimer's disease".

Four memory clinics — Brescia (1960 patients), Lausanne (1032), Lille
(1103) — and the ADNI reference cohort (1066).  "The data remains in the
respective hospitals but the analysis is performed on the overall caseload."

The case study's objectives, reproduced federated:
(a) determine how brain volumes contribute to diagnosis,
(b) increase diagnosis specificity with the AD biomarkers Abeta 1-42 and
    pTau (cluster structure),
(c) quantify the influence of two non-AD etiologies: depression (PSY) and
    vascular white-matter damage (VA).

Run:  python examples/alzheimers_use_case.py
"""

import numpy as np

from repro import FederationConfig, MIPService, alzheimers_use_case_cohorts, create_federation

DATASETS = ["brescia", "lausanne", "lille", "adni"]


def main() -> None:
    cohorts = alzheimers_use_case_cohorts(seed=2024)
    federation = create_federation(
        {worker: {"dementia": table} for worker, table in cohorts.items()},
        FederationConfig(smpc_nodes=3, smpc_scheme="shamir", seed=11),
    )
    mip = MIPService(federation)
    total = sum(table.num_rows for table in cohorts.values())
    print(f"federated caseload: {total} patients across {len(cohorts)} centers\n")

    # (a) brain volumes vs diagnosis -----------------------------------------
    print("(a) brain volume repartition across diagnosis")
    regression = mip.run_experiment(
        "linear_regression", "dementia", DATASETS,
        y=["lefthippocampus"], x=["alzheimerbroadcategory", "agevalue"],
    )
    for name, coefficient, p_value in zip(
        regression.result["variable_names"],
        regression.result["coefficients"],
        regression.result["p_values"],
    ):
        print(f"    {name:<32} {coefficient:>9.4f}   p={p_value:.1e}")
    print(f"    R^2 = {regression.result['r_squared']:.3f}\n")

    # (b) biomarker clusters --------------------------------------------------
    print("(b) k-means clusters on Abeta42 / pTau / left entorhinal volume")
    clusters = mip.run_experiment(
        "kmeans", "dementia", DATASETS,
        y=["ab_42", "p_tau", "leftententorhinalarea"],
        parameters={"k": 3, "seed": 1, "iterations_max_number": 60},
    )
    centroids = np.array(clusters.result["centroids"])
    sizes = clusters.result["cluster_sizes"]
    for rank, index in enumerate(np.argsort(centroids[:, 0])):
        ab42, ptau, volume = centroids[index]
        profile = ("AD-like" if rank == 0 else
                   "intermediate" if rank == 1 else "CN-like")
        print(f"    cluster {index}: Abeta42={ab42:6.0f}  pTau={ptau:5.1f}  "
              f"entorhinal={volume:.2f} cm3  n={sizes[index]:5d}  [{profile}]")
    print()

    # (c) non-AD etiologies ---------------------------------------------------
    print("(c) influence of depression (PSY) and vascular damage (VA)")
    etiology = mip.run_experiment(
        "linear_regression", "dementia", DATASETS,
        y=["lefthippocampus"],
        x=["alzheimerbroadcategory", "psy_etiology", "va_etiology"],
    )
    for name, coefficient, p_value in zip(
        etiology.result["variable_names"],
        etiology.result["coefficients"],
        etiology.result["p_values"],
    ):
        if "etiology" in name:
            verdict = "significant" if p_value < 0.05 else "not significant"
            print(f"    {name:<24} {coefficient:>9.4f}   p={p_value:.3f}  ({verdict})")

    # supporting view: survival by diagnosis ----------------------------------
    print("\nbonus: conversion-free survival by diagnosis (Kaplan-Meier)")
    survival = mip.run_experiment(
        "kaplan_meier", "dementia", DATASETS,
        y=["survival_months", "event_observed"],
        x=["alzheimerbroadcategory"],
    )
    for group, curve in survival.result["curves"].items():
        print(f"    {group:<6} n={curve['n_subjects']:5d}  events={curve['n_events']:4d}  "
              f"S(end)={curve['survival'][-1]:.2f}")
    log_rank = survival.result["log_rank"]
    print(f"    log-rank chi2={log_rank['chi_square']:.1f}, p={log_rank['p_value']:.1e}")


if __name__ == "__main__":
    main()
