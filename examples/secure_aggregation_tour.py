"""A tour of the SMPC layer: schemes, operations, tampering, noise.

Shows what the Master never sees: worker values are secret-shared, the
cluster computes on shares, and only the aggregate opens.  Demonstrates the
full-threshold scheme catching a tampered share (active security with
abort), the Shamir scheme's threshold, and in-protocol noise injection.

Run:  python examples/secure_aggregation_tour.py
"""

import random

from repro.errors import IntegrityError, ThresholdError
from repro.smpc import SMPCCluster
from repro.smpc import additive, shamir
from repro.smpc.cluster import NoiseSpec
from repro.smpc.field import PRIME, FieldVector


def cluster_operations() -> None:
    print("== the four aggregation operations (paper §2) ==")
    cluster = SMPCCluster(n_nodes=3, scheme="shamir", seed=1)
    cluster.import_shares("demo", "hospital_a", {
        "count":      {"data": 412, "operation": "sum"},
        "mean_num":   {"data": 1288.4, "operation": "sum"},
        "youngest":   {"data": 44.0, "operation": "min"},
        "oldest":     {"data": 91.0, "operation": "max"},
        "categories": {"data": [1, 1, 0, 0], "operation": "union"},
    })
    cluster.import_shares("demo", "hospital_b", {
        "count":      {"data": 388, "operation": "sum"},
        "mean_num":   {"data": 1190.1, "operation": "sum"},
        "youngest":   {"data": 47.5, "operation": "min"},
        "oldest":     {"data": 88.0, "operation": "max"},
        "categories": {"data": [0, 1, 1, 0], "operation": "union"},
    })
    result = cluster.aggregate("demo")
    print(f"  total patients : {result['count']:.0f}")
    print(f"  global mean    : {result['mean_num'] / result['count']:.2f}")
    print(f"  age range      : [{result['youngest']}, {result['oldest']}]")
    print(f"  observed levels: {result['categories']}   (disjoint union)")
    meter = cluster.communication
    print(f"  protocol cost  : {meter.rounds} rounds, {meter.elements} field elements\n")


def tamper_detection() -> None:
    print("== full threshold: MACs catch a corrupted node ==")
    rng = random.Random(3)
    alpha, alpha_shares = additive.share_alpha(3, rng)
    secret = FieldVector([123456])
    shared = additive.share_vector(secret, 3, alpha, rng)
    # a malicious node flips its share before the open
    shared.shares[2].elements[0] = (shared.shares[2].elements[0] + 1) % PRIME
    opened = additive.reconstruct(shared)
    try:
        additive.check_macs(shared, opened, alpha_shares)
    except IntegrityError as error:
        print(f"  abort: {error}\n")


def shamir_threshold() -> None:
    print("== Shamir: t+1 shares reconstruct, t reveal nothing ==")
    rng = random.Random(4)
    shared = shamir.share_vector(FieldVector([777]), n_parties=5, threshold=2, rng=rng)
    subset = [(0, shared.shares[0]), (3, shared.shares[3]), (4, shared.shares[4])]
    print(f"  3 of 5 shares -> {shamir.reconstruct_from_subset(subset, 2).elements[0]}")
    try:
        shamir.reconstruct_from_subset(subset[:2], 2)
    except ThresholdError as error:
        print(f"  2 of 5 shares -> {error}\n")


def noise_in_protocol() -> None:
    print("== noise injected inside the protocol (before the open) ==")
    for trial in range(3):
        cluster = SMPCCluster(3, "shamir", seed=100 + trial)
        cluster.import_shares("j", "a", {"s": {"data": [250.0], "operation": "sum"}})
        cluster.import_shares("j", "b", {"s": {"data": [250.0], "operation": "sum"}})
        noisy = cluster.aggregate("j", noise=NoiseSpec("gaussian", 2.0))["s"][0]
        print(f"  true sum 500.0 -> opened {noisy:.3f}")
    print("  every SMPC node adds a partial noise share; no node knows the total\n")


def ft_vs_shamir_cost() -> None:
    print("== the security/efficiency trade-off ==")
    for scheme in ("shamir", "full_threshold"):
        cluster = SMPCCluster(3, scheme, seed=5)
        cluster.import_shares("j", "a", {"v": {"data": [1.0] * 128, "operation": "sum"}})
        cluster.import_shares("j", "b", {"v": {"data": [2.0] * 128, "operation": "sum"}})
        cluster.aggregate("j")
        meter = cluster.communication
        print(f"  {scheme:<16} rounds={meter.rounds:<3} elements={meter.elements:<6} "
              f"bytes={meter.bytes_sent}")
    print("  full threshold pays MACs + checks for active-malicious security")


def main() -> None:
    cluster_operations()
    tamper_detection()
    shamir_threshold()
    noise_in_protocol()
    ft_vs_shamir_cost()


if __name__ == "__main__":
    main()
