"""Federated training with the paper's two privacy options.

"Next, we have two options: use differential privacy (DP) or secure
aggregation (SA)."  This example trains the same logistic model (predicting
AD conversion from hippocampal volume and pTau) under no privacy, local DP,
and SA + central noise, and prints the accuracy each path achieves across
an epsilon sweep.

Run:  python examples/private_training.py
"""

import numpy as np

from repro import CohortSpec, FederationConfig, create_federation, generate_cohort
from repro.learning import FederatedTrainer, TrainingConfig

DATASETS = tuple(f"site{i}" for i in range(4))


def main() -> None:
    federation = create_federation(
        {
            f"hospital_{i}": {
                "dementia": generate_cohort(CohortSpec(f"site{i}", 400, seed=60 + i))
            }
            for i in range(4)
        },
        FederationConfig(smpc_nodes=3, smpc_scheme="shamir", seed=17),
    )
    trainer = FederatedTrainer(federation)

    def train(mode: str, epsilon: float = 1.0, seed: int = 0):
        return trainer.train(
            TrainingConfig(
                data_model="dementia",
                datasets=DATASETS,
                response="converted_ad",
                covariates=("lefthippocampus", "p_tau"),
                mode=mode,
                rounds=10,
                learning_rate=0.8,
                clip_norm=1.0,
                epsilon=epsilon,
                delta=1e-5,
                seed=seed,
                evaluate_every=10,
            )
        )

    clean = train("none")
    print("non-private baseline")
    print(f"  accuracy={clean.final_accuracy:.3f}  loss={clean.final_loss:.4f}")
    print(f"  weights : {dict(zip(clean.design_names, np.round(clean.weights, 3)))}\n")

    print(f"{'epsilon':>8} {'local-DP acc':>13} {'SA acc':>8}   (mean of 3 seeds)")
    for epsilon in (4.0, 16.0, 64.0):
        dp_accuracy = np.mean([train("dp", epsilon, s).final_accuracy for s in range(3)])
        sa_accuracy = np.mean([train("sa", epsilon, s).final_accuracy for s in range(3)])
        print(f"{epsilon:>8.1f} {dp_accuracy:>13.3f} {sa_accuracy:>8.3f}")

    result = train("sa", 16.0)
    print(f"\nprivacy ledger for the SA run: epsilon={result.epsilon_spent:.2f}, "
          f"delta={result.delta_spent:.1e} over 10 rounds")
    print("with SA the noise is added once, inside the SMPC protocol, to the")
    print("aggregated update; with local DP each of the 4 workers adds its own —")
    print("the accuracy gap at equal epsilon is the price of not trusting the")
    print("aggregator.")


if __name__ == "__main__":
    main()
