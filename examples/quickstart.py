"""Quickstart: stand up a three-hospital federation and run experiments.

Mirrors the MIP dashboard flow (paper Figure 3): browse the data catalogue,
pick variables and datasets, choose an algorithm, set parameters, run, and
read the results — except everything is code.

Run:  python examples/quickstart.py
"""

from repro import CohortSpec, FederationConfig, MIPService, create_federation, generate_cohort


def main() -> None:
    # --- deployment: each hospital keeps its data on its own node ---------
    federation = create_federation(
        {
            "hospital_a": {"dementia": generate_cohort(CohortSpec("edsd", 500, seed=1))},
            "hospital_b": {"dementia": generate_cohort(CohortSpec("adni", 400, seed=2))},
            "hospital_c": {"dementia": generate_cohort(CohortSpec("ppmi", 350, seed=3))},
        },
        FederationConfig(smpc_nodes=3, smpc_scheme="shamir", seed=7),
    )
    mip = MIPService(federation)  # secure aggregation by default

    # --- the data catalogue ------------------------------------------------
    print("data models:", mip.data_models())
    print("datasets   :", mip.datasets("dementia"))
    print("algorithms :", [a["name"] for a in mip.algorithms()][:8], "...")

    # --- descriptive statistics (the dashboard's first view) ---------------
    descriptive = mip.run_experiment(
        "descriptive_stats", "dementia", ["edsd", "adni", "ppmi"],
        y=["p_tau", "leftententorhinalarea"],
    )
    pooled = descriptive.result["pooled"]["p_tau"]
    print(
        f"\npooled p_tau: n={pooled['datapoints']} (NA {pooled['na']}), "
        f"mean={pooled['mean']:.2f} ± {pooled['std']:.2f}, "
        f"quartiles {pooled['q1']:.1f}/{pooled['q2']:.1f}/{pooled['q3']:.1f}"
    )

    # --- a model: how does diagnosis relate to hippocampal volume? ---------
    regression = mip.run_experiment(
        "linear_regression", "dementia", ["edsd", "adni", "ppmi"],
        y=["lefthippocampus"],
        x=["agevalue", "alzheimerbroadcategory"],
    )
    print(f"\nlinear regression (n={regression.result['n_observations']}, "
          f"R^2={regression.result['r_squared']:.3f})")
    for name, coefficient, p_value in zip(
        regression.result["variable_names"],
        regression.result["coefficients"],
        regression.result["p_values"],
    ):
        print(f"  {name:<32} {coefficient:>9.4f}   p={p_value:.2e}")

    # --- every number above left the hospitals as an aggregate only --------
    stats = federation.transport.stats
    print(f"\ntransport: {stats.messages} messages, {stats.bytes_sent / 1e6:.2f} MB;")
    print("raw patient rows moved: none (by construction — see repro.federation.worker)")


if __name__ == "__main__":
    main()
