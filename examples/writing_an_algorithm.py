"""Writing a new federated algorithm — the paper's three-block model.

A MIP algorithm is (a) local computation steps, (b) an algorithm flow, and
(c) parameter specifications.  This example adds a *federated trimmed-range
mean*: the mean of one variable after clipping to globally agreed
percentile bounds — a two-pass algorithm that exercises secure min/max,
histogram aggregation and secure sums.

The local steps below are translated to SQL UDFs by the UDFGenerator at
run time and executed inside each worker's engine; only the declared
secure-transfer aggregates ever leave a node.

Run:  python examples/writing_an_algorithm.py
"""

import numpy as np

from repro import CohortSpec, FederationConfig, create_federation, generate_cohort
from repro.api.service import MIPService
from repro.core.algorithm import FederatedAlgorithm
from repro.core.registry import register_algorithm
from repro.core.specs import ParameterSpec
from repro.udfgen import literal, relation, secure_transfer, udf
from repro.udfgen import udf_helpers as _h  # noqa: F401  (UDF bodies use _h)


# ---- block (a): local computation steps ------------------------------------


@udf(data=relation(), variable=literal(), n_bins=literal(), return_type=[secure_transfer()])
def trimmed_bounds_local(data, variable, n_bins):
    """First pass: per-worker range and a histogram over it."""
    values = np.asarray(data[variable], dtype=np.float64)
    low, high = float(values.min()), float(values.max())
    payload = {
        "min": {"data": low, "operation": "min"},
        "max": {"data": high, "operation": "max"},
        "n": {"data": int(len(values)), "operation": "sum"},
    }
    return payload


@udf(
    data=relation(),
    variable=literal(),
    edges=literal(),
    return_type=[secure_transfer()],
)
def trimmed_histogram_local(data, variable, edges):
    """Second pass: histogram on the shared global grid."""
    values = np.asarray(data[variable], dtype=np.float64)
    counts = _h.histogram_counts(values, np.asarray(edges))
    return {"hist": {"data": counts.tolist(), "operation": "sum"}}


@udf(
    data=relation(),
    variable=literal(),
    lower=literal(),
    upper=literal(),
    return_type=[secure_transfer()],
)
def trimmed_mean_local(data, variable, lower, upper):
    """Third pass: moment sums of the rows inside the trim bounds."""
    values = np.asarray(data[variable], dtype=np.float64)
    kept = values[(values >= lower) & (values <= upper)]
    return {
        "sum": {"data": float(kept.sum()), "operation": "sum"},
        "n": {"data": int(len(kept)), "operation": "sum"},
    }


# ---- blocks (b) + (c): the flow and its specification -----------------------


@register_algorithm
class TrimmedMean(FederatedAlgorithm):
    """Mean of a variable between global percentile bounds."""

    name = "trimmed_mean"
    label = "Trimmed Mean (example)"
    needs_y = "required"
    needs_x = "none"
    y_types = ("numeric",)
    parameters = (
        ParameterSpec("trim", "real", label="Fraction trimmed per tail",
                      default=0.1, min_value=0.0, max_value=0.45),
        ParameterSpec("n_bins", "int", label="Histogram resolution",
                      default=200, min_value=20, max_value=2000),
    )

    def run(self):
        variable = self.y[0]
        view = self.data_view([variable])
        n_bins = self.params["n_bins"]

        bounds = self.ctx.get_transfer_data(self.local_run(
            trimmed_bounds_local,
            {"data": view, "variable": variable, "n_bins": n_bins},
            share_to_global=[True],
        ))
        low, high = float(bounds["min"]), float(bounds["max"])
        edges = np.linspace(low, high, n_bins + 1)

        histogram = self.ctx.get_transfer_data(self.local_run(
            trimmed_histogram_local,
            {"data": view, "variable": variable, "edges": edges.tolist()},
            share_to_global=[True],
        ))
        counts = np.asarray(histogram["hist"], dtype=np.float64)
        cumulative = np.cumsum(counts) / counts.sum()
        trim = self.params["trim"]
        lower = float(edges[np.searchsorted(cumulative, trim)])
        upper = float(edges[min(np.searchsorted(cumulative, 1 - trim) + 1, n_bins)])

        moments = self.ctx.get_transfer_data(self.local_run(
            trimmed_mean_local,
            {"data": view, "variable": variable, "lower": lower, "upper": upper},
            share_to_global=[True],
        ))
        kept = int(moments["n"])
        return {
            "variable": variable,
            "trim": trim,
            "bounds": [lower, upper],
            "n_total": int(bounds["n"]),
            "n_kept": kept,
            "trimmed_mean": float(moments["sum"]) / kept if kept else None,
        }


def main() -> None:
    federation = create_federation(
        {
            "h1": {"dementia": generate_cohort(CohortSpec("edsd", 400, seed=1))},
            "h2": {"dementia": generate_cohort(CohortSpec("adni", 400, seed=2))},
        },
        FederationConfig(seed=9),
    )
    mip = MIPService(federation)
    print("the new algorithm shows up in the platform's panel:")
    print("  ", [a["name"] for a in mip.algorithms() if a["name"] == "trimmed_mean"])
    result = mip.run_experiment(
        "trimmed_mean", "dementia", ["edsd", "adni"],
        y=["rightlateralventricle"], parameters={"trim": 0.1},
    )
    assert result.status.value == "success", result.error
    data = result.result
    print(f"\nvariable       : {data['variable']}")
    print(f"trim bounds    : [{data['bounds'][0]:.3f}, {data['bounds'][1]:.3f}] "
          f"(10% per tail)")
    print(f"rows kept      : {data['n_kept']} of {data['n_total']}")
    print(f"trimmed mean   : {data['trimmed_mean']:.4f}")
    plain = mip.run_experiment(
        "descriptive_stats", "dementia", ["edsd", "adni"], y=["rightlateralventricle"],
    )
    print(f"untrimmed mean : {plain.result['pooled']['rightlateralventricle']['mean']:.4f} "
          "(the long right tail pulls it up)")


if __name__ == "__main__":
    main()
