"""A multi-step workflow: explore → compare groups → model → evaluate.

The MIP dashboard's Workflow tab chains analyses; here the chain is code.
Later steps read earlier results: the model's cohort filter comes from the
exploration step, and the final report combines every step.

Run:  python examples/workflow_analysis.py
"""

from repro import CohortSpec, FederationConfig, MIPService, create_federation, generate_cohort
from repro.api.workflow import Workflow, WorkflowStep


def main() -> None:
    federation = create_federation(
        {
            "h1": {"dementia": generate_cohort(CohortSpec("edsd", 400, seed=1))},
            "h2": {"dementia": generate_cohort(CohortSpec("adni", 400, seed=2))},
            "h3": {"dementia": generate_cohort(CohortSpec("ppmi", 350, seed=3))},
        },
        FederationConfig(smpc_nodes=3, smpc_scheme="shamir", seed=21),
    )
    service = MIPService(federation)

    workflow = Workflow([
        # 1. explore the biomarker
        WorkflowStep("explore", "descriptive_stats", y=["p_tau", "agevalue"]),
        # 2. does pTau differ between diagnostic groups? (+ Tukey pairs)
        WorkflowStep("compare", "anova_oneway",
                     y=["p_tau"], x=["alzheimerbroadcategory"]),
        # 3. model conversion in the older half of the caseload — the cutoff
        #    comes from step 1's pooled median age
        WorkflowStep(
            "model", "logistic_regression",
            y=["converted_ad"], x=["p_tau", "lefthippocampus"],
            filter_sql=lambda results: (
                f"agevalue > {results['explore']['pooled']['agevalue']['q2']:.2f}"
            ),
        ),
        # 4. cross-validate the same model on the same cohort slice
        WorkflowStep(
            "validate", "logistic_regression_cv",
            y=["converted_ad"], x=["p_tau", "lefthippocampus"],
            parameters={"n_splits": 3, "max_iterations": 10},
            filter_sql=lambda results: (
                f"agevalue > {results['explore']['pooled']['agevalue']['q2']:.2f}"
            ),
        ),
    ])
    outcome = workflow.run(service)
    assert outcome.succeeded, outcome.failed_step

    explore = outcome.result_of("explore")
    print("step 1 — explore")
    pooled = explore["pooled"]["p_tau"]
    print(f"  pTau: n={pooled['datapoints']}, mean={pooled['mean']:.1f}, "
          f"median age cutoff={explore['pooled']['agevalue']['q2']:.1f}\n")

    compare = outcome.result_of("compare")
    print("step 2 — compare groups")
    print(f"  ANOVA F={compare['f_statistic']:.1f}, p={compare['p_value']:.1e}")
    for pair in compare["pairwise_comparisons"]:
        a, b = pair["groups"]
        marker = "*" if pair["significant"] else " "
        print(f"   {marker} {a} vs {b}: diff={pair['mean_difference']:+.1f} "
              f"(p_adj={pair['p_adjusted']:.3g})")
    print()

    model = outcome.result_of("model")
    print("step 3 — model (older half of the caseload)")
    print(f"  n={model['n_observations']}, AUC={model['auc']:.3f}")
    for name, odds in zip(model["variable_names"], model["odds_ratios"]):
        print(f"   OR[{name}] = {odds:.3f}")
    print()

    validate = outcome.result_of("validate")
    print("step 4 — validate")
    print(f"  3-fold accuracy: {validate['mean_accuracy']:.3f} "
          f"(F1 {validate['mean_f1']:.3f})")

    status = service.status()
    print(f"\nplatform status: {sum(1 for s in status['workers'].values() if s == 'up')}"
          f"/{len(status['workers'])} workers up, "
          f"{status['experiments']['succeeded']}/{status['experiments']['total']} "
          "experiments succeeded, "
          f"SMPC rounds used: {status['smpc']['rounds']}")


if __name__ == "__main__":
    main()
