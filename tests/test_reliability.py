"""Reliability properties: determinism and concurrent use."""

import threading

import numpy as np
import pytest

from repro import (
    CohortSpec,
    FederationConfig,
    MIPService,
    create_federation,
    generate_cohort,
)


def build_service(seed=5, aggregation="plain"):
    federation = create_federation(
        {
            "h1": {"dementia": generate_cohort(CohortSpec("edsd", 120, seed=1))},
            "h2": {"dementia": generate_cohort(CohortSpec("adni", 120, seed=2))},
        },
        FederationConfig(seed=seed),
    )
    return MIPService(federation, aggregation=aggregation)


class TestDeterminism:
    def test_identical_setups_identical_results(self):
        """Same data, same seeds => byte-identical experiment results."""
        results = []
        for _ in range(2):
            service = build_service()
            outcome = service.run_experiment(
                "kmeans", "dementia", ["edsd", "adni"],
                y=["ab_42", "p_tau"], parameters={"k": 3, "seed": 9},
            )
            assert outcome.status.value == "success"
            results.append(outcome.result)
        assert results[0]["centroids"] == results[1]["centroids"]
        assert results[0]["inertia_history"] == results[1]["inertia_history"]

    def test_smpc_path_deterministic_results(self):
        """The protocol's randomness (shares, masks) must not leak into the
        opened aggregates."""
        values = []
        for seed in (11, 22):  # different protocol randomness
            federation = create_federation(
                {
                    "h1": {"dementia": generate_cohort(CohortSpec("edsd", 100, seed=1))},
                    "h2": {"dementia": generate_cohort(CohortSpec("adni", 100, seed=2))},
                },
                FederationConfig(smpc_scheme="shamir", seed=seed),
            )
            service = MIPService(federation, aggregation="smpc")
            outcome = service.run_experiment(
                "linear_regression", "dementia", ["edsd", "adni"],
                y=["lefthippocampus"], x=["agevalue"],
            )
            assert outcome.status.value == "success"
            values.append(outcome.result["coefficients"])
        assert np.allclose(values[0], values[1], atol=1e-9)


class TestConcurrentExperiments:
    def test_parallel_experiments_share_a_federation(self):
        """Several analysts can hit the same federation concurrently; the
        engines' reentrant locks keep statement execution consistent."""
        service = build_service()
        errors: list[str] = []
        outputs: dict[int, float] = {}

        def analyst(index: int) -> None:
            outcome = service.run_experiment(
                "ttest_onesample", "dementia", ["edsd", "adni"],
                y=["p_tau"], parameters={"mu": 40.0 + index},
            )
            if outcome.status.value != "success":
                errors.append(outcome.error)
            else:
                outputs[index] = outcome.result["t_statistic"]

        threads = [threading.Thread(target=analyst, args=(i,)) for i in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors
        assert len(outputs) == 6
        # different hypothesized means => strictly decreasing t statistics
        ordered = [outputs[i] for i in range(6)]
        assert all(a > b for a, b in zip(ordered, ordered[1:]))

    def test_worker_tables_clean_after_parallel_runs(self):
        service = build_service()
        worker = service.federation.workers["h1"]
        before = set(worker.database.table_names())

        def analyst() -> None:
            service.run_experiment(
                "pearson_correlation", "dementia", ["edsd", "adni"],
                y=["lefthippocampus", "righthippocampus"],
            )

        threads = [threading.Thread(target=analyst) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert set(worker.database.table_names()) == before


class TestParallelDispatchEquivalence:
    def test_sequential_and_parallel_federations_agree(self):
        """parallelism=1 (the old per-worker loops) and full fan-out must
        produce byte-identical experiment results."""
        results = []
        for parallelism in (1, None):
            federation = create_federation(
                {
                    "h1": {"dementia": generate_cohort(CohortSpec("edsd", 120, seed=1))},
                    "h2": {"dementia": generate_cohort(CohortSpec("adni", 120, seed=2))},
                },
                FederationConfig(seed=5, parallelism=parallelism),
            )
            service = MIPService(federation, aggregation="plain")
            outcome = service.run_experiment(
                "kmeans", "dementia", ["edsd", "adni"],
                y=["ab_42", "p_tau"], parameters={"k": 3, "seed": 9},
            )
            assert outcome.status.value == "success"
            results.append(outcome.result)
        assert results[0]["centroids"] == results[1]["centroids"]
        assert results[0]["inertia_history"] == results[1]["inertia_history"]

    def test_transport_stats_identical_across_widths(self):
        """The fan-out width changes wall-clock, never traffic."""
        counts = []
        for parallelism in (1, 4):
            federation = create_federation(
                {
                    "h1": {"dementia": generate_cohort(CohortSpec("edsd", 80, seed=1))},
                    "h2": {"dementia": generate_cohort(CohortSpec("adni", 80, seed=2))},
                },
                FederationConfig(seed=5, parallelism=parallelism),
            )
            service = MIPService(federation, aggregation="plain")
            outcome = service.run_experiment(
                "linear_regression", "dementia", ["edsd", "adni"],
                y=["lefthippocampus"], x=["agevalue"],
            )
            assert outcome.status.value == "success"
            snapshot = federation.transport.snapshot()
            counts.append((snapshot.messages, snapshot.bytes_sent))
        assert counts[0] == counts[1]


class TestFailureInjectionUnderConcurrency:
    def test_seeded_drops_fail_experiments_deterministically(self):
        """With a seeded lossy transport the same experiment either fails or
        succeeds identically on every run, regardless of fan-out threads."""
        outcomes = []
        for _ in range(2):
            federation = create_federation(
                {
                    "h1": {"dementia": generate_cohort(CohortSpec("edsd", 80, seed=1))},
                    "h2": {"dementia": generate_cohort(CohortSpec("adni", 80, seed=2))},
                },
                FederationConfig(seed=13, drop_probability=0.2),
            )
            service = MIPService(federation, aggregation="plain")
            outcome = service.run_experiment(
                "ttest_onesample", "dementia", ["edsd", "adni"],
                y=["p_tau"], parameters={"mu": 40.0},
            )
            outcomes.append((outcome.status.value, outcome.error))
        assert outcomes[0] == outcomes[1]

    def test_worker_down_mid_session_recovers(self):
        """A worker going down fails in-flight experiments cleanly; after
        recovery the same federation serves experiments again."""
        service = build_service()
        service.federation.set_worker_down("h2")
        outcome = service.run_experiment(
            "ttest_onesample", "dementia", ["edsd", "adni"],
            y=["p_tau"], parameters={"mu": 40.0},
        )
        assert outcome.status.value != "success"
        service.federation.set_worker_down("h2", down=False)
        retry = service.run_experiment(
            "ttest_onesample", "dementia", ["edsd", "adni"],
            y=["p_tau"], parameters={"mu": 40.0},
        )
        assert retry.status.value == "success"
        snapshot = service.federation.transport.snapshot()
        link_messages = sum(s.messages for s in service.federation.transport.link_stats.values())
        assert snapshot.messages == link_messages
