"""Shamir secret sharing."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SMPCError, ThresholdError
from repro.smpc import shamir
from repro.smpc.field import PRIME, FieldVector


@pytest.fixture()
def rng():
    return random.Random(42)


class TestSharing:
    def test_reconstruct_from_threshold_plus_one(self, rng):
        secret = FieldVector([5, PRIME - 2])
        shared = shamir.share_vector(secret, 5, 2, rng)
        assert shamir.reconstruct(shared) == secret

    def test_reconstruct_from_any_subset(self, rng):
        secret = FieldVector([31337])
        shared = shamir.share_vector(secret, 5, 2, rng)
        subset = [(4, shared.shares[4]), (1, shared.shares[1]), (3, shared.shares[3])]
        assert shamir.reconstruct_from_subset(subset, 2).elements == [31337]

    def test_too_few_shares(self, rng):
        secret = FieldVector([1])
        shared = shamir.share_vector(secret, 5, 2, rng)
        with pytest.raises(ThresholdError):
            shamir.reconstruct_from_subset([(0, shared.shares[0])], 2)

    def test_threshold_must_be_below_n(self, rng):
        with pytest.raises(SMPCError):
            shamir.share_vector(FieldVector([1]), 3, 3, rng)

    def test_default_threshold_below_half(self):
        assert shamir.default_threshold(3) == 1
        assert shamir.default_threshold(5) == 2
        assert shamir.default_threshold(7) == 3
        for n in range(2, 12):
            assert shamir.default_threshold(n) < n / 2 or n == 2

    @settings(max_examples=20)
    @given(
        st.lists(st.integers(0, PRIME - 1), min_size=1, max_size=4),
        st.integers(3, 7),
    )
    def test_share_reconstruct_property(self, values, n_parties):
        rng = random.Random(9)
        threshold = shamir.default_threshold(n_parties)
        secret = FieldVector(values)
        shared = shamir.share_vector(secret, n_parties, threshold, rng)
        assert shamir.reconstruct(shared) == secret


class TestLinearOps:
    def test_add(self, rng):
        a = shamir.share_vector(FieldVector([10]), 5, 2, rng)
        b = shamir.share_vector(FieldVector([32]), 5, 2, rng)
        assert shamir.reconstruct(shamir.add(a, b)).elements == [42]

    def test_sub(self, rng):
        a = shamir.share_vector(FieldVector([10]), 5, 2, rng)
        b = shamir.share_vector(FieldVector([3]), 5, 2, rng)
        assert shamir.reconstruct(shamir.sub(a, b)).elements == [7]

    def test_scale(self, rng):
        a = shamir.share_vector(FieldVector([10]), 5, 2, rng)
        assert shamir.reconstruct(shamir.scale(a, 4)).elements == [40]

    def test_add_public(self, rng):
        a = shamir.share_vector(FieldVector([10]), 5, 2, rng)
        assert shamir.reconstruct(shamir.add_public(a, FieldVector([5]))).elements == [15]

    def test_incompatible_sharings(self, rng):
        a = shamir.share_vector(FieldVector([1]), 5, 2, rng)
        b = shamir.share_vector(FieldVector([1]), 5, 1, rng)
        with pytest.raises(SMPCError):
            shamir.add(a, b)


class TestMultiplication:
    def test_local_product_at_double_degree(self, rng):
        """Share-wise product reconstructs at degree 2t (needs 2t+1 <= n)."""
        a = shamir.share_vector(FieldVector([6]), 5, 2, rng)
        b = shamir.share_vector(FieldVector([7]), 5, 2, rng)
        product = shamir.multiply_local(a, b)
        assert shamir.reconstruct(product, degree=4).elements == [42]

    def test_product_not_enough_parties(self, rng):
        a = shamir.share_vector(FieldVector([6]), 3, 2, rng)
        b = shamir.share_vector(FieldVector([7]), 3, 2, rng)
        product = shamir.multiply_local(a, b)
        with pytest.raises(ThresholdError):
            shamir.reconstruct(product, degree=4)


class TestLagrange:
    def test_coefficients_sum_to_one(self):
        # Interpolating a constant polynomial: coefficients must sum to 1.
        coefficients = shamir.lagrange_coefficients_at_zero([1, 2, 3])
        assert sum(coefficients) % PRIME == 1

    def test_public_to_shared(self):
        shared = shamir.public_to_shared(FieldVector([11]), 4, 1)
        assert shamir.reconstruct(shared).elements == [11]
