"""Active-security behaviour of the full-threshold protocol."""

import pytest

from repro.errors import IntegrityError
from repro.smpc.field import PRIME, FieldVector
from repro.smpc.protocol import FTProtocol, ShamirProtocol


def encode(protocol, values):
    return FieldVector(protocol.encoder.encode_vector(values))


class TestTamperDetection:
    def test_tampered_input_share_aborts_open(self):
        protocol = FTProtocol(3, seed=1)
        shared = protocol.input_vector(encode(protocol, [5.0]))
        shared.shares[1].elements[0] = (shared.shares[1].elements[0] + 1) % PRIME
        with pytest.raises(IntegrityError):
            protocol.open(shared)

    def test_tampering_after_linear_ops_detected(self):
        """MACs survive local computation: corruption introduced *after*
        additions still aborts the eventual open."""
        protocol = FTProtocol(3, seed=2)
        a = protocol.input_vector(encode(protocol, [1.0, 2.0]))
        b = protocol.input_vector(encode(protocol, [3.0, 4.0]))
        total = protocol.add(a, protocol.scale(b, 2))
        total.shares[0].elements[1] = (total.shares[0].elements[1] + 7) % PRIME
        with pytest.raises(IntegrityError):
            protocol.open(total)

    def test_tampering_during_multiplication_detected(self):
        """Corrupting a share between the Beaver opens and the final open is
        caught by the MAC check on the result."""
        protocol = FTProtocol(3, seed=3)
        a = protocol.input_vector(encode(protocol, [3.0]))
        b = protocol.input_vector(encode(protocol, [4.0]))
        product = protocol.mul(a, b)
        product.shares[2].elements[0] = (product.shares[2].elements[0] ^ 1) % PRIME
        with pytest.raises(IntegrityError):
            protocol.open(product)

    def test_shamir_does_not_detect_tampering(self):
        """The honest-but-curious scheme reconstructs whatever it is given —
        the security difference the paper's trade-off is about."""
        protocol = ShamirProtocol(3, seed=4)
        shared = protocol.input_vector(encode(protocol, [5.0]))
        shared.shares[0].elements[0] = (shared.shares[0].elements[0] + 1) % PRIME
        opened = protocol.open(shared)  # no abort — and a wrong value
        assert protocol.encoder.decode_vector(opened.elements)[0] != 5.0

    def test_clean_multiplication_passes_mac_check(self):
        protocol = FTProtocol(3, seed=5)
        a = protocol.input_vector(encode(protocol, [3.0]))
        b = protocol.input_vector(encode(protocol, [4.0]))
        product = protocol.mul_fixed_point(a, b)
        opened = protocol.encoder.decode_vector(protocol.open(product).elements)
        assert opened[0] == pytest.approx(12.0, abs=1e-3)
