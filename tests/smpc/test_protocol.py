"""Online protocols: FT (SPDZ-style) and Shamir, over the same op set."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smpc.encoding import FixedPointEncoder
from repro.smpc.field import FieldVector
from repro.smpc.protocol import FTProtocol, ShamirProtocol


def protocols():
    return [
        pytest.param(lambda: FTProtocol(3, seed=5), id="full_threshold"),
        pytest.param(lambda: ShamirProtocol(3, seed=5), id="shamir"),
    ]


def encode(protocol, values):
    return FieldVector(protocol.encoder.encode_vector(np.asarray(values, dtype=float)))


def decode(protocol, vector):
    return protocol.encoder.decode_vector(vector.elements)


@pytest.mark.parametrize("make", protocols())
class TestBasicOps:
    def test_input_open_roundtrip(self, make):
        protocol = make()
        shared = protocol.input_vector(encode(protocol, [1.5, -2.25]))
        assert decode(protocol, protocol.open(shared)).tolist() == [1.5, -2.25]

    def test_sum_inputs(self, make):
        protocol = make()
        inputs = [protocol.input_vector(encode(protocol, [1.0, 2.0])),
                  protocol.input_vector(encode(protocol, [0.5, -1.0]))]
        opened = decode(protocol, protocol.open(protocol.sum_inputs(inputs)))
        assert opened.tolist() == [1.5, 1.0]

    def test_mul(self, make):
        protocol = make()
        a = protocol.input_vector(encode(protocol, [3.0, -2.0]))
        b = protocol.input_vector(encode(protocol, [4.0, 5.0]))
        product = protocol.mul(a, b)
        # fixed-point product carries one extra scale factor; for exactly
        # divisible products a public inverse-scale works
        from repro.smpc.field import finv

        rescaled = protocol.scale(product, finv(protocol.encoder.scale))
        assert decode(protocol, protocol.open(rescaled)).tolist() == [12.0, -10.0]

    def test_mul_fixed_point_truncation(self, make):
        """General products need the truncation protocol, not a public
        inverse (the scale rarely divides the raw product)."""
        protocol = make()
        a = protocol.input_vector(encode(protocol, [1.7, -2.45]))
        b = protocol.input_vector(encode(protocol, [3.3, 0.61]))
        product = protocol.mul_fixed_point(a, b)
        opened = decode(protocol, protocol.open(product))
        assert opened == pytest.approx([5.61, -1.4945], abs=1e-3)

    def test_truncate_floor_semantics(self, make):
        protocol = make()
        scale = protocol.encoder.scale
        from repro.smpc.field import PRIME

        # shared raw integers 7*scale + 1 and -(3*scale) - 1
        raw = FieldVector([7 * scale + 1, (-(3 * scale) - 1) % PRIME])
        shared = protocol.input_vector(raw)
        truncated = protocol.open(protocol.truncate(shared))
        values = [protocol.encoder.decode_int(e) for e in truncated.elements]
        assert values == [7, -4]  # floor division toward -inf

    def test_scale_and_add_public(self, make):
        protocol = make()
        a = protocol.input_vector(encode(protocol, [2.0]))
        shifted = protocol.add_public(a, encode(protocol, [0.5]))
        assert decode(protocol, protocol.open(shifted)).tolist() == [2.5]


@pytest.mark.parametrize("make", protocols())
class TestComparison:
    def test_ltz_signs(self, make):
        protocol = make()
        shared = protocol.input_vector(encode(protocol, [-1.0, 0.0, 2.5, -0.001]))
        bits = protocol.open(protocol.ltz(shared))
        assert bits.elements == [1, 0, 0, 1]

    def test_minimum_inputs(self, make):
        protocol = make()
        inputs = [protocol.input_vector(encode(protocol, [4.0, -2.0])),
                  protocol.input_vector(encode(protocol, [1.0, -7.5])),
                  protocol.input_vector(encode(protocol, [2.0, 0.0]))]
        opened = decode(protocol, protocol.open(protocol.minimum_inputs(inputs)))
        assert opened.tolist() == [1.0, -7.5]

    def test_maximum_inputs(self, make):
        protocol = make()
        inputs = [protocol.input_vector(encode(protocol, [4.0, -2.0])),
                  protocol.input_vector(encode(protocol, [1.0, -7.5]))]
        opened = decode(protocol, protocol.open(protocol.maximum_inputs(inputs)))
        assert opened.tolist() == [4.0, -2.0]

    def test_union_inputs(self, make):
        protocol = make()
        encoder = protocol.encoder
        first = protocol.input_vector(FieldVector([encoder.encode_int(v) for v in [1, 0, 1, 0]]))
        second = protocol.input_vector(FieldVector([encoder.encode_int(v) for v in [0, 0, 1, 1]]))
        opened = protocol.open(protocol.union_inputs([first, second]))
        assert [encoder.decode_int(e) for e in opened.elements] == [1, 0, 1, 1]

@settings(max_examples=15, deadline=None)
@given(st.lists(st.floats(-100, 100), min_size=1, max_size=4))
def test_ltz_property(values):
    protocol = ShamirProtocol(3, seed=1)
    shared = protocol.input_vector(encode(protocol, values))
    bits = protocol.open(protocol.ltz(shared))
    rounded = [round(v * protocol.encoder.scale) for v in values]
    assert bits.elements == [1 if r < 0 else 0 for r in rounded]


class TestCostOrdering:
    """The paper's security/efficiency trade-off: FT costs more than Shamir."""

    def test_ft_sends_more_elements_for_same_work(self):
        ft = FTProtocol(3, seed=1)
        sh = ShamirProtocol(3, seed=1)
        for protocol in (ft, sh):
            inputs = [protocol.input_vector(encode(protocol, [1.0] * 16)) for _ in range(3)]
            protocol.open(protocol.sum_inputs(inputs))
        assert ft.meter.elements > sh.meter.elements
        assert ft.meter.rounds > sh.meter.rounds

    def test_ft_offline_deals_more_material(self):
        ft = FTProtocol(3, seed=1)
        sh = ShamirProtocol(3, seed=1)
        for protocol in (ft, sh):
            a = protocol.input_vector(encode(protocol, [1.0] * 8))
            b = protocol.input_vector(encode(protocol, [2.0] * 8))
            protocol.open(protocol.mul(a, b))
        assert ft.dealer.usage.elements_dealt > sh.dealer.usage.elements_dealt

    def test_meter_resets(self):
        protocol = ShamirProtocol(3, seed=1)
        protocol.open(protocol.input_vector(encode(protocol, [1.0])))
        assert protocol.meter.rounds > 0
        protocol.meter.reset()
        assert protocol.meter.rounds == 0
        assert protocol.meter.bytes_sent == 0


class TestConfiguration:
    def test_min_parties(self):
        with pytest.raises(Exception):
            FTProtocol(1)

    def test_shamir_threshold_rule(self):
        with pytest.raises(Exception):
            ShamirProtocol(4, threshold=2)  # t < n/2 required for multiplication
