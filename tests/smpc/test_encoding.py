"""Fixed-point encoding of reals into the field."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SMPCError
from repro.smpc.encoding import FixedPointEncoder


@pytest.fixture()
def encoder():
    return FixedPointEncoder()


class TestRoundtrip:
    @given(st.floats(-1e6, 1e6))
    def test_roundtrip_within_precision(self, value):
        encoder = FixedPointEncoder()
        decoded = encoder.decode(encoder.encode(value))
        assert decoded == pytest.approx(value, abs=1.0 / encoder.scale)

    def test_negative_representation(self, encoder):
        assert encoder.decode(encoder.encode(-1.5)) == -1.5

    def test_zero(self, encoder):
        assert encoder.decode(encoder.encode(0.0)) == 0.0

    @given(st.integers(-10**6, 10**6))
    def test_integer_mode_exact(self, value):
        encoder = FixedPointEncoder()
        assert encoder.decode_int(encoder.encode_int(value)) == value

    def test_vector_roundtrip(self, encoder):
        values = np.array([1.25, -2.5, 0.0])
        decoded = encoder.decode_vector(encoder.encode_vector(values))
        assert np.allclose(decoded, values)


class TestRangeChecks:
    def test_out_of_range_rejected(self, encoder):
        limit = encoder.bound / encoder.scale
        with pytest.raises(SMPCError):
            encoder.encode(limit * 2)

    def test_integer_out_of_range(self, encoder):
        with pytest.raises(SMPCError):
            encoder.encode_int(encoder.bound * 2)

    def test_bad_parameters(self):
        with pytest.raises(SMPCError):
            FixedPointEncoder(fractional_bits=50, magnitude_bits=40)


class TestHomomorphism:
    """Field addition of encodings corresponds to real addition."""

    @given(st.floats(-1e3, 1e3), st.floats(-1e3, 1e3))
    def test_additive(self, a, b):
        from repro.smpc.field import fadd

        encoder = FixedPointEncoder()
        combined = encoder.decode(fadd(encoder.encode(a), encoder.encode(b)))
        assert combined == pytest.approx(a + b, abs=2.0 / encoder.scale)
