"""Differential tests: the numpy limb kernel vs the python reference.

Every FieldVector operation, share/reconstruct round-trip, and E4-style
aggregate must produce byte-identical results under both kernels — field
arithmetic is exact, so there is no tolerance anywhere in this file.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smpc import additive, field, limb, shamir
from repro.smpc.cluster import SMPCCluster
from repro.smpc.encoding import FixedPointEncoder
from repro.smpc.field import PRIME, FieldVector

#: Values that stress every limb boundary of the (5 x 26-bit) layout.
EDGE_VALUES = [
    0,
    1,
    2,
    (1 << 26) - 1,
    1 << 26,
    (1 << 26) + 1,
    (1 << 52) - 1,
    1 << 52,
    (1 << 52) + 1,
    1 << 78,
    1 << 104,
    1 << 126,
    (PRIME - 1) // 2,
    (PRIME + 1) // 2,
    PRIME - 2,
    PRIME - 1,
]

elements = st.one_of(
    st.sampled_from(EDGE_VALUES), st.integers(0, PRIME - 1)
)
vectors = st.lists(elements, min_size=0, max_size=24)
paired_vectors = st.integers(0, 24).flatmap(
    lambda n: st.tuples(
        st.lists(elements, min_size=n, max_size=n),
        st.lists(elements, min_size=n, max_size=n),
    )
)


@pytest.fixture
def both_kernels():
    """Run a callable under each kernel and assert identical output."""

    def run(fn):
        results = {}
        for kernel in ("python", "numpy"):
            previous = field.set_kernel(kernel)
            try:
                results[kernel] = fn()
            finally:
                field.set_kernel(previous)
        assert results["python"] == results["numpy"]
        return results["python"]

    return run


def _differential(fn):
    """Non-fixture variant for use inside @given bodies."""
    results = {}
    for kernel in ("python", "numpy"):
        previous = field.set_kernel(kernel)
        try:
            results[kernel] = fn()
        finally:
            field.set_kernel(previous)
    assert results["python"] == results["numpy"]
    return results["python"]


class TestVectorOps:
    @given(paired_vectors)
    def test_add_sub_mul(self, pair):
        a, b = pair
        _differential(lambda: (FieldVector(a) + FieldVector(b)).elements)
        _differential(lambda: (FieldVector(a) - FieldVector(b)).elements)
        _differential(lambda: (FieldVector(a) * FieldVector(b)).elements)

    @given(vectors, elements)
    def test_scale_and_add_scalar(self, a, scalar):
        _differential(lambda: FieldVector(a).scale(scalar).elements)
        _differential(lambda: FieldVector(a).add_scalar(scalar).elements)

    @given(vectors)
    def test_negate_is_zero_take(self, a):
        _differential(lambda: FieldVector(a).negate().elements)
        _differential(lambda: FieldVector(a).is_zero())
        indices = [i for i in range(len(a)) for _ in range(2)]
        _differential(lambda: FieldVector(a).take(indices).elements)

    @given(paired_vectors)
    def test_vector_sum(self, pair):
        a, b = pair
        _differential(
            lambda: field.vector_sum(
                [FieldVector(a), FieldVector(b), FieldVector(a)]
            ).elements
        )

    @given(paired_vectors, elements, elements)
    def test_linear_combination(self, pair, s1, s2):
        a, b = pair
        _differential(
            lambda: field.linear_combination(
                [s1, s2], [FieldVector(a), FieldVector(b)]
            ).elements
        )

    @given(vectors)
    @settings(max_examples=25)
    def test_linear_combination_past_fold_limit(self, a):
        """More terms than LAZY_MUL_LIMIT forces the mid-stream fold."""
        terms = limb.LAZY_MUL_LIMIT + 3
        scalars = [(i * 7 + 1) % PRIME for i in range(terms)]
        _differential(
            lambda: field.linear_combination(
                scalars, [FieldVector(a)] * terms
            ).elements
        )

    def test_small_negative_scalar_path(self):
        """Lagrange weights like p-1 take the small-negative fast path."""
        a = EDGE_VALUES
        b = list(reversed(EDGE_VALUES))
        expected = [
            (2 * x + (PRIME - 1) * y) % PRIME for x, y in zip(a, b)
        ]
        out = _differential(
            lambda: field.linear_combination(
                [2, PRIME - 1], [FieldVector(a), FieldVector(b)]
            ).elements
        )
        assert out == expected

    def test_empty_and_single_element(self):
        for data in ([], [PRIME - 1]):
            _differential(lambda d=data: (FieldVector(d) + FieldVector(d)).elements)
            _differential(lambda d=data: (FieldVector(d) * FieldVector(d)).elements)
            _differential(lambda d=data: FieldVector(d).scale(PRIME - 1).elements)


class TestSignedBridge:
    @given(st.lists(st.integers(-(2**62) + 1, 2**62 - 1), max_size=16))
    def test_from_signed_round_trip(self, values):
        array = np.array(values, dtype=np.int64)
        out = _differential(
            lambda: FieldVector.from_signed_int64(array).elements
        )
        assert out == [v % PRIME for v in values]
        back = _differential(
            lambda: FieldVector.from_signed_int64(array).to_signed_int64().tolist()
        )
        assert back == values

    def test_to_signed_overflow_returns_none(self):
        for kernel in ("python", "numpy"):
            previous = field.set_kernel(kernel)
            try:
                assert FieldVector([1 << 62]).to_signed_int64() is None
                assert FieldVector([PRIME - (1 << 62)]).to_signed_int64() is None
            finally:
                field.set_kernel(previous)


class TestSharingRoundTrips:
    @given(vectors, st.integers(0, 2**31))
    @settings(max_examples=30)
    def test_shamir_share_reconstruct(self, data, seed):
        def flow():
            rng = random.Random(seed)
            shared = shamir.share_vector(FieldVector(data), 5, 2, rng)
            shares = [s.elements for s in shared.shares]
            return shares, shamir.reconstruct(shared).elements

        shares, opened = _differential(flow)
        assert opened == [v % PRIME for v in data]

    @given(vectors, st.integers(0, 2**31))
    @settings(max_examples=30)
    def test_additive_share_reconstruct(self, data, seed):
        def flow():
            rng = random.Random(seed)
            alpha, alpha_shares = additive.share_alpha(3, rng)
            shared = additive.share_vector(FieldVector(data), 3, alpha, rng)
            opened = additive.reconstruct(shared)
            additive.check_macs(shared, opened, alpha_shares)
            return [s.elements for s in shared.shares], opened.elements

        _, opened = _differential(flow)
        assert opened == [v % PRIME for v in data]

    def test_high_threshold_shamir(self):
        """Thresholds past 1 exercise the multi-power batched evaluator."""
        data = EDGE_VALUES

        def flow():
            rng = random.Random(99)
            shared = shamir.share_vector(FieldVector(data), 9, 4, rng)
            return shamir.reconstruct(shared).elements

        assert _differential(flow) == data


class TestRandomStreamRegression:
    """Pin: batched draws consume the seeded RNG exactly like the reference
    per-element ``rng.randrange`` loop (the PR's bugfix)."""

    def test_field_vector_random_matches_randrange(self):
        for kernel in ("python", "numpy"):
            previous = field.set_kernel(kernel)
            try:
                r1, r2 = random.Random(1234), random.Random(1234)
                batched = FieldVector.random(257, r1)
                reference = [r2.randrange(PRIME) for _ in range(257)]
                assert batched.elements == reference
                # The streams stay aligned after the draw.
                assert r1.random() == r2.random()
            finally:
                field.set_kernel(previous)

    def test_random_bits_match_randrange(self):
        r1, r2 = random.Random(77), random.Random(77)
        bits = field.random_bit_elements(503, r1)
        reference = [r2.randrange(2) for _ in range(503)]
        assert bits == reference
        assert r1.random() == r2.random()

    def test_kernels_draw_identical_streams(self):
        draws = {}
        for kernel in ("python", "numpy"):
            previous = field.set_kernel(kernel)
            try:
                rng = random.Random(4321)
                draws[kernel] = (
                    FieldVector.random(100, rng).elements,
                    rng.random(),
                )
            finally:
                field.set_kernel(previous)
        assert draws["python"] == draws["numpy"]


class TestEncoderBridges:
    @given(st.lists(st.floats(-1e9, 1e9), max_size=16))
    def test_encode_matches_scalar_path(self, values):
        encoder = FixedPointEncoder()

        def encode():
            return encoder.encode_to_field_vector(values).elements

        out = _differential(encode)
        assert out == [encoder.encode(v) for v in values]

    @given(st.lists(st.floats(-1e9, 1e9), max_size=16))
    def test_decode_matches_scalar_path(self, values):
        encoder = FixedPointEncoder()
        encoded = [encoder.encode(v) for v in values]

        def decode():
            return encoder.decode_field_vector(FieldVector(encoded)).tolist()

        out = _differential(decode)
        assert out == [encoder.decode(e) for e in encoded]

    def test_encode_large_falls_back_exactly(self):
        encoder = FixedPointEncoder()
        big = [float(2**50), -float(2**50)]  # scaled past the int64 bound
        out = _differential(
            lambda: encoder.encode_to_field_vector(big).elements
        )
        assert out == [encoder.encode(v) for v in big]

    def test_encode_out_of_range_raises_both_kernels(self):
        encoder = FixedPointEncoder()
        from repro.errors import SMPCError

        for kernel in ("python", "numpy"):
            previous = field.set_kernel(kernel)
            try:
                with pytest.raises(SMPCError):
                    encoder.encode_to_field_vector([float(2**70)])
            finally:
                field.set_kernel(previous)

    def test_encode_ints_matches_scalar_path(self):
        encoder = FixedPointEncoder()
        values = np.array([0.0, 1.0, -3.0, 2.5, -2.5, 1e15])
        out = _differential(
            lambda: encoder.encode_ints_to_field_vector(values).elements
        )
        assert out == [encoder.encode_int(int(round(v))) for v in values]


class TestClusterAggregates:
    """E4-style aggregates must open bit-identically under both kernels and
    both schemes, with identical round/element telemetry."""

    @pytest.mark.parametrize("scheme", ["shamir", "full_threshold"])
    @pytest.mark.parametrize("operation", ["sum", "min", "max", "union"])
    def test_aggregate_bit_exact(self, scheme, operation):
        rng = np.random.default_rng(5)
        if operation == "union":
            data = [rng.integers(0, 2, 40).astype(float).tolist() for _ in range(3)]
        else:
            data = [rng.normal(0.0, 50.0, 40).tolist() for _ in range(3)]

        def flow():
            cluster = SMPCCluster(n_nodes=3, scheme=scheme, seed=11)
            for i, values in enumerate(data):
                cluster.import_shares(
                    "job", f"w{i}", {"k": {"data": values, "operation": operation}}
                )
            result = cluster.aggregate("job")
            meter = cluster.communication
            return result, (meter.rounds, meter.elements)

        results = {}
        for kernel in ("python", "numpy"):
            previous = field.set_kernel(kernel)
            try:
                results[kernel] = flow()
            finally:
                field.set_kernel(previous)
        assert results["python"] == results["numpy"]

    @pytest.mark.parametrize("scheme", ["shamir", "full_threshold"])
    def test_scalar_and_matrix_payloads(self, scheme):
        def flow():
            cluster = SMPCCluster(n_nodes=3, scheme=scheme, seed=3)
            for i in range(3):
                cluster.import_shares(
                    "j",
                    f"w{i}",
                    {
                        "count": {"data": 10.0 * (i + 1), "operation": "sum"},
                        "cov": {
                            "data": [[1.5 * i, -2.25], [0.125, 7.0 + i]],
                            "operation": "sum",
                        },
                    },
                )
            return cluster.aggregate("j")

        results = {}
        for kernel in ("python", "numpy"):
            previous = field.set_kernel(kernel)
            try:
                results[kernel] = flow()
            finally:
                field.set_kernel(previous)
        assert results["python"] == results["numpy"]
        assert results["numpy"]["count"] == 60.0
