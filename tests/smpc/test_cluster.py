"""The SMPC cluster facade."""

import numpy as np
import pytest

from repro.errors import SMPCError
from repro.smpc.cluster import NoiseSpec, SMPCCluster


def two_worker_job(cluster, job="job"):
    cluster.import_shares(job, "w1", {
        "sums": {"data": [1.0, 2.0], "operation": "sum"},
        "count": {"data": 5, "operation": "sum"},
    })
    cluster.import_shares(job, "w2", {
        "sums": {"data": [3.0, 4.0], "operation": "sum"},
        "count": {"data": 7, "operation": "sum"},
    })
    return job


@pytest.mark.parametrize("scheme", ["shamir", "full_threshold"])
class TestAggregate:
    def test_sum(self, scheme):
        cluster = SMPCCluster(3, scheme, seed=1)
        job = two_worker_job(cluster)
        result = cluster.aggregate(job)
        assert result["sums"] == [4.0, 6.0]
        assert result["count"] == 12.0

    def test_min_max_union_product(self, scheme):
        cluster = SMPCCluster(3, scheme, seed=2)
        cluster.import_shares("j", "w1", {
            "mn": {"data": [5.0, -1.0], "operation": "min"},
            "mx": {"data": [5.0, -1.0], "operation": "max"},
            "u": {"data": [1, 0], "operation": "union"},
            "p": {"data": [2.0], "operation": "product"},
        })
        cluster.import_shares("j", "w2", {
            "mn": {"data": [3.0, 4.0], "operation": "min"},
            "mx": {"data": [3.0, 4.0], "operation": "max"},
            "u": {"data": [0, 0], "operation": "union"},
            "p": {"data": [-3.5], "operation": "product"},
        })
        result = cluster.aggregate("j")
        assert result["mn"] == [3.0, -1.0]
        assert result["mx"] == [5.0, 4.0]
        assert result["u"] == [1, 0]
        assert result["p"] == [-7.0]


class TestJobLifecycle:
    def test_result_retrievable_by_id(self):
        cluster = SMPCCluster(3, "shamir", seed=1)
        job = two_worker_job(cluster)
        cluster.aggregate(job)
        assert cluster.get_result(job)["count"] == 12.0

    def test_aggregate_idempotent(self):
        cluster = SMPCCluster(3, "shamir", seed=1)
        job = two_worker_job(cluster)
        first = cluster.aggregate(job)
        assert cluster.aggregate(job) is first

    def test_duplicate_worker_rejected(self):
        cluster = SMPCCluster(3, "shamir", seed=1)
        cluster.import_shares("j", "w1", {"s": {"data": 1, "operation": "sum"}})
        with pytest.raises(SMPCError):
            cluster.import_shares("j", "w1", {"s": {"data": 1, "operation": "sum"}})

    def test_unknown_job(self):
        cluster = SMPCCluster(3, "shamir", seed=1)
        with pytest.raises(SMPCError):
            cluster.aggregate("ghost")
        with pytest.raises(SMPCError):
            cluster.get_result("ghost")

    def test_key_mismatch_rejected(self):
        cluster = SMPCCluster(3, "shamir", seed=1)
        cluster.import_shares("j", "w1", {"a": {"data": 1, "operation": "sum"}})
        cluster.import_shares("j", "w2", {"b": {"data": 1, "operation": "sum"}})
        with pytest.raises(SMPCError, match="disagree"):
            cluster.aggregate("j")

    def test_operation_conflict_rejected(self):
        cluster = SMPCCluster(3, "shamir", seed=1)
        cluster.import_shares("j", "w1", {"a": {"data": 1, "operation": "sum"}})
        cluster.import_shares("j", "w2", {"a": {"data": 1, "operation": "min"}})
        with pytest.raises(SMPCError, match="conflict"):
            cluster.aggregate("j")

    def test_shape_mismatch_rejected(self):
        cluster = SMPCCluster(3, "shamir", seed=1)
        cluster.import_shares("j", "w1", {"a": {"data": [1, 2], "operation": "sum"}})
        cluster.import_shares("j", "w2", {"a": {"data": [1], "operation": "sum"}})
        with pytest.raises(SMPCError, match="shape"):
            cluster.aggregate("j")

    def test_bad_scheme(self):
        with pytest.raises(SMPCError):
            SMPCCluster(3, "garlic")


class TestNoiseInjection:
    def test_gaussian_noise_applied_to_sums(self):
        results = []
        for seed in range(5):
            cluster = SMPCCluster(3, "shamir", seed=seed)
            cluster.import_shares("j", "w1", {"s": {"data": [100.0], "operation": "sum"}})
            cluster.import_shares("j", "w2", {"s": {"data": [200.0], "operation": "sum"}})
            results.append(cluster.aggregate("j", noise=NoiseSpec("gaussian", 2.0))["s"][0])
        # noisy but centered near the true sum
        assert all(abs(v - 300.0) < 30 for v in results)
        assert len(set(results)) > 1

    def test_laplace_noise(self):
        cluster = SMPCCluster(3, "shamir", seed=0)
        cluster.import_shares("j", "w1", {"s": {"data": [50.0], "operation": "sum"}})
        cluster.import_shares("j", "w2", {"s": {"data": [50.0], "operation": "sum"}})
        value = cluster.aggregate("j", noise=NoiseSpec("laplace", 1.0))["s"][0]
        assert abs(value - 100.0) < 30

    def test_noise_partials_sum_to_target_distribution(self):
        spec = NoiseSpec("gaussian", 3.0)
        rng = np.random.default_rng(1)
        totals = np.array([
            sum(spec.partial(rng, 4, 1)[0] for _ in range(4)) for _ in range(4000)
        ])
        assert np.std(totals) == pytest.approx(3.0, rel=0.1)

    def test_scalar_shape_preserved(self):
        cluster = SMPCCluster(3, "shamir", seed=1)
        cluster.import_shares("j", "w1", {"s": {"data": 2.0, "operation": "sum"}})
        cluster.import_shares("j", "w2", {"s": {"data": 3.0, "operation": "sum"}})
        result = cluster.aggregate("j")
        assert isinstance(result["s"], float)

    def test_nested_shape_preserved(self):
        cluster = SMPCCluster(3, "shamir", seed=1)
        matrix = [[1.0, 2.0], [3.0, 4.0]]
        cluster.import_shares("j", "w1", {"m": {"data": matrix, "operation": "sum"}})
        cluster.import_shares("j", "w2", {"m": {"data": matrix, "operation": "sum"}})
        result = cluster.aggregate("j")
        assert result["m"] == [[2.0, 4.0], [6.0, 8.0]]
