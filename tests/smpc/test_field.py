"""Prime-field arithmetic."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SMPCError
from repro.smpc.field import (
    PRIME,
    FieldVector,
    fadd,
    finv,
    fmul,
    fneg,
    fpow,
    fsub,
    vector_sum,
)

elements = st.integers(0, PRIME - 1)


class TestScalarOps:
    @given(elements, elements)
    def test_add_sub_inverse(self, a, b):
        assert fsub(fadd(a, b), b) == a % PRIME

    @given(elements)
    def test_neg(self, a):
        assert fadd(a, fneg(a)) == 0

    @given(st.integers(1, PRIME - 1))
    def test_inverse(self, a):
        assert fmul(a, finv(a)) == 1

    def test_zero_has_no_inverse(self):
        with pytest.raises(SMPCError):
            finv(0)

    @given(st.integers(1, PRIME - 1), st.integers(0, 100))
    def test_pow_matches_repeated_mul(self, a, exponent):
        expected = 1
        for _ in range(exponent):
            expected = fmul(expected, a)
        assert fpow(a, exponent) == expected

    def test_prime_is_mersenne_127(self):
        assert PRIME == (1 << 127) - 1


class TestFieldVector:
    def test_construction_reduces_mod_p(self):
        vec = FieldVector([PRIME + 1, -1])
        assert vec.elements == [1, PRIME - 1]

    def test_elementwise_ops(self):
        a = FieldVector([1, 2, 3])
        b = FieldVector([10, 20, 30])
        assert (a + b).elements == [11, 22, 33]
        assert (b - a).elements == [9, 18, 27]
        assert (a * b).elements == [10, 40, 90]

    def test_scale_and_add_scalar(self):
        a = FieldVector([1, 2])
        assert a.scale(3).elements == [3, 6]
        assert a.add_scalar(5).elements == [6, 7]

    def test_negate(self):
        a = FieldVector([1])
        assert (a + a.negate()).elements == [0]

    def test_length_mismatch(self):
        with pytest.raises(SMPCError):
            FieldVector([1]) + FieldVector([1, 2])

    def test_random_in_range(self):
        vec = FieldVector.random(100, random.Random(1))
        assert all(0 <= e < PRIME for e in vec)

    def test_zeros(self):
        assert FieldVector.zeros(3).elements == [0, 0, 0]

    def test_vector_sum(self):
        vectors = [FieldVector([1, 1]), FieldVector([2, 2]), FieldVector([3, 3])]
        assert vector_sum(vectors).elements == [6, 6]

    def test_vector_sum_empty(self):
        with pytest.raises(SMPCError):
            vector_sum([])

    @given(st.lists(elements, min_size=1, max_size=8))
    def test_add_commutes(self, values):
        a = FieldVector(values)
        b = FieldVector(list(reversed(values)))
        assert (a + b).elements == (b + a).elements
