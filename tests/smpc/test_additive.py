"""Full-threshold additive sharing with SPDZ MACs."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import IntegrityError
from repro.smpc import additive
from repro.smpc.field import PRIME, FieldVector


@pytest.fixture()
def rng():
    return random.Random(42)


@pytest.fixture()
def alpha(rng):
    alpha_value, shares = additive.share_alpha(3, rng)
    return alpha_value, shares


class TestSharing:
    def test_reconstruct(self, rng, alpha):
        alpha_value, _ = alpha
        secret = FieldVector([5, 10, PRIME - 1])
        shared = additive.share_vector(secret, 3, alpha_value, rng)
        assert additive.reconstruct(shared) == secret

    def test_all_shares_required(self, rng, alpha):
        """n-1 shares reveal nothing: their sum is uniformly unrelated."""
        alpha_value, _ = alpha
        secret = FieldVector([7])
        shared = additive.share_vector(secret, 3, alpha_value, rng)
        partial = sum(shared.shares[0].elements + shared.shares[1].elements) % PRIME
        assert partial != 7  # overwhelmingly likely; seeded so deterministic

    def test_alpha_shares_sum_to_alpha(self, alpha):
        alpha_value, shares = alpha
        assert sum(shares) % PRIME == alpha_value

    @settings(max_examples=20)
    @given(st.lists(st.integers(0, PRIME - 1), min_size=1, max_size=5),
           st.integers(2, 6))
    def test_share_reconstruct_property(self, values, n_parties):
        rng = random.Random(7)
        alpha_value, _ = additive.share_alpha(n_parties, rng)
        secret = FieldVector(values)
        shared = additive.share_vector(secret, n_parties, alpha_value, rng)
        assert additive.reconstruct(shared) == secret


class TestMACs:
    def test_valid_macs_pass(self, rng, alpha):
        alpha_value, alpha_shares = alpha
        secret = FieldVector([123, 456])
        shared = additive.share_vector(secret, 3, alpha_value, rng)
        opened = additive.reconstruct(shared)
        additive.check_macs(shared, opened, alpha_shares)  # no raise

    def test_tampered_share_detected(self, rng, alpha):
        alpha_value, alpha_shares = alpha
        secret = FieldVector([123])
        shared = additive.share_vector(secret, 3, alpha_value, rng)
        shared.shares[1].elements[0] = (shared.shares[1].elements[0] + 1) % PRIME
        opened = additive.reconstruct(shared)
        with pytest.raises(IntegrityError):
            additive.check_macs(shared, opened, alpha_shares)

    def test_tampered_mac_detected(self, rng, alpha):
        alpha_value, alpha_shares = alpha
        secret = FieldVector([123])
        shared = additive.share_vector(secret, 3, alpha_value, rng)
        shared.macs[0].elements[0] = (shared.macs[0].elements[0] + 1) % PRIME
        opened = additive.reconstruct(shared)
        with pytest.raises(IntegrityError):
            additive.check_macs(shared, opened, alpha_shares)


class TestLinearOps:
    def test_add_sub(self, rng, alpha):
        alpha_value, alpha_shares = alpha
        a = additive.share_vector(FieldVector([10, 20]), 3, alpha_value, rng)
        b = additive.share_vector(FieldVector([1, 2]), 3, alpha_value, rng)
        total = additive.add(a, b)
        assert additive.reconstruct(total).elements == [11, 22]
        additive.check_macs(total, additive.reconstruct(total), alpha_shares)
        diff = additive.sub(a, b)
        assert additive.reconstruct(diff).elements == [9, 18]

    def test_scale(self, rng, alpha):
        alpha_value, alpha_shares = alpha
        a = additive.share_vector(FieldVector([10]), 3, alpha_value, rng)
        scaled = additive.scale(a, 5)
        assert additive.reconstruct(scaled).elements == [50]
        additive.check_macs(scaled, additive.reconstruct(scaled), alpha_shares)

    def test_add_public_updates_macs(self, rng, alpha):
        alpha_value, alpha_shares = alpha
        a = additive.share_vector(FieldVector([10]), 3, alpha_value, rng)
        shifted = additive.add_public(a, FieldVector([7]), alpha_shares)
        opened = additive.reconstruct(shifted)
        assert opened.elements == [17]
        additive.check_macs(shifted, opened, alpha_shares)

    def test_public_to_shared(self, alpha):
        alpha_value, alpha_shares = alpha
        shared = additive.public_to_shared(FieldVector([9]), 3, alpha_shares)
        opened = additive.reconstruct(shared)
        assert opened.elements == [9]
        additive.check_macs(shared, opened, alpha_shares)
