"""Property-based SMPC tests: protocol operations compose correctly."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smpc.encoding import FixedPointEncoder
from repro.smpc.field import PRIME, FieldVector, finv
from repro.smpc.protocol import FTProtocol, ShamirProtocol

reals = st.floats(-1000, 1000, allow_nan=False, allow_infinity=False)


def encode(protocol, values):
    return FieldVector(protocol.encoder.encode_vector(np.asarray(values, dtype=float)))


def decode(protocol, vector):
    return protocol.encoder.decode_vector(vector.elements)


@settings(max_examples=25, deadline=None)
@given(
    a=st.lists(reals, min_size=1, max_size=4),
    b=st.lists(reals, min_size=1, max_size=4),
    c=st.lists(reals, min_size=1, max_size=4),
)
def test_linear_combination_property(a, b, c):
    """open(2a + b - c) == 2a + b - c for any inputs (Shamir)."""
    length = min(len(a), len(b), len(c))
    a, b, c = a[:length], b[:length], c[:length]
    protocol = ShamirProtocol(3, seed=2)
    sa = protocol.input_vector(encode(protocol, a))
    sb = protocol.input_vector(encode(protocol, b))
    sc = protocol.input_vector(encode(protocol, c))
    combined = protocol.sub(protocol.add(protocol.scale(sa, 2), sb), sc)
    opened = decode(protocol, protocol.open(combined))
    expected = 2 * np.asarray(a) + np.asarray(b) - np.asarray(c)
    assert np.allclose(opened, expected, atol=1e-3)


@settings(max_examples=15, deadline=None)
@given(
    a=st.lists(st.floats(-50, 50, allow_nan=False), min_size=1, max_size=3),
    b=st.lists(st.floats(-50, 50, allow_nan=False), min_size=1, max_size=3),
)
@pytest.mark.parametrize("protocol_cls", [ShamirProtocol, FTProtocol])
def test_multiplication_property(protocol_cls, a, b):
    """Beaver multiplication is exact for fixed-point inputs."""
    length = min(len(a), len(b))
    a, b = a[:length], b[:length]
    protocol = protocol_cls(3, seed=3)
    sa = protocol.input_vector(encode(protocol, a))
    sb = protocol.input_vector(encode(protocol, b))
    product = protocol.mul_fixed_point(sa, sb)
    opened = decode(protocol, protocol.open(product))
    expected = np.asarray(a) * np.asarray(b)
    # input rounding + one truncation unit
    assert np.allclose(opened, expected, atol=0.01 + np.abs(expected) * 1e-4)


@settings(max_examples=15, deadline=None)
@given(
    vectors=st.lists(
        st.lists(st.floats(-100, 100, allow_nan=False), min_size=2, max_size=2),
        min_size=2,
        max_size=4,
    )
)
def test_min_max_bracket_sum(vectors):
    """min <= any input <= max, element-wise, and min/max are attained."""
    protocol = ShamirProtocol(3, seed=4)
    inputs = [protocol.input_vector(encode(protocol, v)) for v in vectors]
    low = decode(protocol, protocol.open(protocol.minimum_inputs(inputs)))
    high = decode(protocol, protocol.open(protocol.maximum_inputs(inputs)))
    matrix = np.asarray(vectors)
    # fixed-point quantization tolerance
    scale = 1.0 / protocol.encoder.scale
    assert np.all(low <= matrix.min(axis=0) + scale)
    assert np.all(high >= matrix.max(axis=0) - scale)
    assert np.allclose(low, matrix.min(axis=0), atol=scale)
    assert np.allclose(high, matrix.max(axis=0), atol=scale)


@settings(max_examples=20, deadline=None)
@given(
    bits=st.lists(
        st.lists(st.integers(0, 1), min_size=3, max_size=3), min_size=2, max_size=4
    )
)
def test_union_is_elementwise_or(bits):
    protocol = ShamirProtocol(3, seed=5)
    encoder = protocol.encoder
    inputs = [
        protocol.input_vector(FieldVector([encoder.encode_int(b) for b in row]))
        for row in bits
    ]
    opened = protocol.open(protocol.union_inputs(inputs))
    result = [encoder.decode_int(e) for e in opened.elements]
    expected = list(np.asarray(bits).max(axis=0))
    assert result == expected


@settings(max_examples=20, deadline=None)
@given(values=st.lists(reals, min_size=1, max_size=5), scalar=st.integers(-50, 50))
def test_scale_commutes_with_open(values, scalar):
    protocol = ShamirProtocol(3, seed=6)
    shared = protocol.input_vector(encode(protocol, values))
    opened = decode(protocol, protocol.open(protocol.scale(shared, scalar % PRIME)))
    assert np.allclose(opened, np.asarray(values) * scalar, atol=abs(scalar) * 1e-4 + 1e-6)
