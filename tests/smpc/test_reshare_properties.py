"""Property-based round-trip tests for the survivor re-split primitives.

Seeded stdlib ``random`` drives many randomized trials per property:
sharing -> (reshare | resplit) -> reconstruction must round-trip for every
t-of-n survivor subset, and losing more parties than the threshold allows
must fail loudly, never silently return garbage.
"""

import itertools
import random

import pytest

from repro.errors import SMPCError, ThresholdError
from repro.smpc import additive, shamir
from repro.smpc.field import PRIME, FieldVector

N_TRIALS = 25


def random_vector(rng, length):
    return FieldVector([rng.randrange(PRIME) for _ in range(length)])


class TestShamirReshare:
    def test_reconstruct_after_reshare_all_subsets(self):
        """Any >= t+1 survivor subset reshares to a working new sharing."""
        rng = random.Random(1001)
        for _ in range(N_TRIALS):
            n = rng.randrange(3, 8)
            t = rng.randrange(1, (n + 1) // 2)
            secret = random_vector(rng, rng.randrange(1, 5))
            shared = shamir.share_vector(secret, n, t, rng)
            for size in range(max(2, t + 1), n + 1):
                for survivors in itertools.combinations(range(n), size):
                    fresh = shamir.reshare(shared, survivors, rng)
                    assert fresh.n_parties == len(survivors)
                    assert shamir.reconstruct(fresh).elements == secret.elements

    def test_reshared_sharing_keeps_its_own_threshold_guarantee(self):
        """The new sharing reconstructs from any t'+1 of the new parties."""
        rng = random.Random(1002)
        for _ in range(N_TRIALS):
            secret = random_vector(rng, 3)
            shared = shamir.share_vector(secret, 7, 2, rng)
            fresh = shamir.reshare(shared, [0, 2, 3, 5, 6], rng)  # 5 survivors, t'=2
            for subset in itertools.combinations(range(fresh.n_parties), fresh.threshold + 1):
                pairs = [(party, fresh.shares[party]) for party in subset]
                rebuilt = shamir.reconstruct_from_subset(pairs, fresh.threshold)
                assert rebuilt.elements == secret.elements

    def test_reshare_of_reshare_round_trips(self):
        """Cascading node loss: survivors of survivors still hold the secret."""
        rng = random.Random(1003)
        for _ in range(N_TRIALS):
            secret = random_vector(rng, 2)
            shared = shamir.share_vector(secret, 7, 3, rng)
            once = shamir.reshare(shared, [0, 1, 3, 4, 5, 6], rng)  # lose one
            twice = shamir.reshare(once, list(range(once.threshold + 1)), rng)
            assert shamir.reconstruct(twice).elements == secret.elements

    def test_too_few_survivors_raises_threshold_error(self):
        rng = random.Random(1004)
        secret = random_vector(rng, 2)
        shared = shamir.share_vector(secret, 5, 2, rng)
        with pytest.raises(ThresholdError):
            shamir.reshare(shared, [0, 1], rng)

    def test_invalid_survivor_sets_rejected(self):
        rng = random.Random(1005)
        shared = shamir.share_vector(random_vector(rng, 1), 5, 2, rng)
        with pytest.raises(SMPCError, match="duplicate"):
            shamir.reshare(shared, [0, 1, 1, 2], rng)
        with pytest.raises(SMPCError, match="out of range"):
            shamir.reshare(shared, [0, 1, 9], rng)

    def test_reshare_randomizes_shares(self):
        """The fresh sharing must not leak the old shares (new polynomials)."""
        rng = random.Random(1006)
        shared = shamir.share_vector(random_vector(rng, 4), 5, 2, rng)
        fresh = shamir.reshare(shared, [0, 1, 2, 3, 4], rng)
        assert all(
            fresh.shares[p].elements != shared.shares[p].elements for p in range(5)
        )

    def test_linearity_survives_reshare(self):
        """sum-then-reshare == reshare-then-sum (the aggregation use case)."""
        rng = random.Random(1007)
        for _ in range(N_TRIALS):
            a = random_vector(rng, 3)
            b = random_vector(rng, 3)
            shared_a = shamir.share_vector(a, 5, 2, rng)
            shared_b = shamir.share_vector(b, 5, 2, rng)
            survivors = [0, 2, 4]
            total = shamir.add(
                shamir.reshare(shared_a, survivors, rng, new_threshold=1),
                shamir.reshare(shared_b, survivors, rng, new_threshold=1),
            )
            expected = [(x + y) % PRIME for x, y in zip(a.elements, b.elements)]
            assert shamir.reconstruct(total).elements == expected


class TestAdditiveResplit:
    def test_reconstruct_after_resplit(self):
        rng = random.Random(2001)
        for _ in range(N_TRIALS):
            n = rng.randrange(2, 7)
            n_new = rng.randrange(2, 7)
            alpha, _ = additive.share_alpha(n, rng)
            secret = random_vector(rng, rng.randrange(1, 5))
            shared = additive.share_vector(secret, n, alpha, rng)
            fresh = additive.resplit(shared, n_new, rng)
            assert fresh.n_parties == n_new
            assert additive.reconstruct(fresh).elements == secret.elements

    def test_macs_verify_after_resplit(self):
        """The MAC totals are preserved, so any fresh additive sharing of the
        same alpha accepts the re-split value."""
        rng = random.Random(2002)
        for _ in range(N_TRIALS):
            alpha, _ = additive.share_alpha(4, rng)
            secret = random_vector(rng, 3)
            shared = additive.share_vector(secret, 4, alpha, rng)
            fresh = additive.resplit(shared, 3, rng)
            opened = additive.reconstruct(fresh)
            new_alpha_shares = [rng.randrange(PRIME) for _ in range(2)]
            new_alpha_shares.append((alpha - sum(new_alpha_shares)) % PRIME)
            additive.check_macs(fresh, opened, new_alpha_shares)  # must not raise

    def test_tampered_resplit_fails_mac_check(self):
        rng = random.Random(2003)
        alpha, alpha_shares = additive.share_alpha(3, rng)
        shared = additive.share_vector(random_vector(rng, 2), 3, alpha, rng)
        fresh = additive.resplit(shared, 3, rng)
        fresh.shares[1].elements[0] = (fresh.shares[1].elements[0] + 1) % PRIME
        opened = additive.reconstruct(fresh)
        with pytest.raises(Exception, match="MAC"):
            additive.check_macs(fresh, opened, alpha_shares)

    def test_resplit_to_single_party_rejected(self):
        rng = random.Random(2004)
        alpha, _ = additive.share_alpha(3, rng)
        shared = additive.share_vector(random_vector(rng, 1), 3, alpha, rng)
        with pytest.raises(SMPCError):
            additive.resplit(shared, 1, rng)

    def test_sum_then_resplit_preserves_aggregate(self):
        """The cluster's survivor path: aggregate of re-split inputs equals
        the plain sum of the surviving contributions."""
        rng = random.Random(2005)
        for _ in range(N_TRIALS):
            alpha, _ = additive.share_alpha(5, rng)
            a = random_vector(rng, 3)
            b = random_vector(rng, 3)
            total = additive.add(
                additive.share_vector(a, 5, alpha, rng),
                additive.share_vector(b, 5, alpha, rng),
            )
            fresh = additive.resplit(total, 2, rng)
            expected = [(x + y) % PRIME for x, y in zip(a.elements, b.elements)]
            assert additive.reconstruct(fresh).elements == expected
