"""Cross-module integration: the full platform under realistic conditions."""

import numpy as np
import pytest

from repro import (
    CohortSpec,
    FederationConfig,
    MIPService,
    create_federation,
    generate_cohort,
)
from repro.data.cdes import dementia_data_model
from repro.etl.harmonize import harmonize_table
from repro.etl.loader import load_csv_text
from repro.federation.worker import Worker


class TestFullStackSMPC:
    """Experiments over the secure path with the full-threshold scheme."""

    @pytest.fixture(scope="class")
    def service(self):
        federation = create_federation(
            {
                "h1": {"dementia": generate_cohort(CohortSpec("edsd", 90, seed=1))},
                "h2": {"dementia": generate_cohort(CohortSpec("adni", 80, seed=2))},
            },
            FederationConfig(smpc_nodes=3, smpc_scheme="full_threshold", seed=9),
        )
        return MIPService(federation, aggregation="smpc")

    def test_linear_regression_under_ft_smpc(self, service):
        result = service.run_experiment(
            "linear_regression", "dementia", ["edsd", "adni"],
            y=["lefthippocampus"], x=["agevalue"],
        )
        assert result.status.value == "success"
        assert result.result["n_observations"] == 170
        # the fixed-point pipeline keeps ~4 decimals of precision
        assert abs(result.result["coefficients"][1]) < 1.0

    def test_smpc_cluster_was_used(self, service):
        cluster = service.federation.smpc_cluster
        assert cluster.communication.rounds > 0
        # Secure min/max (descriptive stats) consumes offline material
        # (shared random bits for the comparison protocol).
        result = service.run_experiment(
            "descriptive_stats", "dementia", ["edsd", "adni"], y=["p_tau"],
        )
        assert result.status.value == "success"
        assert cluster.offline_usage.random_bits > 0
        assert cluster.offline_usage.elements_dealt > 0


class TestWorkerFailure:
    def test_missing_worker_fails_cleanly_and_recovers(self):
        federation = create_federation(
            {
                "h1": {"dementia": generate_cohort(CohortSpec("edsd", 80, seed=1))},
                "h2": {"dementia": generate_cohort(CohortSpec("adni", 80, seed=2))},
            },
            FederationConfig(seed=4),
        )
        service = MIPService(federation, aggregation="plain")
        federation.set_worker_down("h2")
        result = service.run_experiment(
            "ttest_onesample", "dementia", ["edsd", "adni"], y=["p_tau"],
        )
        assert result.status.value == "error"
        assert "not available" in result.error
        # the surviving dataset still works
        result = service.run_experiment(
            "ttest_onesample", "dementia", ["edsd"], y=["p_tau"],
        )
        assert result.status.value == "success"
        # recovery
        federation.set_worker_down("h2", False)
        result = service.run_experiment(
            "ttest_onesample", "dementia", ["edsd", "adni"], y=["p_tau"],
        )
        assert result.status.value == "success"

    def test_mid_experiment_failure_reported(self):
        federation = create_federation(
            {
                "h1": {"dementia": generate_cohort(CohortSpec("edsd", 80, seed=1))},
                "h2": {"dementia": generate_cohort(CohortSpec("adni", 80, seed=2))},
            },
            FederationConfig(seed=4),
        )
        service = MIPService(federation, aggregation="plain")
        # mark h2 down *after* the catalog refresh by monkeypatching transport
        federation.master.refresh_catalog()
        federation.transport.set_down("h2")
        result = service.run_experiment(
            "linear_regression", "dementia", ["edsd", "adni"],
            y=["lefthippocampus"], x=["agevalue"],
        )
        assert result.status.value == "error"


class TestETLToAnalysis:
    def test_csv_to_experiment(self):
        model = dementia_data_model()
        rows = ["dataset,p_tau,lefthippocampus"]
        rng = np.random.default_rng(0)
        for _ in range(60):
            rows.append(f"csvsite,{rng.normal(60, 10):.2f},{rng.normal(3, 0.4):.3f}")
        rows.append("csvsite,9999,3.0")  # out-of-range pTau
        table = load_csv_text("\n".join(rows) + "\n", model)
        clean, report = harmonize_table(table, model)
        assert report.out_of_range_nulled == {"p_tau": 1}

        federation = create_federation({"csv_hospital": {"dementia": clean}},
                                       FederationConfig(seed=1))
        service = MIPService(federation, aggregation="plain")
        result = service.run_experiment(
            "pearson_correlation", "dementia", ["csvsite"],
            y=["p_tau", "lefthippocampus"],
        )
        assert result.status.value == "success"
        assert result.result["n_observations"] == 60  # nulled row dropped


class TestEveryAlgorithmOnSecurePath:
    """Every registered algorithm completes end-to-end over SMPC."""

    REQUESTS = {
        "descriptive_stats": dict(y=["p_tau"]),
        "histogram": dict(y=["lefthippocampus"], parameters={"n_bins": 10}),
        "linear_regression": dict(y=["lefthippocampus"], x=["agevalue"]),
        "linear_regression_cv": dict(y=["lefthippocampus"], x=["agevalue"],
                                     parameters={"n_splits": 3}),
        "logistic_regression": dict(y=["converted_ad"], x=["p_tau"]),
        "logistic_regression_cv": dict(y=["converted_ad"], x=["p_tau"],
                                       parameters={"n_splits": 3, "max_iterations": 5}),
        "kmeans": dict(y=["ab_42", "p_tau"],
                       parameters={"k": 2, "seed": 1, "iterations_max_number": 5}),
        "anova_oneway": dict(y=["lefthippocampus"], x=["alzheimerbroadcategory"]),
        "anova_twoway": dict(y=["lefthippocampus"],
                             x=["alzheimerbroadcategory", "gender"]),
        "ttest_independent": dict(y=["lefthippocampus"], x=["gender"]),
        "ttest_onesample": dict(y=["p_tau"], parameters={"mu": 50.0}),
        "ttest_paired": dict(y=["lefthippocampus", "righthippocampus"]),
        "pearson_correlation": dict(y=["lefthippocampus", "minimentalstate"]),
        "pca": dict(y=["lefthippocampus", "righthippocampus"]),
        "naive_bayes": dict(y=["alzheimerbroadcategory"], x=["lefthippocampus"]),
        "naive_bayes_cv": dict(y=["alzheimerbroadcategory"], x=["lefthippocampus"],
                               parameters={"n_splits": 3}),
        "cart": dict(y=["alzheimerbroadcategory"], x=["lefthippocampus"],
                     parameters={"max_depth": 2, "n_thresholds": 4}),
        "id3": dict(y=["alzheimerbroadcategory"], x=["gender", "va_etiology"],
                    parameters={"max_depth": 2, "min_gain": 0.0}),
        "kaplan_meier": dict(y=["survival_months", "event_observed"],
                             parameters={"n_bins": 20}),
        "calibration_belt": dict(y=["converted_ad"], x=["predicted_risk"],
                                 parameters={"max_degree": 2}),
    }

    def test_request_table_covers_registry(self):
        from repro.core.registry import algorithm_registry

        registered = set(algorithm_registry.names()) - {"trimmed_mean"}
        assert registered <= set(self.REQUESTS), (
            f"algorithms missing from the SMPC smoke table: "
            f"{registered - set(self.REQUESTS)}"
        )

    def test_all_algorithms_complete_over_smpc(self):
        federation = create_federation(
            {
                "h1": {"dementia": generate_cohort(CohortSpec("edsd", 70, seed=1))},
                "h2": {"dementia": generate_cohort(CohortSpec("adni", 70, seed=2))},
            },
            FederationConfig(smpc_nodes=3, smpc_scheme="shamir", seed=6),
        )
        service = MIPService(federation, aggregation="smpc")
        failures = {}
        for algorithm, spec in self.REQUESTS.items():
            result = service.run_experiment(
                algorithm, "dementia", ["edsd", "adni"],
                y=spec.get("y", []), x=spec.get("x", []),
                parameters=spec.get("parameters", {}),
            )
            if result.status.value != "success":
                failures[algorithm] = result.error
        assert not failures, failures


class TestDeploymentScale:
    def test_forty_hospital_federation(self):
        """The paper's deployment scale: 40+ hospitals.  One federation with
        40 workers runs catalogue discovery and a cross-site regression."""
        worker_data = {
            f"hospital_{i:02d}": {
                "dementia": generate_cohort(CohortSpec(f"site{i:02d}", 40, seed=i))
            }
            for i in range(40)
        }
        federation = create_federation(worker_data, FederationConfig(seed=3))
        service = MIPService(federation, aggregation="plain")
        datasets = sorted(service.datasets("dementia"))
        assert len(datasets) == 40
        result = service.run_experiment(
            "linear_regression", "dementia", datasets,
            y=["lefthippocampus"], x=["agevalue"],
        )
        assert result.status.value == "success"
        assert result.result["n_observations"] == 40 * 40
        assert len(result.workers) == 40
        status = service.status()
        assert sum(1 for s in status["workers"].values() if s == "up") == 40


class TestPrivacyEndToEnd:
    def test_raw_rows_never_in_transit(self):
        """Inspect every transport payload: no message may carry more values
        than an aggregate (i.e. anything the size of the raw partition)."""
        federation = create_federation(
            {
                "h1": {"dementia": generate_cohort(CohortSpec("edsd", 120, seed=1))},
                "h2": {"dementia": generate_cohort(CohortSpec("adni", 120, seed=2))},
            },
            FederationConfig(seed=4),
        )
        captured = []
        original_send = federation.transport.send

        def spy(sender, receiver, kind, payload=None):
            response = original_send(sender, receiver, kind, payload)
            captured.append((kind, payload, response))
            return response

        federation.transport.send = spy
        service = MIPService(federation, aggregation="plain")
        result = service.run_experiment(
            "linear_regression", "dementia", ["edsd", "adni"],
            y=["lefthippocampus"], x=["agevalue"],
        )
        assert result.status.value == "success"
        raw_values = set(
            federation.workers["h1"].database.get_table("data_dementia")
            .column("lefthippocampus").non_null().tolist()
        )
        for kind, payload, response in captured:
            blob = repr(payload) + repr(response)
            # no more than a couple of raw values may coincide by chance
            leaked = sum(1 for v in list(raw_values)[:50] if repr(round(v, 6))[:8] in blob)
            assert leaked <= 2, f"possible raw-data leak in {kind} message"

    def test_small_cohort_blocked(self):
        federation = create_federation(
            {"h1": {"dementia": generate_cohort(CohortSpec("edsd", 5, seed=1))}},
            FederationConfig(seed=1, privacy_threshold=10),
        )
        service = MIPService(federation, aggregation="plain")
        result = service.run_experiment(
            "ttest_onesample", "dementia", ["edsd"], y=["p_tau"],
        )
        assert result.status.value == "error"
        assert "privacy threshold" in result.error
