"""Concurrency stress: mixed algorithms through the queue at pool 4.

The acceptance bar for per-job resource attribution: eight experiments of
four different algorithms running four-at-a-time must each report *exactly*
the telemetry they report when run alone on an identically-seeded
federation — zero cross-job leakage in messages, bytes, simulated network
time, SMPC rounds or SMPC elements.

The throughput measurement (pool 1 vs pool 4 over a transport that really
sleeps its modeled latency) is published as
``benchmarks/results/BENCH_queue_throughput.json`` for CI to archive.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import repro.algorithms  # noqa: F401
from repro.core.experiment import ExperimentEngine, ExperimentRequest, ExperimentStatus
from repro.data.cohorts import CohortSpec, generate_cohort
from repro.federation.controller import FederationConfig, create_federation

RESULTS_DIR = Path(__file__).resolve().parents[2] / "benchmarks" / "results"

STRESS_SEED = 4040
POOL_SIZE = 4


def build_federation(seed: int = STRESS_SEED, **config_overrides):
    worker_data = {
        "hospital_a": {"dementia": generate_cohort(CohortSpec("edsd", 120, seed=11))},
        "hospital_b": {"dementia": generate_cohort(CohortSpec("adni", 120, seed=22))},
        "hospital_c": {"dementia": generate_cohort(CohortSpec("ppmi", 120, seed=33))},
    }
    return create_federation(
        worker_data,
        FederationConfig(smpc_nodes=3, smpc_scheme="shamir", seed=seed,
                         **config_overrides),
    )


DATASETS = ("edsd", "adni", "ppmi")


def mixed_requests() -> list[tuple[str, ExperimentRequest]]:
    """Eight experiments over four algorithm flows, ids pinned for byte
    stability (equal length, fixed content)."""
    archetypes = [
        ExperimentRequest(
            algorithm="linear_regression", data_model="dementia",
            datasets=DATASETS, y=("lefthippocampus",), x=("agevalue",),
        ),
        ExperimentRequest(
            algorithm="pearson_correlation", data_model="dementia",
            datasets=DATASETS, y=("lefthippocampus", "righthippocampus"),
        ),
        ExperimentRequest(
            algorithm="descriptive_stats", data_model="dementia",
            datasets=DATASETS, y=("lefthippocampus",),
        ),
        ExperimentRequest(
            algorithm="ttest_onesample", data_model="dementia",
            datasets=DATASETS, y=("p_tau",), parameters={"mu": 50.0},
        ),
    ]
    return [
        (f"exp_stress_{index}", archetypes[index % len(archetypes)])
        for index in range(8)
    ]


class TestStressAttribution:
    def test_eight_mixed_experiments_at_pool_four_no_leakage(self):
        # Solo baselines: each request alone on its own identically-seeded
        # federation, with the exact same pinned experiment id.
        solo_telemetry = {}
        solo_results = {}
        for experiment_id, request in mixed_requests():
            engine = ExperimentEngine(build_federation())
            try:
                engine.submit(request, experiment_id=experiment_id)
                result = engine.wait(experiment_id, timeout=300)
                assert result.status is ExperimentStatus.SUCCESS, result.error
                solo_telemetry[experiment_id] = result.telemetry
                solo_results[experiment_id] = json.dumps(
                    result.result, sort_keys=True, default=str
                )
            finally:
                engine.shutdown(wait=False)

        # The stress run: all eight queued at once, four executors.
        engine = ExperimentEngine(build_federation(), max_concurrent=POOL_SIZE)
        try:
            for experiment_id, request in mixed_requests():
                engine.submit(request, experiment_id=experiment_id)
            leaks = []
            for experiment_id, _request in mixed_requests():
                result = engine.wait(experiment_id, timeout=300)
                assert result.status is ExperimentStatus.SUCCESS, result.error
                if result.telemetry != solo_telemetry[experiment_id]:
                    leaks.append(
                        (experiment_id, solo_telemetry[experiment_id], result.telemetry)
                    )
                # Determinism: same seeds, same ids — same numbers.
                assert (
                    json.dumps(result.result, sort_keys=True, default=str)
                    == solo_results[experiment_id]
                )
            assert not leaks, f"cross-job telemetry leakage detected: {leaks}"
            stats = engine.queue.stats()
            assert stats["succeeded_total"] == 8
            assert stats["failed_total"] == 0
        finally:
            engine.shutdown(wait=False)


class TestQueueThroughput:
    def test_pool_four_beats_pool_one(self):
        """Acceptance: >= 1.5x experiments/sec at pool 4 vs pool 1 on the E5
        linear-regression flow over a sleep-latency transport."""
        latency_s = 0.02
        n_experiments = 8

        def run_batch(pool_size: int) -> float:
            federation = build_federation(
                sleep_latency=True, latency_seconds=latency_s
            )
            engine = ExperimentEngine(
                federation, aggregation="plain", max_concurrent=pool_size
            )
            request = ExperimentRequest(
                algorithm="linear_regression", data_model="dementia",
                datasets=DATASETS, y=("lefthippocampus",), x=("agevalue",),
            )
            try:
                t0 = time.perf_counter()
                ids = [engine.submit(request) for _ in range(n_experiments)]
                for job_id in ids:
                    result = engine.wait(job_id, timeout=600)
                    assert result.status is ExperimentStatus.SUCCESS, result.error
                return time.perf_counter() - t0
            finally:
                engine.shutdown(wait=False)

        sequential_s = run_batch(1)
        parallel_s = run_batch(POOL_SIZE)
        throughput_1 = n_experiments / sequential_s
        throughput_4 = n_experiments / parallel_s
        speedup = throughput_4 / throughput_1

        RESULTS_DIR.mkdir(exist_ok=True)
        payload = {
            "benchmark": "queue_throughput",
            "flow": "e5_linear_regression",
            "experiments": n_experiments,
            "latency_seconds": latency_s,
            "pool_1": {
                "wall_seconds": round(sequential_s, 4),
                "experiments_per_second": round(throughput_1, 3),
            },
            "pool_4": {
                "wall_seconds": round(parallel_s, 4),
                "experiments_per_second": round(throughput_4, 3),
            },
            "speedup": round(speedup, 3),
        }
        (RESULTS_DIR / "BENCH_queue_throughput.json").write_text(
            json.dumps(payload, indent=2) + "\n"
        )
        assert speedup >= 1.5, (
            f"pool-4 throughput speedup {speedup:.2f}x is below the 1.5x bar"
        )
