"""Queue-vs-seed regression: the refactor must not change a single byte.

The seed engine ran experiments synchronously in the caller's thread and
measured telemetry as a before/after diff of the *global* transport and
SMPC counters.  This test reconstructs that exact reference path inline and
asserts that the same request with the same seed and the same pinned
experiment id, executed through the new queue at pool size 1, produces

- a byte-identical result payload,
- an identical audit trail (modulo wall-clock timestamps and sequence
  numbers, which encode nothing about the computation),
- identical telemetry.
"""

from __future__ import annotations

import json

import repro.algorithms  # noqa: F401
from repro.core.experiment import (
    ExperimentEngine,
    ExperimentRequest,
    ExperimentStatus,
    ExperimentTelemetry,
)
from repro.core.runner import ExperimentRunner
from repro.observability.audit import merged_events
from repro.observability.trace import tracer

from tests.concurrency.test_stress import DATASETS, build_federation

EXPERIMENT_ID = "exp_regression_e5"


def e5_request() -> ExperimentRequest:
    return ExperimentRequest(
        algorithm="linear_regression", data_model="dementia",
        datasets=DATASETS, y=("lefthippocampus",), x=("agevalue",),
    )


def run_seed_style(federation, request, experiment_id):
    """The pre-queue engine's run loop, reproduced verbatim: synchronous
    execution with global before/after counter telemetry."""

    def usage_snapshot():
        stats = federation.transport.stats
        cluster = federation.smpc_cluster
        rounds = cluster.communication.rounds if cluster else 0
        elements = cluster.communication.elements if cluster else 0
        return (stats.messages, stats.bytes_sent, stats.simulated_seconds,
                rounds, elements)

    runner = ExperimentRunner(federation)
    master_audit = federation.master.audit
    before = usage_snapshot()
    master_audit.record(
        "experiment_started",
        job_id=experiment_id,
        algorithm=request.algorithm,
        data_model=request.data_model,
        datasets=sorted(request.datasets),
    )
    with tracer.span("experiment", experiment=experiment_id,
                     algorithm=request.algorithm):
        result_data, workers = runner.execute(request, experiment_id)
    master_audit.record(
        "experiment_finished", job_id=experiment_id, status="success",
        elapsed_seconds=0.0,
    )
    after = usage_snapshot()
    telemetry = ExperimentTelemetry(
        messages=after[0] - before[0],
        bytes_sent=after[1] - before[1],
        simulated_network_seconds=after[2] - before[2],
        smpc_rounds=after[3] - before[3],
        smpc_elements=after[4] - before[4],
    )
    audit = tuple(merged_events(federation.audit_logs(), job_id=experiment_id))
    return result_data, workers, telemetry, audit


def normalize_audit(events):
    """Strip wall-clock and sequence fields; keep semantic content."""
    normalized = []
    for entry in events:
        details = {
            k: v for k, v in entry["details"].items() if k != "elapsed_seconds"
        }
        normalized.append((entry["node"], entry["event"], entry["job_id"], details))
    return normalized


class TestSeedEquivalence:
    def test_queue_matches_seed_engine_byte_for_byte(self):
        request = e5_request()

        reference_data, reference_workers, reference_telemetry, reference_audit = (
            run_seed_style(build_federation(), request, EXPERIMENT_ID)
        )

        engine = ExperimentEngine(build_federation(), max_concurrent=1)
        try:
            engine.submit(request, experiment_id=EXPERIMENT_ID)
            result = engine.wait(EXPERIMENT_ID, timeout=300)
        finally:
            engine.shutdown(wait=False)

        assert result.status is ExperimentStatus.SUCCESS, result.error
        assert result.workers == reference_workers
        # Byte-identical result payload.
        assert (
            json.dumps(result.result, sort_keys=True, default=str)
            == json.dumps(reference_data, sort_keys=True, default=str)
        )
        # Identical audit trail, modulo timestamps/sequence numbers.
        assert normalize_audit(result.audit) == normalize_audit(reference_audit)
        # Identical telemetry: the per-job meters must equal the global diff.
        assert result.telemetry == reference_telemetry
