"""Pre-dispatch cancellation must never leak WorkerLoad slots.

The queue's pre-dispatch cancel path finalizes the job in place and leaves
its heap entry behind as a tombstone the executor skips
(:meth:`ExperimentQueue._claim_locked`).  The shipping planner's
:class:`~repro.federation.scheduler.WorkerLoad` is only acquired inside
``ExperimentRunner.execute`` — which a tombstoned job never reaches — so a
cancelled-before-dispatch experiment must leave the load tracker exactly
as it found it.  This is the audit-regression suite for that invariant.
"""

import threading

from repro.core.experiment import ExperimentEngine, ExperimentRequest

REQUEST = ExperimentRequest(
    algorithm="descriptive_stats",
    data_model="dementia",
    datasets=("edsd", "adni", "ppmi"),
    y=("p_tau",),
)


def test_tombstoned_job_never_dispatches_or_acquires_load(fresh_federation):
    engine = ExperimentEngine(fresh_federation, aggregation="plain",
                              max_concurrent=1)
    runner = engine.runner
    original_execute = runner.execute
    gate = threading.Event()
    first_started = threading.Event()
    dispatched = []

    def gated_execute(request, experiment_id, cancel_event=None, info=None):
        dispatched.append(experiment_id)
        first_started.set()
        assert gate.wait(30), "test gate never opened"
        return original_execute(
            request, experiment_id, cancel_event=cancel_event, info=info
        )

    runner.execute = gated_execute
    try:
        first = engine.submit(REQUEST)
        assert first_started.wait(30)
        # The pool (size 1) is busy: this job is QUEUED, on the heap.
        second = engine.submit(REQUEST)
        assert engine.cancel(second) is True
        gate.set()
        first_result = engine.wait(first, timeout=60)
        second_result = engine.wait(second, timeout=60)
    finally:
        gate.set()
        runner.execute = original_execute
        engine.shutdown()

    assert first_result.status.value == "success", first_result.error
    assert second_result.status.value == "cancelled"
    assert "before dispatch" in second_result.error
    # The tombstone was skipped: only the first job ever reached the runner.
    assert dispatched == [first]
    # And no slot leaked: in-flight load is back to zero everywhere.
    assert runner.load.snapshot() == {}


def test_load_drains_after_mixed_batch(fresh_federation):
    """Successes, pre-dispatch cancels and errors all release their slots."""
    engine = ExperimentEngine(fresh_federation, aggregation="plain",
                              max_concurrent=2)
    bad = ExperimentRequest(
        algorithm="descriptive_stats",
        data_model="dementia",
        datasets=("edsd",),
        y=("no_such_variable",),
    )
    try:
        ids = [engine.submit(REQUEST) for _ in range(4)]
        ids.append(engine.submit(bad))
        cancelled = engine.submit(REQUEST)
        engine.cancel(cancelled)
        results = [engine.wait(job_id, timeout=60) for job_id in ids]
        engine.wait(cancelled, timeout=60)
    finally:
        engine.shutdown()
    statuses = {result.status.value for result in results}
    assert "success" in statuses
    assert engine.runner.load.snapshot() == {}


def test_queue_history_shows_tombstone_lifecycle(fresh_federation):
    engine = ExperimentEngine(fresh_federation, aggregation="plain",
                              max_concurrent=1)
    runner = engine.runner
    original_execute = runner.execute
    gate = threading.Event()
    first_started = threading.Event()

    def gated_execute(request, experiment_id, cancel_event=None, info=None):
        first_started.set()
        assert gate.wait(30)
        return original_execute(
            request, experiment_id, cancel_event=cancel_event, info=info
        )

    runner.execute = gated_execute
    try:
        first = engine.submit(REQUEST)
        assert first_started.wait(30)
        second = engine.submit(REQUEST)
        engine.cancel(second)
        gate.set()
        engine.wait(first, timeout=60)
        engine.wait(second, timeout=60)
        histories = engine.queue.job_histories()
        snapshots = {s.job_id: s for s in engine.jobs()}
    finally:
        gate.set()
        runner.execute = original_execute
        engine.shutdown()

    # Straight from QUEUED to CANCELLED: never RUNNING.
    assert histories[second] == ("pending", "queued", "cancelled")
    assert snapshots[second].elapsed_seconds is None
    assert snapshots[second].queued_seconds >= 0.0
    assert snapshots[second].dedup_hits == 0
