"""Cancel-timing matrix: every moment a cancel can land, pinned exactly.

The queue's cancellation contract has three regimes — guaranteed before
dispatch, cooperative between flow steps, and a no-op after a terminal
state.  Real threads can only probabilistically hit the middle regime, so
the between-steps rows run under the deterministic simulation harness
(``cancel@N`` fault at an exact step boundary) while the edge regimes are
also exercised on the real executor pool with explicit gates.

Every row asserts the *exact* final state, the legal state history, and
that no per-job transport or SMPC meters survive the job (no orphans).
"""

from __future__ import annotations

import threading

import pytest

import repro.algorithms  # noqa: F401
from repro.core.experiment import ExperimentEngine, ExperimentStatus
from repro.simtest.harness import SimSpec, run_simulation

from tests.concurrency.test_stress import build_federation
from tests.concurrency.test_regression import e5_request


def orphaned_meters(federation) -> list[str]:
    transport = federation.transport
    with transport._stats_lock:
        orphans = sorted(transport._job_stats)
    cluster = federation.smpc_cluster
    if cluster is not None:
        with cluster._lock:
            orphans.extend(sorted(cluster._job_meters))
    return orphans


class TestRealThreadEdges:
    """The deterministic edges of the matrix on the real executor pool."""

    def test_cancel_before_dispatch(self):
        """Pool saturated by a gated job: the queued job's cancel is
        guaranteed, immediate, and leaves zero meters behind."""
        federation = build_federation()
        engine = ExperimentEngine(federation, max_concurrent=1)
        runner = engine.queue.runner
        gate = threading.Event()
        running = threading.Event()
        real_execute = runner.execute

        def gated_execute(request, experiment_id, **kwargs):
            running.set()
            assert gate.wait(timeout=60)
            return real_execute(request, experiment_id, **kwargs)

        runner.execute = gated_execute
        try:
            engine.submit(e5_request(), experiment_id="cm_blocker")
            assert running.wait(timeout=60)
            engine.submit(e5_request(), experiment_id="cm_queued")
            assert engine.cancel("cm_queued") is True
            result = engine.wait("cm_queued", timeout=60)
        finally:
            gate.set()
            engine.wait("cm_blocker", timeout=300)
            engine.shutdown(wait=True)
        assert result.status is ExperimentStatus.CANCELLED
        assert "before dispatch" in result.error
        assert result.workers == ()
        assert result.telemetry.messages == 0
        assert engine.queue.job_histories()["cm_queued"] == (
            "pending", "queued", "cancelled",
        )
        events = [e.event for e in federation.master.audit.events(job_id="cm_queued")]
        assert "experiment_cancelled" in events
        assert orphaned_meters(federation) == []

    def test_cancel_after_terminal_is_refused(self):
        """A finished job cannot be cancelled: cancel() returns False and
        neither the state nor the history moves."""
        federation = build_federation()
        engine = ExperimentEngine(federation, max_concurrent=1)
        try:
            engine.submit(e5_request(), experiment_id="cm_done")
            result = engine.wait("cm_done", timeout=300)
            assert result.status is ExperimentStatus.SUCCESS, result.error
            assert engine.cancel("cm_done") is False
            history = engine.queue.job_histories()["cm_done"]
            assert history == ("pending", "queued", "running", "success")
            # The stored result is untouched by the refused cancel.
            assert engine.get("cm_done").status is ExperimentStatus.SUCCESS
        finally:
            engine.shutdown(wait=True)
        assert orphaned_meters(federation) == []


class TestBetweenStepsMatrix:
    """Cooperative cancellation at exact step boundaries, via simulation."""

    @pytest.mark.parametrize("step", [1, 2, 3, 4])
    def test_cancel_at_each_step_boundary(self, step):
        report = run_simulation(
            SimSpec.parse(f"seed=20;par=1;jobs=1;faults=cancel@{step}:job1")
        )
        assert report.ok, report.failures()
        (result,) = report.results
        # The flow may finish before late boundaries; when the cancel landed
        # in time the outcome must be exactly CANCELLED with a legal history.
        assert result.status.value in ("cancelled", "success")
        if result.status.value == "cancelled":
            assert "cancelled mid-flow" in result.error
            assert f"fault cancel@{step}:job1 fired" in report.transcript
        # report.ok above includes the meter-hygiene invariant: no orphans.

    def test_mid_flow_cancel_exact_state(self):
        """One pinned row: cancel at step 2 always lands mid-flow."""
        report = run_simulation(
            SimSpec.parse("seed=20;par=1;jobs=1;faults=cancel@2:job1")
        )
        assert report.ok, report.failures()
        (result,) = report.results
        assert result.status.value == "cancelled"
        assert "cancelled mid-flow" in result.error
        # Dispatch happened, so the job ran before it was cancelled.
        assert result.workers != ()

    def test_cancel_under_concurrency(self):
        """Cancelling one of several in-flight jobs leaves the others'
        results, telemetry and meters untouched."""
        report = run_simulation(
            SimSpec.parse("seed=21;par=2;jobs=3;faults=cancel@2:job2")
        )
        assert report.ok, report.failures()
        by_id = {r.experiment_id: r for r in report.results}
        assert by_id["sim_job_2"].status.value == "cancelled"
        assert by_id["sim_job_1"].status.value == "success"
        assert by_id["sim_job_3"].status.value == "success"
