"""Shared fixtures: small federations and cohorts sized for fast tests."""

from __future__ import annotations

import os
import threading

import pytest

from repro.data.cohorts import CohortSpec, generate_cohort
from repro.federation.controller import FederationConfig, create_federation

import repro.algorithms  # noqa: F401  (register algorithms once)

# ----------------------------------------------------------- hypothesis setup
# Profiles are selected with HYPOTHESIS_PROFILE (the CI lane pins "ci").
# ``ci`` derandomizes so a red CI run is reproducible from the printed blob;
# ``dev`` keeps Hypothesis' default randomized exploration for local runs.
try:
    from hypothesis import settings

    settings.register_profile("ci", derandomize=True, print_blob=True)
    settings.register_profile("dev")
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
except ImportError:  # pragma: no cover - hypothesis is an optional test dep
    pass


@pytest.fixture(scope="session", autouse=True)
def thread_leak_detector():
    """Fail the session when tests leave non-daemon threads *held* alive.

    Queue workers and simulation tasks are daemon threads by design; the
    transport's fan-out pools are non-daemon ``ThreadPoolExecutor`` workers
    that exit once their executor is collected.  So after a GC pass and a
    drain window, any non-daemon survivor is a thread some live object still
    pins — a leak that would stall interpreter shutdown.
    """
    import gc
    import time

    before = {t.ident for t in threading.enumerate()}

    def survivors():
        return [
            thread
            for thread in threading.enumerate()
            if thread.ident not in before
            and thread.is_alive()
            and not thread.daemon
            and thread is not threading.current_thread()
        ]

    yield
    deadline = time.monotonic() + 15.0
    leaked = survivors()
    while leaked and time.monotonic() < deadline:
        gc.collect()  # wakes idle pool workers via the executor's weakref
        time.sleep(0.1)
        leaked = survivors()
    assert not leaked, (
        "tests leaked non-daemon threads: "
        + ", ".join(sorted(thread.name for thread in leaked))
    )


def small_worker_data(rows: int = 150):
    """Three hospitals, one dataset each."""
    return {
        "hospital_a": {"dementia": generate_cohort(CohortSpec("edsd", rows, seed=11))},
        "hospital_b": {"dementia": generate_cohort(CohortSpec("adni", rows, seed=22))},
        "hospital_c": {"dementia": generate_cohort(CohortSpec("ppmi", rows, seed=33))},
    }


@pytest.fixture(scope="session")
def worker_data():
    return small_worker_data()


@pytest.fixture(scope="session")
def federation(worker_data):
    """A shared federation for read-only experiment tests (plain transport)."""
    federation = create_federation(
        worker_data, FederationConfig(smpc_nodes=3, smpc_scheme="shamir", seed=101)
    )
    yield federation
    federation.shutdown()


@pytest.fixture()
def fresh_federation(worker_data):
    """A private federation for tests that mutate state or inject failures."""
    federation = create_federation(
        worker_data, FederationConfig(smpc_nodes=3, smpc_scheme="shamir", seed=202)
    )
    yield federation
    federation.shutdown()


def pooled_rows(worker_data, *columns, data_model: str = "dementia"):
    """Centralized reference: complete-case rows across all workers."""
    rows = []
    for models in worker_data.values():
        table = models[data_model]
        lists = [table.column(c).to_list() for c in columns]
        for row in zip(*lists):
            if None not in row:
                rows.append(row)
    return rows
