"""Shared fixtures: small federations and cohorts sized for fast tests."""

from __future__ import annotations

import pytest

from repro.data.cohorts import CohortSpec, generate_cohort
from repro.federation.controller import FederationConfig, create_federation

import repro.algorithms  # noqa: F401  (register algorithms once)


def small_worker_data(rows: int = 150):
    """Three hospitals, one dataset each."""
    return {
        "hospital_a": {"dementia": generate_cohort(CohortSpec("edsd", rows, seed=11))},
        "hospital_b": {"dementia": generate_cohort(CohortSpec("adni", rows, seed=22))},
        "hospital_c": {"dementia": generate_cohort(CohortSpec("ppmi", rows, seed=33))},
    }


@pytest.fixture(scope="session")
def worker_data():
    return small_worker_data()


@pytest.fixture(scope="session")
def federation(worker_data):
    """A shared federation for read-only experiment tests (plain transport)."""
    return create_federation(
        worker_data, FederationConfig(smpc_nodes=3, smpc_scheme="shamir", seed=101)
    )


@pytest.fixture()
def fresh_federation(worker_data):
    """A private federation for tests that mutate state or inject failures."""
    return create_federation(
        worker_data, FederationConfig(smpc_nodes=3, smpc_scheme="shamir", seed=202)
    )


def pooled_rows(worker_data, *columns, data_model: str = "dementia"):
    """Centralized reference: complete-case rows across all workers."""
    rows = []
    for models in worker_data.values():
        table = models[data_model]
        lists = [table.column(c).to_list() for c in columns]
        for row in zip(*lists):
            if None not in row:
                rows.append(row)
    return rows
