"""Master-crash simulation: two lives, one state dir, byte-level laws.

A ``crash@N:master`` fault kills the service mid-flow (life 1), then the
harness restarts a fresh service on the same state directory (life 2) and
checks restart-spanning invariants: completeness, audit laws, legal life-1
history prefixes, and — for pure master-crash plans — byte-identity of the
resumed results against an uninterrupted run of the same spec.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import SimTestError
from repro.simtest.faults import Fault, FaultPlan
from repro.simtest.fuzz import sample_spec
from repro.simtest.harness import SimSpec, run_simulation

CRASH_SPECS = [
    # Early crash: nothing useful journaled yet, life 2 re-runs from scratch.
    "seed=21;par=1;jobs=1;faults=crash@1:master",
    # Mid-flow crash during the iterative flow — the checkpoint-resume cell.
    "seed=9;par=1;jobs=1;faults=crash@12:master;algo=logistic_regression",
    # Crash point past the end of the run: everything finishes in life 1 and
    # life 2 only restores terminal results.
    "seed=4;par=1;jobs=1;faults=crash@9999:master",
    # Multiple jobs racing the crash at parallelism 2.
    "seed=5;par=2;jobs=3;faults=crash@7:master",
]


class TestCrashMatrix:
    @pytest.mark.parametrize("spec_text", CRASH_SPECS)
    def test_crash_and_restart_holds_invariants(self, spec_text):
        report = run_simulation(SimSpec.parse(spec_text))
        assert report.ok, report.failures()
        assert "# restart " in report.transcript

    @pytest.mark.parametrize("spec_text", CRASH_SPECS[:2])
    def test_crash_transcripts_are_deterministic(self, spec_text):
        spec = SimSpec.parse(spec_text)
        assert run_simulation(spec).transcript == run_simulation(spec).transcript

    def test_mixed_fault_plan_skips_determinism_check_only(self):
        report = run_simulation(
            SimSpec.parse("seed=11;par=1;jobs=2;faults=drop@6,crash@5:master")
        )
        assert report.ok, report.failures()
        assert (
            "invariant resume-determinism ok skipped (mixed fault plan)"
            in report.transcript
        )


class TestAcceptanceScenario:
    """The PR's acceptance bar: crash the master mid-iterative-flow and
    resume byte-identically from the checkpoint."""

    def test_logistic_resume_is_byte_identical(self):
        spec = SimSpec.parse(
            "seed=9;par=1;jobs=1;faults=crash@12:master;algo=logistic_regression"
        )
        report = run_simulation(spec)
        assert report.ok, report.failures()
        lines = report.transcript.splitlines()
        # The determinism law actually compared results (was not skipped).
        (determinism,) = [l for l in lines if l.startswith("invariant resume-determinism")]
        assert determinism == "invariant resume-determinism ok compared=1"
        # The job was resumed from the journal, not merely restored.
        (marker,) = [l for l in lines if l.startswith("# restart ")]
        assert "resumed=['sim_job_1']" in marker


class TestSpecSurface:
    def test_master_crash_at_zero_rejected(self):
        with pytest.raises(SimTestError, match="needs N >= 1"):
            Fault("crash", 0, "master")

    def test_algo_spec_round_trip(self):
        text = "seed=9;par=1;jobs=1;faults=crash@12:master;algo=logistic_regression"
        assert SimSpec.parse(text).spec() == text

    def test_spec_without_algo_unchanged(self):
        text = "seed=1;par=2;jobs=2;faults=crash@5:master"
        spec = SimSpec.parse(text)
        assert spec.algo is None
        assert spec.spec() == text

    def test_unknown_algo_rejected(self):
        spec = SimSpec.parse("seed=1;par=1;jobs=1;faults=none;algo=quantum_stats")
        with pytest.raises(SimTestError, match="no sim archetype"):
            run_simulation(spec)

    def test_fuzzer_samples_master_crashes_when_enabled(self):
        rng = random.Random("simtest-mcrash")
        sampled = [sample_spec(rng, master_crash=True) for _ in range(40)]
        assert any(s.faults.master_crashes() for s in sampled)
        # And the flag stays off by default.
        rng = random.Random("simtest-mcrash")
        plain = [sample_spec(rng) for _ in range(40)]
        assert not any(s.faults.master_crashes() for s in plain)

    def test_fault_plan_master_crash_filtering(self):
        plan = FaultPlan.parse("drop@3,crash@5:master,crash@9:hospital_a")
        assert [f.at for f in plan.master_crashes()] == [5]
        assert all(not f.is_master_crash for f in plan.delivery_faults())
