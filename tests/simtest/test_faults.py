"""The fault DSL and the observable effect of each fault kind."""

from __future__ import annotations

import pytest

from repro.errors import SimTestError
from repro.simtest.faults import Fault, FaultPlan
from repro.simtest.harness import SimSpec, run_simulation


class TestFaultParsing:
    @pytest.mark.parametrize("text,kind,at,target,amount", [
        ("drop@5", "drop", 5, None, 0.0),
        ("drop@12:hospital_b", "drop", 12, "hospital_b", 0.0),
        ("delay@3=0.25", "delay", 3, None, 0.25),
        ("delay@3:hospital_a=0.01", "delay", 3, "hospital_a", 0.01),
        ("crash@9:hospital_c", "crash", 9, "hospital_c", 0.0),
        ("revive@40:hospital_c", "revive", 40, "hospital_c", 0.0),
        ("cancel@0:job1", "cancel", 0, "job1", 0.0),
        ("reorder@7", "reorder", 7, None, 0.0),
    ])
    def test_single_fault_round_trip(self, text, kind, at, target, amount):
        (fault,) = FaultPlan.parse(text)
        assert (fault.kind, fault.at, fault.target, fault.amount) == (
            kind, at, target, amount,
        )
        assert fault.spec() == text

    def test_plan_round_trip(self):
        text = "drop@5,delay@3:hospital_a=0.25,cancel@2:job1"
        assert FaultPlan.parse(text).spec() == text

    def test_empty_plan(self):
        assert FaultPlan.parse("none").spec() == "none"
        assert FaultPlan.parse("").spec() == "none"
        assert len(FaultPlan.parse("none")) == 0

    @pytest.mark.parametrize("bad", [
        "explode@3",            # unknown kind
        "drop",                 # missing counter
        "crash@5",              # crash needs a target
        "cancel@5",             # cancel needs a job
        "delay@5",              # delay needs an amount
        "delay@5=0",            # ...a positive one
        "drop@-1",              # negative counter
    ])
    def test_invalid_specs_rejected(self, bad):
        with pytest.raises(SimTestError):
            FaultPlan.parse(bad)

    def test_without_removes_one_fault(self):
        plan = FaultPlan.parse("drop@5,reorder@7,cancel@2:job1")
        assert plan.without(1).spec() == "drop@5,cancel@2:job1"
        assert len(plan) == 3  # immutable

    def test_faults_are_value_objects(self):
        assert Fault("drop", 5) == Fault("drop", 5)
        assert Fault("drop", 5) != Fault("drop", 6)


class TestFaultEffects:
    def test_drop_fires_once_and_is_survived(self):
        report = run_simulation(SimSpec.parse("seed=8;par=1;jobs=1;faults=drop@5"))
        assert report.ok, report.failures()
        assert report.transcript.count("fault drop@5 fired") == 1
        assert report.results[0].status.value == "success"

    def test_crash_without_revive_can_fail_the_job(self):
        # Crashing a worker early with no revival: the flow either degrades
        # or errors, but invariants must hold either way.
        report = run_simulation(
            SimSpec.parse("seed=8;par=1;jobs=1;faults=crash@2:hospital_b")
        )
        assert report.ok, report.failures()
        assert "fault crash@2:hospital_b fired" in report.transcript

    def test_crash_then_revive_restores_the_worker(self):
        report = run_simulation(
            SimSpec.parse(
                "seed=8;par=2;jobs=2;faults=crash@8:hospital_c,revive@25:hospital_c"
            )
        )
        assert report.ok, report.failures()
        assert "fault revive@25:hospital_c fired" in report.transcript
        # The worker came back in time: both experiments still succeed.
        assert [r.status.value for r in report.results] == ["success", "success"]

    def test_delay_charges_the_simulated_clock(self):
        clean = run_simulation(SimSpec.parse("seed=8;par=1;jobs=1;faults=none"))
        delayed = run_simulation(
            SimSpec.parse("seed=8;par=1;jobs=1;faults=delay@4=0.25")
        )
        assert delayed.ok, delayed.failures()
        extra = (
            delayed.results[0].telemetry.simulated_network_seconds
            - clean.results[0].telemetry.simulated_network_seconds
        )
        assert extra == pytest.approx(0.25, abs=1e-9)

    def test_reorder_changes_fanout_order_only(self):
        clean = run_simulation(SimSpec.parse("seed=8;par=1;jobs=1;faults=none"))
        reordered = run_simulation(
            SimSpec.parse("seed=8;par=1;jobs=1;faults=reorder@1")
        )
        assert reordered.ok, reordered.failures()
        assert "fault reorder@1 fired" in reordered.transcript
        # Same final answer; only the dispatch order moved.
        assert reordered.results[0].status.value == "success"
        assert clean.results[0].result == reordered.results[0].result

    def test_predispatch_cancel_is_guaranteed(self):
        report = run_simulation(
            SimSpec.parse("seed=8;par=1;jobs=2;faults=cancel@0:job2")
        )
        assert report.ok, report.failures()
        by_id = {r.experiment_id: r for r in report.results}
        cancelled = by_id["sim_job_2"]
        assert cancelled.status.value == "cancelled"
        assert "before dispatch" in cancelled.error
        assert cancelled.workers == ()
        assert by_id["sim_job_1"].status.value == "success"

    def test_targeted_drop_skips_other_receivers(self):
        report = run_simulation(
            SimSpec.parse("seed=8;par=1;jobs=1;faults=drop@1:hospital_c")
        )
        assert report.ok, report.failures()
        fired = [l for l in report.transcript.splitlines() if l.startswith("fault ")]
        assert fired == [] or all("receiver=hospital_c" in l for l in fired)
