"""The harness's core promise: a spec fully determines a simulation.

Same (seed, fault plan, parallelism) must produce a byte-identical
transcript — every scheduling decision, fired fault and invariant line —
on every run.  Pinned at parallelism 1 and 8 per the acceptance bar.
"""

from __future__ import annotations

import pytest

from repro.errors import SimTestError
from repro.simtest import hooks
from repro.simtest.harness import SimSpec, run_simulation
from repro.simtest.runtime import SimRuntime

PINNED_SPECS = [
    "seed=1234;par=1;jobs=2;faults=none",
    "seed=1234;par=8;jobs=4;faults=drop@9,cancel@5:job3",
]


class TestByteIdentity:
    @pytest.mark.parametrize("spec_text", PINNED_SPECS)
    def test_two_runs_byte_identical(self, spec_text):
        spec = SimSpec.parse(spec_text)
        first = run_simulation(spec)
        second = run_simulation(spec)
        assert first.ok, first.failures()
        assert first.transcript == second.transcript
        assert [r.status.value for r in first.results] == [
            r.status.value for r in second.results
        ]

    def test_different_seeds_interleave_differently(self):
        """The seed is load-bearing: at parallelism 8 with 4 jobs, two seeds
        must not happen to pick the same interleaving."""
        a = run_simulation(SimSpec.parse("seed=1;par=8;jobs=4;faults=none"))
        b = run_simulation(SimSpec.parse("seed=2;par=8;jobs=4;faults=none"))
        steps_a = [l for l in a.transcript.splitlines() if l.startswith("step ")]
        steps_b = [l for l in b.transcript.splitlines() if l.startswith("step ")]
        assert steps_a != steps_b

    def test_transcript_carries_spec_header_and_invariants(self):
        spec = SimSpec.parse("seed=77;par=2;jobs=2;faults=none")
        report = run_simulation(spec)
        lines = report.transcript.splitlines()
        assert lines[0] == f"# sim {spec.spec()}"
        assert any(l.startswith("invariant telemetry-conservation") for l in lines)
        assert report.transcript.endswith("invariant privacy-monotonicity ok\n")


class TestSpecRoundTrip:
    @pytest.mark.parametrize("spec_text", PINNED_SPECS + [
        "seed=0;par=4;jobs=1;faults=delay@3:hospital_b=0.25,crash@7:hospital_a,revive@20:hospital_a",
    ])
    def test_parse_format_round_trip(self, spec_text):
        assert SimSpec.parse(spec_text).spec() == spec_text

    def test_malformed_spec_rejected(self):
        with pytest.raises(SimTestError, match="malformed sim spec"):
            SimSpec.parse("seed=1;jobs=2")


class TestHookGating:
    def test_no_runtime_outside_activation(self):
        assert hooks.current() is None

    def test_runtime_scoped_to_activation(self):
        runtime = SimRuntime(seed=5)
        with runtime.activate():
            assert hooks.current() is runtime
        assert hooks.current() is None

    def test_hard_disable_forbids_activation(self, monkeypatch):
        monkeypatch.setenv(hooks.SIMTEST_ENV, "off")
        runtime = SimRuntime(seed=5)
        with pytest.raises(SimTestError, match="disabled"):
            with runtime.activate():
                pass  # pragma: no cover

    def test_activation_marks_environment(self):
        import os

        runtime = SimRuntime(seed=5)
        with runtime.activate():
            assert os.environ.get(hooks.SIMTEST_ENV) == "on"
        assert os.environ.get(hooks.SIMTEST_ENV) is None
