"""The invariant checker: unit laws plus the deliberate-bug acceptance test.

The headline test injects a telemetry-attribution bug (a test-only
monkeypatch that leaks one message out of a job's per-job meter) and
asserts the conservation invariant catches it and the shrinker reduces the
failing scenario to a minimal single-line repro command.
"""

from __future__ import annotations

import pytest

from repro.core.jobs import ExperimentQueue
from repro.federation.transport import TransportStats
from repro.simtest.fuzz import run_one, shrink
from repro.simtest.harness import SimSpec, repro_command
from repro.simtest.invariants import (
    InvariantChecker,
    InvariantReport,
    _first_mismatch,
)


def _checker(**overrides) -> InvariantChecker:
    """A checker wired for unit-testing one law at a time."""
    kwargs = dict(
        federation=None,
        results=[],
        histories={},
        baseline=TransportStats(),
        smpc_baseline=(0, 0),
        privacy_baseline={},
    )
    kwargs.update(overrides)
    return InvariantChecker(**kwargs)


class TestLifecycleLaw:
    @pytest.mark.parametrize("history", [
        ("pending", "queued", "cancelled"),
        ("pending", "queued", "running", "success"),
        ("pending", "queued", "running", "error"),
        ("pending", "queued", "running", "cancelled"),
    ])
    def test_legal_histories_pass(self, history):
        report = InvariantReport()
        _checker(histories={"j1": history})._check_lifecycle(report)
        assert report.ok

    @pytest.mark.parametrize("history", [
        ("pending", "running", "success"),                          # skipped queued
        ("pending", "queued", "running"),                           # never terminal
        ("pending", "queued", "running", "cancelled", "running",
         "success"),                                                # resurrection
        ("pending", "queued", "success"),                           # never ran
        ("pending", "queued", "running", "success", "error"),       # double terminal
    ])
    def test_illegal_histories_flagged(self, history):
        report = InvariantReport()
        _checker(histories={"j1": history})._check_lifecycle(report)
        assert not report.ok
        assert "j1" in report.failures()[0][1]


class TestSecureAggregateLaw:
    @staticmethod
    def _share(node, step):
        return {"event": "aggregate_shared", "node": node, "job_id": step,
                "details": {"path": "smpc"}}

    @staticmethod
    def _aggregate(step, workers):
        return {"event": "secure_aggregate", "node": "master", "job_id": step,
                "details": {"workers": list(workers)}}

    def test_shares_before_aggregate_pass(self):
        problems: list[str] = []
        events = [
            self._share("hospital_a", "j1_s1"),
            self._share("hospital_b", "j1_s1"),
            self._aggregate("j1_read2", ["hospital_a", "hospital_b"]),
        ]
        _checker()._check_secure_aggregates("j1", events, problems)
        assert problems == []

    def test_aggregate_without_prior_share_flagged(self):
        problems: list[str] = []
        events = [
            self._share("hospital_a", "j1_s1"),
            self._aggregate("j1_read2", ["hospital_a", "hospital_b"]),
        ]
        _checker()._check_secure_aggregates("j1", events, problems)
        assert problems == ["j1_read2: secure aggregate without shares from hospital_b"]

    def test_each_aggregate_consumes_its_shares(self):
        # Two aggregates cannot be fed by a single share per worker.
        problems: list[str] = []
        events = [
            self._share("hospital_a", "j1_s1"),
            self._aggregate("j1_read2", ["hospital_a"]),
            self._aggregate("j1_read3", ["hospital_a"]),
        ]
        _checker()._check_secure_aggregates("j1", events, problems)
        assert problems == ["j1_read3: secure aggregate without shares from hospital_a"]


class TestEquivalenceComparator:
    def test_close_floats_match(self):
        assert _first_mismatch({"mean": 1.00000001}, {"mean": 1.0}) is None

    def test_distant_floats_reported_with_path(self):
        found = _first_mismatch({"stats": [{"mean": 2.0}]}, {"stats": [{"mean": 1.0}]})
        assert found == "result.stats[0].mean: 2.0 != 1.0"

    def test_nan_matches_nan(self):
        assert _first_mismatch(float("nan"), float("nan")) is None

    def test_key_sets_must_match(self):
        assert "keys differ" in _first_mismatch({"a": 1}, {"b": 1})


class TestInjectedAttributionBug:
    """Acceptance: a deliberately broken per-job meter is caught and shrunk."""

    @pytest.fixture()
    def leaky_telemetry(self, monkeypatch):
        """Test-only bug: every job's meter under-reports by one message."""
        import dataclasses

        real = ExperimentQueue._collect_telemetry

        def leaky(self, experiment_id):
            telemetry = real(self, experiment_id)
            return dataclasses.replace(telemetry, messages=telemetry.messages - 1)

        monkeypatch.setattr(ExperimentQueue, "_collect_telemetry", leaky)

    def test_conservation_catches_it_and_shrinks_to_one_line(self, leaky_telemetry):
        outcome = run_one(
            SimSpec.parse("seed=31;par=4;jobs=3;faults=drop@6,reorder@9")
        )
        assert outcome.failed
        assert any("telemetry-conservation" in line for line in outcome.failures())
        shrunk = shrink(outcome.spec)
        # The bug fires on every job regardless of faults or concurrency, so
        # the shrinker must strip the scenario to its minimal form.
        assert shrunk.faults.spec() == "none"
        assert shrunk.jobs == 1
        assert shrunk.parallelism == 1
        command = repro_command(shrunk)
        assert command == (
            f"PYTHONPATH=src python -m repro fuzz --replay '{shrunk.spec()}'"
        )
        assert "\n" not in command

    def test_same_scenario_is_clean_without_the_bug(self):
        outcome = run_one(
            SimSpec.parse("seed=31;par=4;jobs=3;faults=drop@6,reorder@9")
        )
        assert not outcome.failed, outcome.failures()
