"""The fuzzer: deterministic sampling, greedy shrinking, corpus, CLI."""

from __future__ import annotations

import random

import pytest

from repro import cli
from repro.simtest.faults import FaultPlan
from repro.simtest.fuzz import (
    fuzz,
    read_corpus,
    sample_spec,
    shrink,
    write_corpus,
)
from repro.simtest.harness import SimSpec


class TestSampling:
    def test_sampling_is_seed_deterministic(self):
        draw = lambda: [  # noqa: E731
            sample_spec(random.Random("simtest-fuzz-9")).spec() for _ in range(20)
        ]
        assert draw() == draw()

    def test_samples_stay_in_bounds(self):
        rng = random.Random("simtest-fuzz-3")
        for _ in range(200):
            spec = sample_spec(rng)
            assert 1 <= spec.jobs <= 4
            assert spec.parallelism in (1, 2, 4, 8)
            assert len(spec.faults) <= 3
            # Every sampled spec round-trips through its own string form.
            assert SimSpec.parse(spec.spec()) == spec


class TestShrinking:
    def test_shrink_strips_irrelevant_faults(self):
        spec = SimSpec(
            seed=1, parallelism=8, jobs=4,
            faults=FaultPlan.parse("drop@5,crash@9:hospital_a,reorder@3"),
        )

        def fails_iff_crash_present(candidate: SimSpec) -> bool:
            return any(f.kind == "crash" for f in candidate.faults)

        shrunk = shrink(spec, still_fails=fails_iff_crash_present)
        assert shrunk.faults.spec() == "crash@9:hospital_a"
        assert shrunk.jobs == 1
        assert shrunk.parallelism == 1

    def test_shrink_keeps_required_concurrency(self):
        spec = SimSpec(seed=1, parallelism=8, jobs=3)

        def fails_iff_concurrent(candidate: SimSpec) -> bool:
            return candidate.parallelism >= 2 and candidate.jobs >= 2

        shrunk = shrink(spec, still_fails=fails_iff_concurrent)
        assert (shrunk.parallelism, shrunk.jobs) == (2, 2)

    def test_shrink_is_a_fixpoint(self):
        spec = SimSpec(seed=1, parallelism=4, jobs=2,
                       faults=FaultPlan.parse("drop@5,reorder@3"))
        predicate = lambda candidate: True  # noqa: E731  (everything fails)
        once = shrink(spec, still_fails=predicate)
        assert shrink(once, still_fails=predicate) == once


class TestFuzzSessions:
    def test_short_session_is_clean(self):
        result = fuzz(runs=3, seed=0)
        assert result.ok
        assert result.runs == 3
        assert result.command is None

    def test_budget_stops_early(self):
        result = fuzz(runs=10_000, seed=0, budget_seconds=0.0)
        assert result.runs == 0

    def test_emit_reports_every_run(self):
        lines: list[str] = []
        fuzz(runs=2, seed=0, emit=lines.append)
        assert len(lines) == 2
        assert all("ok seed=" in line for line in lines)


class TestCorpus:
    def test_round_trip(self, tmp_path):
        specs = [
            SimSpec.parse("seed=1;par=1;jobs=1;faults=none"),
            SimSpec.parse("seed=2;par=8;jobs=4;faults=drop@5,cancel@2:job1"),
        ]
        path = tmp_path / "corpus.txt"
        write_corpus(str(path), specs)
        assert read_corpus(str(path)) == specs
        # Header comment and blank lines are ignored.
        path.write_text(path.read_text() + "\n# trailing comment\n\n")
        assert read_corpus(str(path)) == specs


class TestCLI:
    def test_replay_clean_scenario_exits_zero(self, capsys):
        code = cli.main(["fuzz", "--replay", "seed=6;par=1;jobs=1;faults=none"])
        out = capsys.readouterr().out
        assert code == 0
        assert out.startswith("# sim seed=6;par=1;jobs=1;faults=none")
        assert "invariant telemetry-conservation ok" in out

    def test_replay_malformed_spec_exits_two(self, capsys):
        code = cli.main(["fuzz", "--replay", "not-a-spec"])
        assert code == 2
        assert "malformed sim spec" in capsys.readouterr().err

    def test_fuzz_session_and_corpus_flow(self, tmp_path, capsys):
        corpus = tmp_path / "corpus.txt"
        code = cli.main([
            "fuzz", "--runs", "2", "--seed", "4",
            "--write-corpus", str(corpus),
        ])
        assert code == 0
        assert "all clean" in capsys.readouterr().out
        code = cli.main(["fuzz", "--corpus", str(corpus)])
        assert code == 0
        assert "corpus: 2/2 ok" in capsys.readouterr().out

    def test_replay_failing_scenario_exits_one(self, monkeypatch, capsys):
        import dataclasses

        from repro.core.jobs import ExperimentQueue

        real = ExperimentQueue._collect_telemetry

        def leaky(self, experiment_id):
            telemetry = real(self, experiment_id)
            return dataclasses.replace(telemetry, messages=telemetry.messages - 1)

        monkeypatch.setattr(ExperimentQueue, "_collect_telemetry", leaky)
        code = cli.main(["fuzz", "--replay", "seed=6;par=1;jobs=1;faults=none"])
        out = capsys.readouterr().out
        assert code == 1
        assert "invariant telemetry-conservation FAIL" in out
        assert "FAIL telemetry-conservation" in out
