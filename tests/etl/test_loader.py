"""CSV ingestion."""

import pytest

from repro.data.cdes import dementia_data_model
from repro.errors import SpecificationError
from repro.etl.loader import load_csv, load_csv_text


@pytest.fixture(scope="module")
def model():
    return dementia_data_model()


class TestLoadCSVText:
    def test_typed_columns(self, model):
        table = load_csv_text(
            "dataset,p_tau,gender,event_observed\n"
            "edsd,55.5,F,1\n"
            "edsd,60.0,M,0\n",
            model,
        )
        assert table.num_rows == 2
        assert table.to_rows()[0] == ("edsd", 55.5, "F", 1)

    def test_na_tokens(self, model):
        table = load_csv_text(
            "dataset,p_tau\nedsd,NA\nedsd,\nedsd,null\nedsd,42.0\n", model
        )
        assert table.column("p_tau").to_list() == [None, None, None, 42.0]

    def test_blank_lines_skipped(self, model):
        table = load_csv_text("dataset,p_tau\nedsd,1.0\n\n", model)
        assert table.num_rows == 1

    def test_unknown_column_rejected(self, model):
        with pytest.raises(SpecificationError, match="not in data model"):
            load_csv_text("dataset,shoe_size\nedsd,42\n", model)

    def test_dataset_column_required(self, model):
        with pytest.raises(SpecificationError, match="dataset"):
            load_csv_text("p_tau\n55.0\n", model)

    def test_bad_number_reports_line(self, model):
        with pytest.raises(SpecificationError, match="line 3"):
            load_csv_text("dataset,p_tau\nedsd,1.0\nedsd,abc\n", model)

    def test_arity_mismatch(self, model):
        with pytest.raises(SpecificationError, match="cells"):
            load_csv_text("dataset,p_tau\nedsd\n", model)

    def test_empty_input(self, model):
        with pytest.raises(SpecificationError, match="empty"):
            load_csv_text("", model)

    def test_int_from_decimal_string(self, model):
        table = load_csv_text("dataset,event_observed\nedsd,1.0\n", model)
        assert table.column("event_observed").to_list() == [1]


class TestLoadCSVFile:
    def test_from_disk(self, model, tmp_path):
        path = tmp_path / "export.csv"
        path.write_text("dataset,p_tau\nedsd,55.0\n")
        table = load_csv(path, model)
        assert table.num_rows == 1
