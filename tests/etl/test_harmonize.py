"""Harmonization against CDE contracts."""

import pytest

from repro.data.cdes import dementia_data_model
from repro.etl.harmonize import harmonize_table
from repro.etl.loader import load_csv_text


@pytest.fixture(scope="module")
def model():
    return dementia_data_model()


class TestHarmonize:
    def test_out_of_range_nulled(self, model):
        table = load_csv_text(
            "dataset,p_tau\nedsd,55.0\nedsd,9999.0\nedsd,-3.0\n", model
        )
        clean, report = harmonize_table(table, model)
        assert clean.column("p_tau").to_list() == [55.0, None, None]
        assert report.out_of_range_nulled == {"p_tau": 2}
        assert report.total_nulled == 2

    def test_bad_level_nulled(self, model):
        table = load_csv_text("dataset,gender\nedsd,F\nedsd,X\n", model)
        clean, report = harmonize_table(table, model)
        assert clean.column("gender").to_list() == ["F", None]
        assert report.bad_level_nulled == {"gender": 1}

    def test_clean_table_untouched(self, model):
        table = load_csv_text("dataset,p_tau,gender\nedsd,55.0,F\n", model)
        clean, report = harmonize_table(table, model)
        assert clean.to_rows() == table.to_rows()
        assert report.total_nulled == 0

    def test_existing_nulls_not_counted(self, model):
        table = load_csv_text("dataset,p_tau\nedsd,NA\n", model)
        clean, report = harmonize_table(table, model)
        assert report.total_nulled == 0
        assert clean.column("p_tau").to_list() == [None]

    def test_report_row_count(self, model):
        table = load_csv_text("dataset,p_tau\nedsd,1.0\nedsd,2.0\n", model)
        _, report = harmonize_table(table, model)
        assert report.total_rows == 2
