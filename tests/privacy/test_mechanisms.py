"""DP mechanisms."""

import numpy as np
import pytest

from repro.errors import PrivacyError
from repro.privacy.mechanisms import GaussianMechanism, LaplaceMechanism, gaussian_sigma


class TestLaplace:
    def test_scale(self):
        mechanism = LaplaceMechanism(epsilon=0.5, sensitivity=2.0)
        assert mechanism.scale == 4.0

    def test_noise_distribution(self):
        mechanism = LaplaceMechanism(epsilon=1.0, sensitivity=1.0)
        rng = np.random.default_rng(0)
        noised = mechanism.add_noise(np.zeros(20000), rng)
        # Laplace(b): std = b * sqrt(2)
        assert np.std(noised) == pytest.approx(np.sqrt(2), rel=0.05)
        assert np.mean(noised) == pytest.approx(0.0, abs=0.05)

    def test_validation(self):
        with pytest.raises(PrivacyError):
            LaplaceMechanism(epsilon=0.0)
        with pytest.raises(PrivacyError):
            LaplaceMechanism(epsilon=1.0, sensitivity=-1.0)

    def test_shape_preserved(self):
        mechanism = LaplaceMechanism(epsilon=1.0)
        rng = np.random.default_rng(0)
        assert mechanism.add_noise(np.zeros((3, 2)), rng).shape == (3, 2)


class TestGaussian:
    def test_sigma_formula(self):
        sigma = gaussian_sigma(epsilon=1.0, delta=1e-5, sensitivity=1.0)
        assert sigma == pytest.approx(np.sqrt(2 * np.log(1.25e5)), rel=1e-9)

    def test_sigma_scales_with_sensitivity(self):
        assert gaussian_sigma(1.0, 1e-5, 2.0) == 2 * gaussian_sigma(1.0, 1e-5, 1.0)

    def test_sigma_shrinks_with_epsilon(self):
        assert gaussian_sigma(2.0, 1e-5) < gaussian_sigma(1.0, 1e-5)

    def test_noise_distribution(self):
        mechanism = GaussianMechanism(epsilon=1.0, delta=1e-5)
        rng = np.random.default_rng(0)
        noised = mechanism.add_noise(np.zeros(20000), rng)
        assert np.std(noised) == pytest.approx(mechanism.sigma, rel=0.05)

    def test_delta_validation(self):
        with pytest.raises(PrivacyError):
            GaussianMechanism(epsilon=1.0, delta=0.0)
        with pytest.raises(PrivacyError):
            GaussianMechanism(epsilon=1.0, delta=1.5)
