"""Privacy budget accounting."""

import pytest

from repro.errors import PrivacyError
from repro.privacy.accountant import PrivacyAccountant


class TestBasicComposition:
    def test_epsilons_add(self):
        accountant = PrivacyAccountant()
        accountant.record(0.5)
        accountant.record(0.25, 1e-6)
        spent = accountant.spent()
        assert spent.epsilon == pytest.approx(0.75)
        assert spent.delta == pytest.approx(1e-6)
        assert accountant.n_releases == 2

    def test_budget_enforced(self):
        accountant = PrivacyAccountant(epsilon_budget=1.0)
        accountant.record(0.6)
        with pytest.raises(PrivacyError, match="exhausted"):
            accountant.record(0.6)
        # failed record must not be counted
        assert accountant.spent().epsilon == pytest.approx(0.6)

    def test_delta_budget_enforced(self):
        accountant = PrivacyAccountant(delta_budget=1e-5)
        accountant.record(0.1, 9e-6)
        with pytest.raises(PrivacyError):
            accountant.record(0.1, 9e-6)

    def test_invalid_release(self):
        accountant = PrivacyAccountant()
        with pytest.raises(PrivacyError):
            accountant.record(-1.0)
        with pytest.raises(PrivacyError):
            accountant.record(1.0, 2.0)

    def test_invalid_budgets(self):
        with pytest.raises(PrivacyError):
            PrivacyAccountant(epsilon_budget=0.0)
        with pytest.raises(PrivacyError):
            PrivacyAccountant(delta_budget=1.0)


class TestAdvancedComposition:
    def test_beats_basic_for_many_small_releases(self):
        accountant = PrivacyAccountant()
        for _ in range(100):
            accountant.record(0.1, 1e-7)
        basic = accountant.spent()
        advanced = accountant.spent_advanced(delta_slack=1e-6)
        assert advanced.epsilon < basic.epsilon
        assert advanced.delta > basic.delta  # pays the slack

    def test_falls_back_for_single_release(self):
        accountant = PrivacyAccountant()
        accountant.record(1.0)
        advanced = accountant.spent_advanced()
        assert advanced.epsilon == pytest.approx(1.0)

    def test_heterogeneous_uses_basic(self):
        accountant = PrivacyAccountant()
        accountant.record(0.1)
        accountant.record(0.9)
        assert accountant.spent_advanced().epsilon == pytest.approx(1.0)

    def test_empty(self):
        accountant = PrivacyAccountant()
        assert accountant.spent_advanced().epsilon == 0.0

    def test_slack_validated(self):
        accountant = PrivacyAccountant()
        accountant.record(0.1)
        with pytest.raises(PrivacyError):
            accountant.spent_advanced(delta_slack=0.0)
