"""Norm clipping."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import PrivacyError
from repro.privacy.clipping import clip_by_l2_norm


class TestClipping:
    def test_under_norm_untouched(self):
        values = np.array([0.3, 0.4])
        assert clip_by_l2_norm(values, 1.0).tolist() == [0.3, 0.4]

    def test_over_norm_scaled(self):
        values = np.array([3.0, 4.0])  # norm 5
        clipped = clip_by_l2_norm(values, 1.0)
        assert np.linalg.norm(clipped) == pytest.approx(1.0)
        # direction preserved
        assert clipped[1] / clipped[0] == pytest.approx(4.0 / 3.0)

    def test_zero_vector(self):
        assert clip_by_l2_norm(np.zeros(3), 1.0).tolist() == [0.0, 0.0, 0.0]

    def test_invalid_norm(self):
        with pytest.raises(PrivacyError):
            clip_by_l2_norm(np.ones(2), 0.0)

    @given(st.lists(st.floats(-100, 100), min_size=1, max_size=10),
           st.floats(0.1, 10))
    def test_norm_bound_property(self, values, clip):
        clipped = clip_by_l2_norm(np.array(values), clip)
        assert np.linalg.norm(clipped) <= clip * (1 + 1e-9)
