"""SQL type system."""

import numpy as np
import pytest

from repro.engine.types import SQLType, coerce_scalar, common_type, is_numeric
from repro.errors import TypeMismatchError


class TestFromName:
    @pytest.mark.parametrize(
        "name, expected",
        [
            ("INT", SQLType.INT),
            ("integer", SQLType.INT),
            ("BIGINT", SQLType.INT),
            ("REAL", SQLType.REAL),
            ("double", SQLType.REAL),
            ("FLOAT", SQLType.REAL),
            ("varchar", SQLType.VARCHAR),
            ("TEXT", SQLType.VARCHAR),
            ("BOOLEAN", SQLType.BOOL),
        ],
    )
    def test_aliases(self, name, expected):
        assert SQLType.from_name(name) == expected

    def test_unknown_raises(self):
        with pytest.raises(TypeMismatchError):
            SQLType.from_name("BLOB")


class TestOfValue:
    def test_bool_before_int(self):
        # bool is a subclass of int; ensure it is not mistaken for INT
        assert SQLType.of_value(True) == SQLType.BOOL

    def test_int(self):
        assert SQLType.of_value(7) == SQLType.INT

    def test_numpy_int(self):
        assert SQLType.of_value(np.int64(7)) == SQLType.INT

    def test_float(self):
        assert SQLType.of_value(1.5) == SQLType.REAL

    def test_str(self):
        assert SQLType.of_value("x") == SQLType.VARCHAR

    def test_unsupported(self):
        with pytest.raises(TypeMismatchError):
            SQLType.of_value([1, 2])


class TestCommonType:
    def test_same(self):
        assert common_type(SQLType.INT, SQLType.INT) == SQLType.INT

    def test_int_widens_to_real(self):
        assert common_type(SQLType.INT, SQLType.REAL) == SQLType.REAL

    def test_incompatible(self):
        with pytest.raises(TypeMismatchError):
            common_type(SQLType.INT, SQLType.VARCHAR)

    def test_is_numeric(self):
        assert is_numeric(SQLType.INT)
        assert is_numeric(SQLType.REAL)
        assert not is_numeric(SQLType.VARCHAR)
        assert not is_numeric(SQLType.BOOL)


class TestCoerceScalar:
    def test_none_passes_through(self):
        assert coerce_scalar(None, SQLType.INT) is None

    def test_int_from_whole_float(self):
        assert coerce_scalar(3.0, SQLType.INT) == 3

    def test_int_from_fractional_float_raises(self):
        with pytest.raises(TypeMismatchError):
            coerce_scalar(3.5, SQLType.INT)

    def test_real_from_int(self):
        assert coerce_scalar(3, SQLType.REAL) == 3.0

    def test_varchar_rejects_number(self):
        with pytest.raises(TypeMismatchError):
            coerce_scalar(3, SQLType.VARCHAR)

    def test_bool_strict(self):
        assert coerce_scalar(True, SQLType.BOOL) is True
        with pytest.raises(TypeMismatchError):
            coerce_scalar(1, SQLType.BOOL)
