"""Tables and schemas."""

import numpy as np
import pytest

from repro.engine.column import Column
from repro.engine.table import ColumnSpec, Schema, Table, concat_tables
from repro.engine.types import SQLType
from repro.errors import CatalogError, TypeMismatchError


@pytest.fixture()
def schema():
    return Schema([("a", SQLType.INT), ("b", SQLType.REAL), ("c", SQLType.VARCHAR)])


@pytest.fixture()
def table(schema):
    return Table.from_rows(schema, [(1, 1.5, "x"), (2, None, "y"), (3, 3.5, None)])


class TestSchema:
    def test_duplicate_names_rejected(self):
        with pytest.raises(CatalogError):
            Schema([("a", SQLType.INT), ("a", SQLType.REAL)])

    def test_type_of(self, schema):
        assert schema.type_of("b") == SQLType.REAL
        with pytest.raises(CatalogError):
            schema.type_of("missing")

    def test_index_of(self, schema):
        assert schema.index_of("c") == 2

    def test_contains(self, schema):
        assert "a" in schema
        assert "z" not in schema

    def test_equality(self, schema):
        other = Schema([("a", SQLType.INT), ("b", SQLType.REAL), ("c", SQLType.VARCHAR)])
        assert schema == other


class TestTable:
    def test_row_count(self, table):
        assert table.num_rows == 3
        assert table.num_columns == 3

    def test_ragged_rows_rejected(self, schema):
        with pytest.raises(TypeMismatchError):
            Table.from_rows(schema, [(1, 2.0)])

    def test_column_type_checked(self, schema):
        cols = [
            Column.from_values(SQLType.REAL, [1.0]),  # wrong: schema says INT
            Column.from_values(SQLType.REAL, [1.0]),
            Column.from_values(SQLType.VARCHAR, ["x"]),
        ]
        with pytest.raises(TypeMismatchError):
            Table(schema, cols)

    def test_ragged_columns_rejected(self, schema):
        cols = [
            Column.from_values(SQLType.INT, [1, 2]),
            Column.from_values(SQLType.REAL, [1.0]),
            Column.from_values(SQLType.VARCHAR, ["x"]),
        ]
        with pytest.raises(CatalogError):
            Table(schema, cols)

    def test_to_rows_roundtrip(self, table):
        assert table.to_rows() == [(1, 1.5, "x"), (2, None, "y"), (3, 3.5, None)]

    def test_to_dict(self, table):
        assert table.to_dict()["a"] == [1, 2, 3]

    def test_select_projects_and_reorders(self, table):
        projected = table.select(["c", "a"])
        assert projected.schema.names == ["c", "a"]
        assert projected.to_rows()[0] == ("x", 1)

    def test_rename(self, table):
        renamed = table.rename(["x", "y", "z"])
        assert renamed.schema.names == ["x", "y", "z"]
        with pytest.raises(CatalogError):
            table.rename(["only-two", "names"])

    def test_filter(self, table):
        filtered = table.filter(np.array([True, False, True]))
        assert filtered.num_rows == 2

    def test_take(self, table):
        assert table.take(np.array([2])).to_rows() == [(3, 3.5, None)]

    def test_concat(self, table):
        combined = table.concat(table)
        assert combined.num_rows == 6

    def test_concat_incompatible(self, table):
        other = Table.from_rows(Schema([("a", SQLType.INT)]), [(1,)])
        with pytest.raises(TypeMismatchError):
            table.concat(other)

    def test_from_mapping(self):
        table = Table.from_mapping(
            {"a": (SQLType.INT, [1, 2]), "b": (SQLType.REAL, np.array([0.5, 1.5]))}
        )
        assert table.to_rows() == [(1, 0.5), (2, 1.5)]

    def test_empty(self, schema):
        assert Table.empty(schema).num_rows == 0


class TestConcatTables:
    def test_many(self, table):
        assert concat_tables([table, table, table]).num_rows == 9

    def test_zero_rejected(self):
        with pytest.raises(CatalogError):
            concat_tables([])
