"""Remote and merge tables: the non-materialized aggregation path."""

import pytest

from repro.engine.database import Database
from repro.errors import CatalogError, NodeUnavailableError


def make_remote_pair():
    """Two databases where `master` resolves remote tables from `worker`."""
    worker = Database("worker")
    worker.execute("CREATE TABLE stats (v REAL)")
    worker.execute("INSERT INTO stats VALUES (1.0), (2.0)")
    master = Database("master")

    def resolver(location):
        node, table = location.split("/", 1)
        assert node == "worker"
        return worker.get_table(table)

    master.set_remote_resolver(resolver)
    return master, worker


class TestRemoteTable:
    def test_remote_select(self):
        master, worker = make_remote_pair()
        master.execute("CREATE REMOTE TABLE r (v REAL) ON 'worker/stats'")
        assert master.query("SELECT SUM(v) AS s FROM r").to_rows() == [(3.0,)]

    def test_remote_is_not_materialized(self):
        """Reads always see the current remote contents — nothing is cached."""
        master, worker = make_remote_pair()
        master.execute("CREATE REMOTE TABLE r (v REAL) ON 'worker/stats'")
        assert master.scalar("SELECT SUM(v) FROM r") == 3.0
        worker.execute("INSERT INTO stats VALUES (10.0)")
        assert master.scalar("SELECT SUM(v) FROM r") == 13.0

    def test_schema_mismatch_detected(self):
        master, worker = make_remote_pair()
        master.execute("CREATE REMOTE TABLE r (v VARCHAR) ON 'worker/stats'")
        with pytest.raises(CatalogError, match="schema"):
            master.query("SELECT * FROM r")

    def test_default_resolver_fails(self):
        db = Database()
        db.execute("CREATE REMOTE TABLE r (v REAL) ON 'x/y'")
        with pytest.raises(NodeUnavailableError):
            db.query("SELECT * FROM r")


class TestMergeTable:
    def test_union_all_of_parts(self):
        db = Database()
        db.execute("CREATE TABLE p1 (v INT)")
        db.execute("INSERT INTO p1 VALUES (1), (2)")
        db.execute("CREATE TABLE p2 (v INT)")
        db.execute("INSERT INTO p2 VALUES (3)")
        db.execute("CREATE MERGE TABLE m (v INT)")
        db.execute("ALTER TABLE m ADD TABLE p1")
        db.execute("ALTER TABLE m ADD TABLE p2")
        assert db.scalar("SELECT SUM(v) FROM m") == 6

    def test_empty_merge(self):
        db = Database()
        db.execute("CREATE MERGE TABLE m (v INT)")
        assert db.query("SELECT * FROM m").num_rows == 0

    def test_duplicate_part_rejected(self):
        db = Database()
        db.execute("CREATE TABLE p (v INT)")
        db.execute("CREATE MERGE TABLE m (v INT)")
        db.execute("ALTER TABLE m ADD TABLE p")
        with pytest.raises(CatalogError):
            db.execute("ALTER TABLE m ADD TABLE p")

    def test_add_missing_part(self):
        db = Database()
        db.execute("CREATE MERGE TABLE m (v INT)")
        with pytest.raises(CatalogError):
            db.execute("ALTER TABLE m ADD TABLE ghost")

    def test_merge_over_remote_parts(self):
        """The MIP pattern: a merge table whose parts are remote tables."""
        master, worker = make_remote_pair()
        worker.execute("CREATE TABLE stats2 (v REAL)")
        worker.execute("INSERT INTO stats2 VALUES (5.0)")

        def resolver(location):
            node, table = location.split("/", 1)
            return worker.get_table(table)

        master.set_remote_resolver(resolver)
        master.execute("CREATE REMOTE TABLE r1 (v REAL) ON 'worker/stats'")
        master.execute("CREATE REMOTE TABLE r2 (v REAL) ON 'worker/stats2'")
        master.execute("CREATE MERGE TABLE m (v REAL)")
        master.execute("ALTER TABLE m ADD TABLE r1")
        master.execute("ALTER TABLE m ADD TABLE r2")
        assert master.scalar("SELECT SUM(v) FROM m") == 8.0
