"""Differential tests for the vectorized DISTINCT and hash-join kernels.

Both replaced row-at-a-time Python loops; these tests pin the new
``np.unique``/``searchsorted`` implementations to the reference semantics
(first-occurrence order, left-row-major match order, NULL keys never match).
"""

import math
import random

import numpy as np
import pytest

from repro.engine.executor import (
    _distinct,
    _hash_join_indices,
    _hash_join_indices_python,
)
from repro.engine.table import Schema, Table
from repro.engine.types import SQLType


def _reference_distinct(table: Table) -> Table:
    seen: set[tuple] = set()
    keep: list[int] = []
    for index, row in enumerate(table.rows()):
        if row not in seen:
            seen.add(row)
            keep.append(index)
    return table.take(np.array(keep, dtype=np.int64))


def _random_table(rng: random.Random, n_rows: int) -> Table:
    def cell(kind):
        if rng.random() < 0.2:
            return None
        if kind == "i":
            return rng.randrange(4)
        if kind == "r":
            return rng.choice([0.0, 1.5, -2.25])
        if kind == "s":
            return rng.choice(["", "a", "bb"])
        return rng.random() < 0.5

    schema = Schema([
        ("i", SQLType.INT), ("r", SQLType.REAL),
        ("s", SQLType.VARCHAR), ("b", SQLType.BOOL),
    ])
    rows = [tuple(cell(k) for k in "irsb") for _ in range(n_rows)]
    return Table.from_rows(schema, rows)


class TestDistinct:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_reference_on_random_tables(self, seed):
        table = _random_table(random.Random(seed), 60)
        assert _distinct(table).to_rows() == _reference_distinct(table).to_rows()

    def test_empty_and_single(self):
        schema = Schema([("v", SQLType.INT)])
        assert _distinct(Table.empty(schema)).num_rows == 0
        one = Table.from_rows(schema, [(5,)])
        assert _distinct(one).to_rows() == [(5,)]

    def test_nan_rows_stay_distinct(self):
        # float('nan') != float('nan'): the row-tuple reference kept every
        # NaN row, and so must the vectorized path.
        from repro.engine.column import Column

        schema = Schema([("v", SQLType.REAL)])
        table = Table(
            schema,
            [Column(
                SQLType.REAL,
                np.array([math.nan, 1.0, math.nan, 1.0]),
                np.zeros(4, dtype=bool),
            )],
        )
        out = _distinct(table)
        assert out.num_rows == 3  # both NaNs kept, duplicate 1.0 dropped

    def test_null_rows_dedupe(self):
        schema = Schema([("a", SQLType.INT), ("b", SQLType.VARCHAR)])
        table = Table.from_rows(
            schema, [(None, "x"), (None, "x"), (None, None), (None, None)]
        )
        assert _distinct(table).to_rows() == [(None, "x"), (None, None)]


class TestHashJoinIndices:
    def _tables(self, rng: random.Random, n_left: int, n_right: int):
        def column_rows(n):
            return [
                (
                    None if rng.random() < 0.15 else rng.randrange(5),
                    None if rng.random() < 0.15 else rng.choice(["k1", "k2", "k3"]),
                    rng.randrange(1000),
                )
                for _ in range(n)
            ]

        schema_l = Schema([("lk", SQLType.INT), ("ls", SQLType.VARCHAR), ("lv", SQLType.INT)])
        schema_r = Schema([("rk", SQLType.INT), ("rs", SQLType.VARCHAR), ("rv", SQLType.INT)])
        return (
            Table.from_rows(schema_l, column_rows(n_left)),
            Table.from_rows(schema_r, column_rows(n_right)),
        )

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_reference_order_exactly(self, seed):
        rng = random.Random(seed)
        left, right = self._tables(rng, 50, 40)
        for keys in ([("lk", "rk")], [("lk", "rk"), ("ls", "rs")]):
            li, ri = _hash_join_indices(left, right, keys)
            left_cols = [left.column(l) for l, _ in keys]
            right_cols = [right.column(r) for _, r in keys]
            li_ref, ri_ref = _hash_join_indices_python(left, right, left_cols, right_cols)
            assert li.tolist() == li_ref.tolist()
            assert ri.tolist() == ri_ref.tolist()

    def test_no_matches(self):
        left = Table.from_rows(Schema([("a", SQLType.INT)]), [(1,), (2,)])
        right = Table.from_rows(Schema([("b", SQLType.INT)]), [(3,), (4,)])
        li, ri = _hash_join_indices(left, right, [("a", "b")])
        assert li.size == 0 and ri.size == 0

    def test_null_keys_never_match(self):
        left = Table.from_rows(Schema([("a", SQLType.INT)]), [(None,), (1,)])
        right = Table.from_rows(Schema([("b", SQLType.INT)]), [(None,), (1,)])
        li, ri = _hash_join_indices(left, right, [("a", "b")])
        assert li.tolist() == [1] and ri.tolist() == [1]

    def test_mixed_int_real_keys(self):
        left = Table.from_rows(Schema([("a", SQLType.INT)]), [(1,), (2,), (3,)])
        right = Table.from_rows(Schema([("b", SQLType.REAL)]), [(2.0,), (2.5,), (1.0,)])
        li, ri = _hash_join_indices(left, right, [("a", "b")])
        assert list(zip(li.tolist(), ri.tolist())) == [(0, 2), (1, 0)]

    def test_huge_int_keys_fall_back_to_exact_path(self):
        # 2**53 + 1 casts to the same float64 as 2**53; the exact fallback
        # must keep them distinct.
        left = Table.from_rows(Schema([("a", SQLType.INT)]), [(2**53 + 1,)])
        right = Table.from_rows(Schema([("b", SQLType.REAL)]), [(float(2**53),)])
        li, ri = _hash_join_indices(left, right, [("a", "b")])
        assert li.size == 0

    def test_string_vs_numeric_keys_never_match(self):
        left = Table.from_rows(Schema([("a", SQLType.VARCHAR)]), [("1",)])
        right = Table.from_rows(Schema([("b", SQLType.INT)]), [(1,)])
        li, ri = _hash_join_indices(left, right, [("a", "b")])
        assert li.size == 0
