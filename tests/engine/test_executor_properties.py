"""Property-based engine tests: vectorized execution vs a row-at-a-time
reference interpreter with SQL NULL semantics."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import expressions as ast
from repro.engine.database import Database
from repro.engine.executor import evaluate
from repro.engine.parser import parse_expression
from repro.engine.table import Schema, Table
from repro.engine.types import SQLType

# ----------------------------------------------------------------- reference


def reference_eval(expr: ast.Expression, row: dict):
    """Scalar, three-valued-logic reference semantics."""
    if isinstance(expr, ast.Literal):
        return expr.value
    if isinstance(expr, ast.ColumnRef):
        return row[expr.name]
    if isinstance(expr, ast.UnaryOp):
        value = reference_eval(expr.operand, row)
        if expr.op == "NOT":
            return None if value is None else (not value)
        return None if value is None else -value
    if isinstance(expr, ast.IsNull):
        value = reference_eval(expr.operand, row)
        return (value is not None) if expr.negated else (value is None)
    if isinstance(expr, ast.BinaryOp):
        op = expr.op
        left = reference_eval(expr.left, row)
        right = reference_eval(expr.right, row)
        if op == "AND":
            if left is False or right is False:
                return False
            if left is None or right is None:
                return None
            return left and right
        if op == "OR":
            if left is True or right is True:
                return True
            if left is None or right is None:
                return None
            return left or right
        if left is None or right is None:
            return None
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            return None if right == 0 else left / right
        if op == "=":
            return left == right
        if op == "<>":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
    if isinstance(expr, ast.CaseWhen):
        for condition, value in expr.branches:
            if reference_eval(condition, row) is True:
                return reference_eval(value, row)
        if expr.otherwise is not None:
            return reference_eval(expr.otherwise, row)
        return None
    raise NotImplementedError(type(expr).__name__)


# ---------------------------------------------------------------- strategies

numbers = st.one_of(
    st.none(),
    st.integers(-100, 100).map(float),
    st.floats(-100, 100, allow_nan=False, allow_infinity=False),
)


def expressions(depth: int = 3):
    base = st.one_of(
        st.sampled_from([ast.ColumnRef("a"), ast.ColumnRef("b")]),
        st.integers(-10, 10).map(lambda v: ast.Literal(float(v))),
        st.just(ast.Literal(None)),
    )
    if depth == 0:
        return base
    sub = expressions(depth - 1)
    return st.one_of(
        base,
        st.tuples(st.sampled_from(["+", "-", "*", "/"]), sub, sub).map(
            lambda t: ast.BinaryOp(t[0], t[1], t[2])
        ),
        sub.map(lambda e: ast.UnaryOp("-", e)),
    )


def predicates(depth: int = 2):
    comparison = st.tuples(
        st.sampled_from(["=", "<>", "<", "<=", ">", ">="]),
        expressions(1), expressions(1),
    ).map(lambda t: ast.BinaryOp(t[0], t[1], t[2]))
    is_null = expressions(1).map(lambda e: ast.IsNull(e))
    base = st.one_of(comparison, is_null)
    if depth == 0:
        return base
    sub = predicates(depth - 1)
    return st.one_of(
        base,
        st.tuples(st.sampled_from(["AND", "OR"]), sub, sub).map(
            lambda t: ast.BinaryOp(t[0], t[1], t[2])
        ),
        sub.map(lambda e: ast.UnaryOp("NOT", e)),
    )


def make_table(rows):
    schema = Schema([("a", SQLType.REAL), ("b", SQLType.REAL)])
    return Table.from_rows(schema, rows)


def close(x, y) -> bool:
    if x is None or y is None:
        return x is None and y is None
    if isinstance(x, bool) or isinstance(y, bool):
        return x == y
    if math.isinf(x) or math.isinf(y):
        return True  # reference may overflow where the engine nulls
    return math.isclose(x, y, rel_tol=1e-9, abs_tol=1e-9)


# -------------------------------------------------------------------- tests


@settings(max_examples=150, deadline=None)
@given(
    expr=expressions(3),
    rows=st.lists(st.tuples(numbers, numbers), min_size=1, max_size=6),
)
def test_arithmetic_matches_reference(expr, rows):
    table = make_table(rows)
    column = evaluate(expr, table)
    for index, (a, b) in enumerate(rows):
        try:
            expected = reference_eval(expr, {"a": a, "b": b})
        except OverflowError:
            continue
        if expected is not None and (
            isinstance(expected, float) and (math.isnan(expected) or math.isinf(expected))
        ):
            expected = None  # engine renders non-finite results as NULL
        assert close(column[index], expected), (
            f"row {index}: {expr} -> {column[index]} != {expected}"
        )


@settings(max_examples=150, deadline=None)
@given(
    predicate=predicates(2),
    rows=st.lists(st.tuples(numbers, numbers), min_size=1, max_size=6),
)
def test_where_matches_reference_filter(predicate, rows):
    database = Database()
    database.register_table("t", make_table(rows))
    select = f"SELECT a, b FROM t WHERE {predicate}"
    result = database.query(select)
    expected = [
        (a, b) for a, b in rows
        if reference_eval(predicate, {"a": a, "b": b}) is True
    ]

    def normalize(row):
        return tuple(None if v is None else round(v, 9) for v in row)

    assert [normalize(r) for r in result.to_rows()] == [normalize(r) for r in expected]


@settings(max_examples=100, deadline=None)
@given(predicate=predicates(2))
def test_expression_string_roundtrip(predicate):
    """str(expr) re-parses to an expression with identical semantics."""
    reparsed = parse_expression(str(predicate))
    rows = [(1.0, 2.0), (None, 3.0), (-5.0, None), (0.0, 0.0)]
    table = make_table(rows)
    original = evaluate(predicate, table)
    roundtripped = evaluate(reparsed, table)
    assert original.to_list() == roundtripped.to_list()


@settings(max_examples=100, deadline=None)
@given(
    rows=st.lists(
        st.tuples(st.integers(0, 3).map(float), numbers), min_size=1, max_size=20
    )
)
def test_group_by_sums_match_reference(rows):
    database = Database()
    database.register_table("t", make_table(rows))
    result = database.query(
        "SELECT a, COUNT(*) AS n, SUM(b) AS s FROM t GROUP BY a"
    )
    expected: dict = {}
    for a, b in rows:
        entry = expected.setdefault(a, [0, None])
        entry[0] += 1
        if b is not None:
            entry[1] = b if entry[1] is None else entry[1] + b
    for key, count, total in result.to_rows():
        assert expected[key][0] == count
        if total is None:
            assert expected[key][1] is None
        else:
            assert math.isclose(expected[key][1], total, rel_tol=1e-9, abs_tol=1e-9)
