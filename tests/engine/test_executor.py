"""Query execution: projections, filters, aggregation, NULL semantics."""

import pytest

from repro.engine.database import Database


@pytest.fixture()
def db():
    database = Database()
    database.execute("CREATE TABLE t (a INT, b REAL, c VARCHAR, d BOOL)")
    database.execute(
        "INSERT INTO t VALUES "
        "(1, 1.5, 'x', TRUE), (2, NULL, 'y', FALSE), "
        "(3, 3.5, NULL, TRUE), (4, 4.5, 'x', NULL)"
    )
    return database


class TestProjection:
    def test_star(self, db):
        assert db.query("SELECT * FROM t").num_rows == 4

    def test_expressions(self, db):
        rows = db.query("SELECT a * 2 AS twice, a + b AS s FROM t").to_rows()
        assert rows[0] == (2, 2.5)
        assert rows[1] == (4, None)  # NULL propagates through +

    def test_select_without_from(self, db):
        assert db.query("SELECT 2 + 3 AS v").to_rows() == [(5,)]

    def test_division_is_real_and_null_on_zero(self, db):
        rows = db.query("SELECT a / 2 AS h, a / 0 AS z FROM t LIMIT 1").to_rows()
        assert rows[0] == (0.5, None)

    def test_case_expression(self, db):
        rows = db.query(
            "SELECT CASE WHEN a < 3 THEN 'low' ELSE 'high' END AS tier FROM t"
        ).to_rows()
        assert [r[0] for r in rows] == ["low", "low", "high", "high"]

    def test_cast(self, db):
        rows = db.query("SELECT CAST(a AS VARCHAR) AS s FROM t LIMIT 1").to_rows()
        assert rows == [("1",)]

    def test_scalar_functions(self, db):
        rows = db.query("SELECT ABS(-a) AS p, SQRT(b) AS r FROM t LIMIT 1").to_rows()
        assert rows[0][0] == 1
        assert rows[0][1] == pytest.approx(1.2247, abs=1e-3)

    def test_sqrt_of_negative_is_null(self, db):
        assert db.scalar("SELECT SQRT(0 - 4.0)") is None

    def test_coalesce(self, db):
        rows = db.query("SELECT COALESCE(b, 0.0) AS v FROM t").to_rows()
        assert [r[0] for r in rows] == [1.5, 0.0, 3.5, 4.5]

    def test_string_functions(self, db):
        rows = db.query("SELECT UPPER(c) AS u, LENGTH(c) AS n FROM t WHERE c IS NOT NULL").to_rows()
        assert rows[0] == ("X", 1)


class TestWhere:
    def test_comparison(self, db):
        assert db.query("SELECT a FROM t WHERE a >= 3").num_rows == 2

    def test_null_comparison_filters_out(self, db):
        # b = NULL row: comparison yields NULL -> excluded
        assert db.query("SELECT a FROM t WHERE b > 0").num_rows == 3

    def test_is_null(self, db):
        assert db.query("SELECT a FROM t WHERE b IS NULL").to_rows() == [(2,)]
        assert db.query("SELECT a FROM t WHERE b IS NOT NULL").num_rows == 3

    def test_in_list(self, db):
        assert db.query("SELECT a FROM t WHERE c IN ('x')").num_rows == 2
        assert db.query("SELECT a FROM t WHERE a NOT IN (1, 2)").num_rows == 2

    def test_between(self, db):
        assert db.query("SELECT a FROM t WHERE a BETWEEN 2 AND 3").num_rows == 2

    def test_boolean_column(self, db):
        assert db.query("SELECT a FROM t WHERE d").num_rows == 2
        assert db.query("SELECT a FROM t WHERE NOT d").num_rows == 1

    def test_kleene_and(self, db):
        # FALSE AND NULL is FALSE, so the d-NULL row is excluded, not an error.
        assert db.query("SELECT a FROM t WHERE d AND b IS NULL").to_rows() == []

    def test_kleene_or(self, db):
        # TRUE OR NULL is TRUE: row 4 (d NULL) qualifies via a = 4.
        assert db.query("SELECT a FROM t WHERE d OR a = 4").num_rows == 3


class TestAggregation:
    def test_plain_aggregates(self, db):
        row = db.query(
            "SELECT COUNT(*) AS n, COUNT(b) AS nb, SUM(a) AS s, AVG(b) AS m, "
            "MIN(a) AS lo, MAX(a) AS hi FROM t"
        ).to_rows()[0]
        assert row == (4, 3, 10, pytest.approx(19 / 6), 1, 4)

    def test_stddev(self, db):
        value = db.scalar("SELECT STDDEV(a) FROM t")
        assert value == pytest.approx(1.29099, abs=1e-4)

    def test_count_distinct(self, db):
        assert db.scalar("SELECT COUNT(DISTINCT c) FROM t") == 2

    def test_group_by(self, db):
        rows = db.query(
            "SELECT c, COUNT(*) AS n, SUM(a) AS s FROM t GROUP BY c ORDER BY n DESC"
        ).to_rows()
        assert rows[0] == ("x", 2, 5)

    def test_group_by_null_key_is_a_group(self, db):
        rows = db.query("SELECT c, COUNT(*) AS n FROM t GROUP BY c").to_rows()
        assert (None, 1) in rows

    def test_having(self, db):
        rows = db.query(
            "SELECT c, COUNT(*) AS n FROM t GROUP BY c HAVING COUNT(*) > 1"
        ).to_rows()
        assert rows == [("x", 2)]

    def test_aggregate_over_empty_is_null(self, db):
        row = db.query("SELECT SUM(a) AS s, COUNT(*) AS n FROM t WHERE a > 99").to_rows()
        assert row == [(None, 0)]

    def test_aggregate_expression(self, db):
        value = db.scalar("SELECT SUM(a) + COUNT(*) FROM t")
        assert value == 14

    def test_avg_ignores_nulls(self, db):
        assert db.scalar("SELECT AVG(b) FROM t") == pytest.approx((1.5 + 3.5 + 4.5) / 3)


class TestOrderLimit:
    def test_order_desc(self, db):
        rows = db.query("SELECT a FROM t ORDER BY a DESC").to_rows()
        assert [r[0] for r in rows] == [4, 3, 2, 1]

    def test_order_nulls_last(self, db):
        rows = db.query("SELECT b FROM t ORDER BY b").to_rows()
        assert rows[-1][0] is None

    def test_order_by_string(self, db):
        rows = db.query("SELECT c FROM t WHERE c IS NOT NULL ORDER BY c").to_rows()
        assert [r[0] for r in rows] == ["x", "x", "y"]

    def test_limit(self, db):
        assert db.query("SELECT a FROM t ORDER BY a LIMIT 2").num_rows == 2

    def test_order_by_expression(self, db):
        rows = db.query("SELECT a FROM t ORDER BY a * -1").to_rows()
        assert rows[0][0] == 4


class TestSubqueries:
    def test_nested_select(self, db):
        value = db.scalar(
            "SELECT SUM(v) FROM (SELECT a * 2 AS v FROM t WHERE a <= 2) AS s"
        )
        assert value == 6
