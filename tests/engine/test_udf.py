"""Python table UDFs inside the engine, including loopback queries."""

import pytest

from repro.engine.database import Database
from repro.errors import CatalogError, UDFError


@pytest.fixture()
def db():
    database = Database()
    database.execute("CREATE TABLE t (a INT, b REAL)")
    database.execute("INSERT INTO t VALUES (1, 10.0), (2, 20.0), (3, 30.0)")
    return database


class TestBasicUDF:
    def test_vectorized_columns(self, db):
        db.execute(
            "CREATE FUNCTION double_it(a INT) RETURNS TABLE(v INT) "
            "LANGUAGE PYTHON { return {'v': a * 2} }"
        )
        rows = db.query("SELECT * FROM double_it((SELECT a FROM t))").to_rows()
        assert rows == [(2,), (4,), (6,)]

    def test_multiple_input_columns(self, db):
        db.execute(
            "CREATE FUNCTION combine(a INT, b REAL) RETURNS TABLE(v REAL) "
            "LANGUAGE PYTHON { return {'v': a + b} }"
        )
        rows = db.query("SELECT * FROM combine((SELECT a, b FROM t))").to_rows()
        assert rows == [(11.0,), (22.0,), (33.0,)]

    def test_scalar_literal_arguments(self, db):
        db.execute(
            "CREATE FUNCTION scale(a INT, factor INT) RETURNS TABLE(v INT) "
            "LANGUAGE PYTHON { return {'v': a * factor} }"
        )
        rows = db.query("SELECT * FROM scale((SELECT a FROM t), 10)").to_rows()
        assert rows == [(10,), (20,), (30,)]

    def test_numpy_available(self, db):
        db.execute(
            "CREATE FUNCTION total(a INT) RETURNS TABLE(s INT) "
            "LANGUAGE PYTHON { return {'s': np.array([a.sum()])} }"
        )
        assert db.query("SELECT * FROM total((SELECT a FROM t))").to_rows() == [(6,)]

    def test_or_replace(self, db):
        db.execute(
            "CREATE FUNCTION f(a INT) RETURNS TABLE(v INT) LANGUAGE PYTHON { return {'v': a} }"
        )
        with pytest.raises(CatalogError):
            db.execute(
                "CREATE FUNCTION f(a INT) RETURNS TABLE(v INT) "
                "LANGUAGE PYTHON { return {'v': a} }"
            )
        db.execute(
            "CREATE OR REPLACE FUNCTION f(a INT) RETURNS TABLE(v INT) "
            "LANGUAGE PYTHON { return {'v': a + 1} }"
        )
        rows = db.query("SELECT * FROM f((SELECT a FROM t LIMIT 1))").to_rows()
        assert rows == [(2,)]

    def test_drop_function(self, db):
        db.execute(
            "CREATE FUNCTION f(a INT) RETURNS TABLE(v INT) LANGUAGE PYTHON { return {'v': a} }"
        )
        db.execute("DROP FUNCTION f")
        with pytest.raises(CatalogError):
            db.query("SELECT * FROM f((SELECT a FROM t))")


class TestLoopback:
    def test_loopback_select(self, db):
        db.execute(
            "CREATE FUNCTION agg() RETURNS TABLE(s REAL) LANGUAGE PYTHON {\n"
            "    result = _conn.execute(\"SELECT SUM(b) AS s FROM t\")\n"
            "    return {'s': result['s']}\n"
            "}"
        )
        assert db.query("SELECT * FROM agg()").to_rows() == [(60.0,)]

    def test_loopback_insert(self, db):
        db.execute("CREATE TABLE sink (v INT)")
        db.execute(
            "CREATE FUNCTION emit() RETURNS TABLE(ok INT) LANGUAGE PYTHON {\n"
            "    _conn.execute(\"INSERT INTO sink VALUES (42)\")\n"
            "    return {'ok': np.array([1])}\n"
            "}"
        )
        db.query("SELECT * FROM emit()")
        assert db.query("SELECT * FROM sink").to_rows() == [(42,)]


class TestErrorHandling:
    def test_exception_wrapped(self, db):
        db.execute(
            "CREATE FUNCTION boom(a INT) RETURNS TABLE(v INT) "
            "LANGUAGE PYTHON { raise ValueError('nope') }"
        )
        with pytest.raises(UDFError, match="nope"):
            db.query("SELECT * FROM boom((SELECT a FROM t))")

    def test_missing_output_column(self, db):
        db.execute(
            "CREATE FUNCTION bad(a INT) RETURNS TABLE(v INT, w INT) "
            "LANGUAGE PYTHON { return {'v': a} }"
        )
        with pytest.raises(UDFError, match="missing column"):
            db.query("SELECT * FROM bad((SELECT a FROM t))")

    def test_ragged_output(self, db):
        db.execute(
            "CREATE FUNCTION ragged(a INT) RETURNS TABLE(v INT, w INT) "
            "LANGUAGE PYTHON { return {'v': a, 'w': a[:1]} }"
        )
        with pytest.raises(UDFError, match="ragged"):
            db.query("SELECT * FROM ragged((SELECT a FROM t))")

    def test_unknown_function(self, db):
        with pytest.raises(CatalogError):
            db.query("SELECT * FROM nothere((SELECT a FROM t))")

    def test_scalar_result_broadcast(self, db):
        db.execute(
            "CREATE FUNCTION one() RETURNS TABLE(v INT) LANGUAGE PYTHON { return 7 }"
        )
        assert db.query("SELECT * FROM one()").to_rows() == [(7,)]
