"""Database catalog and DDL/DML behaviour."""

import pytest

from repro.engine.database import Database, table_from_arrays
from repro.engine.table import Schema, Table
from repro.engine.types import SQLType
from repro.errors import CatalogError, ExecutionError

import numpy as np


@pytest.fixture()
def db():
    return Database()


class TestDDL:
    def test_create_and_drop(self, db):
        db.execute("CREATE TABLE t (a INT)")
        assert db.has_table("t")
        db.execute("DROP TABLE t")
        assert not db.has_table("t")

    def test_create_duplicate_rejected(self, db):
        db.execute("CREATE TABLE t (a INT)")
        with pytest.raises(CatalogError):
            db.execute("CREATE TABLE t (a INT)")

    def test_if_not_exists(self, db):
        db.execute("CREATE TABLE t (a INT)")
        db.execute("CREATE TABLE IF NOT EXISTS t (a INT)")  # no error

    def test_drop_missing(self, db):
        with pytest.raises(CatalogError):
            db.execute("DROP TABLE nope")
        db.execute("DROP TABLE IF EXISTS nope")  # no error

    def test_table_names(self, db):
        db.execute("CREATE TABLE b (x INT)")
        db.execute("CREATE TABLE a (x INT)")
        assert db.table_names() == ["a", "b"]


class TestDML:
    def test_insert_and_query(self, db):
        db.execute("CREATE TABLE t (a INT, b VARCHAR)")
        db.execute("INSERT INTO t VALUES (1, 'x'), (2, NULL)")
        assert db.query("SELECT * FROM t").to_rows() == [(1, "x"), (2, None)]

    def test_insert_select(self, db):
        db.execute("CREATE TABLE s (a INT)")
        db.execute("INSERT INTO s VALUES (1), (2)")
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t SELECT a * 10 FROM s")
        assert db.query("SELECT * FROM t").to_rows() == [(10,), (20,)]

    def test_insert_select_coerces_types(self, db):
        db.execute("CREATE TABLE s (a INT)")
        db.execute("INSERT INTO s VALUES (1)")
        db.execute("CREATE TABLE t (a REAL)")
        db.execute("INSERT INTO t SELECT a FROM s")
        assert db.query("SELECT * FROM t").to_rows() == [(1.0,)]

    def test_insert_wrong_arity(self, db):
        db.execute("CREATE TABLE t (a INT, b INT)")
        with pytest.raises(Exception):
            db.execute("INSERT INTO t VALUES (1)")

    def test_delete_where(self, db):
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (1), (2), (3)")
        db.execute("DELETE FROM t WHERE a = 2")
        assert db.query("SELECT a FROM t ORDER BY a").to_rows() == [(1,), (3,)]

    def test_delete_all(self, db):
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (1)")
        db.execute("DELETE FROM t")
        assert db.query("SELECT * FROM t").num_rows == 0


class TestDirectAPI:
    def test_register_and_get(self, db):
        table = Table.from_rows(Schema([("v", SQLType.INT)]), [(1,)])
        db.register_table("direct", table)
        assert db.get_table("direct").num_rows == 1

    def test_register_replace_flag(self, db):
        table = Table.from_rows(Schema([("v", SQLType.INT)]), [(1,)])
        db.register_table("direct", table)
        with pytest.raises(CatalogError):
            db.register_table("direct", table)
        db.register_table("direct", table, replace=True)

    def test_scalar_shape_checked(self, db):
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (1), (2)")
        with pytest.raises(ExecutionError):
            db.scalar("SELECT a FROM t")

    def test_query_requires_rows(self, db):
        with pytest.raises(ExecutionError):
            db.query("CREATE TABLE t (a INT)")

    def test_table_from_arrays_infers_types(self):
        table = table_from_arrays(
            ["i", "f", "s"],
            [np.array([1, 2]), np.array([0.5, 1.5]), np.array(["a", "b"], dtype=object)],
        )
        assert [spec.sql_type for spec in table.schema] == [
            SQLType.INT, SQLType.REAL, SQLType.VARCHAR,
        ]
