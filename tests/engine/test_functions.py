"""Scalar and aggregate function coverage."""

import numpy as np
import pytest

from repro.engine.column import Column
from repro.engine.database import Database
from repro.engine.functions import aggregate, aggregate_result_type
from repro.engine.types import SQLType
from repro.errors import ExecutionError, TypeMismatchError


@pytest.fixture()
def db():
    database = Database()
    database.execute("CREATE TABLE t (x REAL, s VARCHAR)")
    database.execute(
        "INSERT INTO t VALUES (4.0, ' pad '), (-2.25, 'Beta'), (NULL, NULL), (100.0, 'alpha')"
    )
    return database


class TestScalarFunctions:
    def test_round_sign_floor_ceil(self, db):
        rows = db.query(
            "SELECT ROUND(x) AS r, SIGN(x) AS g, FLOOR(x) AS f, CEIL(x) AS c "
            "FROM t WHERE x IS NOT NULL ORDER BY x"
        ).to_rows()
        assert rows[0] == (-2.0, -1.0, -3, -2)
        assert rows[1] == (4.0, 1.0, 4, 4)

    def test_log_family(self, db):
        rows = db.query(
            "SELECT LN(x) AS l, LOG10(x) AS t, EXP(0.0) AS e FROM t WHERE x = 100.0"
        ).to_rows()
        assert rows[0][0] == pytest.approx(np.log(100.0))
        assert rows[0][1] == pytest.approx(2.0)
        assert rows[0][2] == pytest.approx(1.0)

    def test_ln_of_nonpositive_is_null(self, db):
        assert db.scalar("SELECT LN(x) FROM t WHERE x = -2.25") is None
        assert db.scalar("SELECT LN(0.0)") is None

    def test_power(self, db):
        assert db.scalar("SELECT POWER(2.0, 10)") == 1024.0
        assert db.scalar("SELECT POW(4.0, 0.5)") == 2.0

    def test_trim(self, db):
        assert db.scalar("SELECT TRIM(s) FROM t WHERE x = 4.0") == "pad"

    def test_coalesce_three_args(self, db):
        rows = db.query("SELECT COALESCE(NULL, x, 0.0) AS v FROM t ORDER BY v").to_rows()
        assert rows[0] == (-2.25,)
        assert (0.0,) in rows  # the all-NULL row

    def test_function_arity_errors(self, db):
        with pytest.raises(ExecutionError):
            db.query("SELECT ABS(x, x) FROM t")
        with pytest.raises(ExecutionError):
            db.query("SELECT COALESCE() FROM t")

    def test_type_errors(self, db):
        with pytest.raises(TypeMismatchError):
            db.query("SELECT SQRT(s) FROM t")
        with pytest.raises(TypeMismatchError):
            db.query("SELECT UPPER(x) FROM t")


class TestAggregateFunctions:
    def test_varchar_min_max(self, db):
        row = db.query("SELECT MIN(s) AS lo, MAX(s) AS hi FROM t").to_rows()[0]
        assert row == (" pad ", "alpha")  # lexicographic: space < uppercase < lowercase

    def test_var_samp(self, db):
        value = db.scalar("SELECT VAR_SAMP(x) FROM t")
        data = np.array([4.0, -2.25, 100.0])
        assert value == pytest.approx(data.var(ddof=1))

    def test_stddev_single_value_is_null(self, db):
        assert db.scalar("SELECT STDDEV(x) FROM t WHERE x = 4.0") is None

    def test_sum_distinct(self, db):
        db.execute("CREATE TABLE d (v INT)")
        db.execute("INSERT INTO d VALUES (1), (1), (2)")
        assert db.scalar("SELECT SUM(DISTINCT v) FROM d") == 3

    def test_unknown_aggregate_internal(self):
        column = Column.from_values(SQLType.INT, [1])
        with pytest.raises(ExecutionError):
            aggregate("MEDIAN", column, 1)

    def test_result_types(self):
        assert aggregate_result_type("COUNT", None) == SQLType.INT
        assert aggregate_result_type("SUM", SQLType.INT) == SQLType.INT
        assert aggregate_result_type("AVG", SQLType.INT) == SQLType.REAL
        assert aggregate_result_type("MIN", SQLType.VARCHAR) == SQLType.VARCHAR
        with pytest.raises(ExecutionError):
            aggregate_result_type("SUM", None)
