"""JOINs and DISTINCT in the engine."""

import pytest

from repro.engine.database import Database
from repro.errors import ExecutionError


@pytest.fixture()
def db():
    database = Database()
    database.execute("CREATE TABLE patients (pid INT, site VARCHAR)")
    database.execute("INSERT INTO patients VALUES (1,'a'), (2,'a'), (3,'b'), (4,'c')")
    database.execute("CREATE TABLE visits (pid INT, score REAL)")
    database.execute("INSERT INTO visits VALUES (1, 10.0), (1, 12.0), (2, 8.0), (9, 1.0)")
    return database


class TestInnerJoin:
    def test_equi_join(self, db):
        rows = db.query(
            "SELECT p.pid, v.score FROM patients p JOIN visits v ON p.pid = v.pid "
            "ORDER BY p.pid, v.score"
        ).to_rows()
        assert rows == [(1, 10.0), (1, 12.0), (2, 8.0)]

    def test_inner_keyword(self, db):
        rows = db.query(
            "SELECT COUNT(*) FROM patients p INNER JOIN visits v ON p.pid = v.pid"
        ).to_rows()
        assert rows == [(3,)]

    def test_unqualified_unique_columns(self, db):
        rows = db.query(
            "SELECT site, score FROM patients p JOIN visits v ON p.pid = v.pid "
            "ORDER BY score"
        ).to_rows()
        assert rows[0] == ("a", 8.0)

    def test_ambiguous_reference_rejected(self, db):
        with pytest.raises(ExecutionError, match="ambiguous"):
            db.query("SELECT pid FROM patients p JOIN visits v ON p.pid = v.pid")

    def test_residual_condition(self, db):
        rows = db.query(
            "SELECT v.score FROM patients p JOIN visits v "
            "ON p.pid = v.pid AND v.score > 9 ORDER BY v.score"
        ).to_rows()
        assert rows == [(10.0,), (12.0,)]

    def test_join_then_group_by(self, db):
        rows = db.query(
            "SELECT site, AVG(score) AS mean FROM patients p "
            "JOIN visits v ON p.pid = v.pid GROUP BY site"
        ).to_rows()
        assert rows == [("a", pytest.approx(10.0))]

    def test_three_way_join(self, db):
        db.execute("CREATE TABLE sites (site VARCHAR, region VARCHAR)")
        db.execute("INSERT INTO sites VALUES ('a','north'), ('b','south')")
        rows = db.query(
            "SELECT s.region, COUNT(*) AS n FROM patients p "
            "JOIN visits v ON p.pid = v.pid "
            "JOIN sites s ON p.site = s.site GROUP BY s.region"
        ).to_rows()
        assert rows == [("north", 3)]

    def test_null_keys_never_match(self, db):
        db.execute("INSERT INTO patients VALUES (NULL, 'z')")
        db.execute("INSERT INTO visits VALUES (NULL, 99.0)")
        rows = db.query(
            "SELECT COUNT(*) FROM patients p JOIN visits v ON p.pid = v.pid"
        ).to_rows()
        assert rows == [(3,)]

    def test_duplicate_output_columns_rejected(self, db):
        # joining a table to itself without distinct aliases
        with pytest.raises(ExecutionError, match="duplicate"):
            db.query("SELECT * FROM patients p JOIN patients p ON p.pid = p.pid")


class TestLeftJoin:
    def test_unmatched_left_rows_padded(self, db):
        rows = db.query(
            "SELECT p.pid, v.score FROM patients p LEFT JOIN visits v "
            "ON p.pid = v.pid ORDER BY p.pid, v.score"
        ).to_rows()
        assert (3, None) in rows
        assert (4, None) in rows
        assert len(rows) == 5

    def test_left_outer_synonym(self, db):
        rows = db.query(
            "SELECT COUNT(*) FROM patients p LEFT OUTER JOIN visits v ON p.pid = v.pid"
        ).to_rows()
        assert rows == [(5,)]

    def test_is_null_detects_missing(self, db):
        rows = db.query(
            "SELECT p.pid FROM patients p LEFT JOIN visits v ON p.pid = v.pid "
            "WHERE v.score IS NULL ORDER BY p.pid"
        ).to_rows()
        assert rows == [(3,), (4,)]


class TestNonEquiJoin:
    def test_cartesian_with_predicate(self, db):
        rows = db.query(
            "SELECT p.pid, v.score FROM patients p JOIN visits v ON v.score > 11"
        ).to_rows()
        assert len(rows) == 4  # every patient against the single 12.0 visit
        assert all(score == 12.0 for _, score in rows)

    def test_size_guard(self):
        db = Database()
        db.execute("CREATE TABLE big (v INT)")
        from repro.engine.database import table_from_arrays
        import numpy as np

        db.register_table("big", table_from_arrays(["v"], [np.arange(2000)]),
                          replace=True)
        with pytest.raises(ExecutionError, match="too large"):
            db.query("SELECT COUNT(*) FROM big a JOIN big b ON a.v < b.v")


class TestColumnResolution:
    def test_qualified_reference_to_plain_table(self, db):
        """`t.column` works even outside joins, resolving to the bare column."""
        rows = db.query("SELECT patients.pid FROM patients ORDER BY patients.pid").to_rows()
        assert rows[0] == (1,)

    def test_alias_qualified_in_where(self, db):
        rows = db.query(
            "SELECT p.pid FROM patients p JOIN visits v ON p.pid = v.pid "
            "WHERE p.site = 'a' AND v.score >= 10 ORDER BY v.score"
        ).to_rows()
        assert rows == [(1,), (1,)]

    def test_qualified_in_group_by_and_aggregate(self, db):
        rows = db.query(
            "SELECT p.site, MAX(v.score) AS top FROM patients p "
            "JOIN visits v ON p.pid = v.pid GROUP BY p.site"
        ).to_rows()
        assert rows == [("a", 12.0)]

    def test_qualifier_on_plain_source_is_not_validated(self, db):
        """Documented leniency: outside joins the source carries no alias at
        evaluation time, so a dotted reference resolves by its bare column
        name regardless of the qualifier."""
        rows = db.query("SELECT ghost.pid FROM patients ORDER BY 1 LIMIT 1").to_rows()
        assert rows == [(1,)]

    def test_unknown_bare_reference(self, db):
        with pytest.raises(ExecutionError, match="no such column"):
            db.query("SELECT nonexistent FROM patients")


class TestLike:
    def test_prefix_and_suffix(self, db):
        db.execute("CREATE TABLE names (n VARCHAR)")
        db.execute("INSERT INTO names VALUES ('lefthippocampus'), "
                   "('righthippocampus'), ('brainstem'), (NULL)")
        rows = db.query("SELECT n FROM names WHERE n LIKE '%hippocampus'").to_rows()
        assert len(rows) == 2
        rows = db.query("SELECT n FROM names WHERE n LIKE 'left%'").to_rows()
        assert rows == [("lefthippocampus",)]

    def test_underscore_single_character(self, db):
        db.execute("CREATE TABLE codes (c VARCHAR)")
        db.execute("INSERT INTO codes VALUES ('ab1'), ('ab22'), ('ab3')")
        rows = db.query("SELECT c FROM codes WHERE c LIKE 'ab_'").to_rows()
        assert {r[0] for r in rows} == {"ab1", "ab3"}

    def test_not_like_excludes_nulls(self, db):
        db.execute("CREATE TABLE names2 (n VARCHAR)")
        db.execute("INSERT INTO names2 VALUES ('x'), (NULL)")
        rows = db.query("SELECT n FROM names2 WHERE n NOT LIKE 'y%'").to_rows()
        assert rows == [("x",)]  # NULL LIKE anything is NULL -> filtered

    def test_regex_metacharacters_are_literal(self, db):
        db.execute("CREATE TABLE weird (w VARCHAR)")
        db.execute("INSERT INTO weird VALUES ('a.b'), ('axb')")
        rows = db.query("SELECT w FROM weird WHERE w LIKE 'a.b'").to_rows()
        assert rows == [("a.b",)]

    def test_like_on_numeric_rejected(self, db):
        import pytest as _pytest

        from repro.errors import TypeMismatchError

        with _pytest.raises(TypeMismatchError):
            db.query("SELECT pid FROM patients WHERE pid LIKE '1%'")


class TestDistinct:
    def test_distinct_rows(self, db):
        rows = db.query("SELECT DISTINCT site FROM patients ORDER BY site").to_rows()
        assert rows == [("a",), ("b",), ("c",)]

    def test_distinct_multi_column(self, db):
        db.execute("INSERT INTO patients VALUES (1, 'a')")  # duplicate row
        rows = db.query("SELECT DISTINCT pid, site FROM patients").to_rows()
        assert len(rows) == 4

    def test_distinct_preserves_first_occurrence_order(self, db):
        rows = db.query("SELECT DISTINCT site FROM patients").to_rows()
        assert rows == [("a",), ("b",), ("c",)]
