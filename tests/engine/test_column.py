"""Columnar storage and NULL-mask semantics."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.engine.column import Column
from repro.engine.types import SQLType
from repro.errors import TypeMismatchError


class TestConstruction:
    def test_from_values_with_nulls(self):
        col = Column.from_values(SQLType.REAL, [1.0, None, 3.0])
        assert len(col) == 3
        assert col.null_count == 1
        assert col.to_list() == [1.0, None, 3.0]

    def test_nan_becomes_null(self):
        col = Column.from_values(SQLType.REAL, [1.0, float("nan"), 3.0])
        assert col.null_count == 1
        assert col[1] is None

    def test_from_numpy_absorbs_nan(self):
        col = Column.from_numpy(SQLType.REAL, np.array([1.0, np.nan]))
        assert col.null_count == 1

    def test_from_numpy_casts_dtype(self):
        col = Column.from_numpy(SQLType.REAL, np.array([1, 2, 3]))
        assert col.values.dtype == np.float64

    def test_varchar_nulls(self):
        col = Column.from_values(SQLType.VARCHAR, ["a", None])
        assert col.to_list() == ["a", None]

    def test_empty(self):
        col = Column.empty(SQLType.INT)
        assert len(col) == 0
        assert col.to_list() == []

    def test_ragged_mask_rejected(self):
        with pytest.raises(TypeMismatchError):
            Column(SQLType.INT, np.array([1, 2]), np.array([False]))


class TestAccess:
    def test_getitem_python_scalars(self):
        col = Column.from_values(SQLType.INT, [5])
        assert isinstance(col[0], int)
        col = Column.from_values(SQLType.BOOL, [True])
        assert isinstance(col[0], bool)

    def test_to_numpy_nulls_to_nan(self):
        col = Column.from_values(SQLType.INT, [1, None])
        arr = col.to_numpy()
        assert arr.dtype == np.float64
        assert np.isnan(arr[1])

    def test_to_numpy_no_nulls_preserves_dtype(self):
        col = Column.from_values(SQLType.INT, [1, 2])
        assert col.to_numpy().dtype == np.int64

    def test_non_null(self):
        col = Column.from_values(SQLType.REAL, [1.0, None, 3.0])
        assert list(col.non_null()) == [1.0, 3.0]


class TestCombinators:
    def test_take(self):
        col = Column.from_values(SQLType.INT, [10, 20, 30])
        taken = col.take(np.array([2, 0]))
        assert taken.to_list() == [30, 10]

    def test_filter(self):
        col = Column.from_values(SQLType.INT, [10, 20, 30])
        assert col.filter(np.array([True, False, True])).to_list() == [10, 30]

    def test_slice(self):
        col = Column.from_values(SQLType.INT, [1, 2, 3, 4])
        assert col.slice(1, 3).to_list() == [2, 3]

    def test_concat(self):
        a = Column.from_values(SQLType.INT, [1, None])
        b = Column.from_values(SQLType.INT, [3])
        assert a.concat(b).to_list() == [1, None, 3]

    def test_concat_type_mismatch(self):
        a = Column.from_values(SQLType.INT, [1])
        b = Column.from_values(SQLType.REAL, [1.0])
        with pytest.raises(TypeMismatchError):
            a.concat(b)


class TestCast:
    def test_int_to_real(self):
        col = Column.from_values(SQLType.INT, [1, None]).cast(SQLType.REAL)
        assert col.sql_type == SQLType.REAL
        assert col.to_list() == [1.0, None]

    def test_real_to_varchar(self):
        col = Column.from_values(SQLType.REAL, [1.5]).cast(SQLType.VARCHAR)
        assert col.to_list() == ["1.5"]

    def test_varchar_to_int(self):
        col = Column.from_values(SQLType.VARCHAR, ["42"]).cast(SQLType.INT)
        assert col.to_list() == [42]

    def test_varchar_to_bool(self):
        col = Column.from_values(SQLType.VARCHAR, ["true", "0"]).cast(SQLType.BOOL)
        assert col.to_list() == [True, False]

    def test_bad_bool_cast(self):
        with pytest.raises(TypeMismatchError):
            Column.from_values(SQLType.VARCHAR, ["maybe"]).cast(SQLType.BOOL)

    def test_null_propagates(self):
        col = Column.from_values(SQLType.INT, [None]).cast(SQLType.VARCHAR)
        assert col.to_list() == [None]


@given(st.lists(st.one_of(st.none(), st.integers(-10**9, 10**9))))
def test_roundtrip_int_values(values):
    """from_values/to_list is the identity for INT columns with NULLs."""
    col = Column.from_values(SQLType.INT, values)
    assert col.to_list() == values


@given(st.lists(st.one_of(st.none(), st.text(max_size=10))))
def test_roundtrip_varchar_values(values):
    col = Column.from_values(SQLType.VARCHAR, values)
    assert col.to_list() == values
