"""SQL parser: statements, expressions, and error reporting."""

import pytest

from repro.engine import expressions as ast
from repro.engine.parser import parse, parse_expression, tokenize
from repro.engine.types import SQLType
from repro.errors import ParseError


class TestTokenizer:
    def test_numbers(self):
        kinds = [t.kind for t in tokenize("1 2.5 .5 1e3")]
        assert kinds[:4] == ["number"] * 4

    def test_string_escapes(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].text == "'it''s'"

    def test_comment_skipped(self):
        tokens = tokenize("SELECT -- a comment\n1")
        assert [t.text for t in tokens[:2]] == ["SELECT", "1"]

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            tokenize("SELECT @")

    def test_brace_body_single_token(self):
        tokens = tokenize("{ return {'a': 1} }")
        assert tokens[0].kind == "body"
        assert "return" in tokens[0].text

    def test_brace_body_with_quoted_braces(self):
        tokens = tokenize('{ x = "}" }')
        assert tokens[0].kind == "body"
        assert tokens[0].text.strip() == 'x = "}"'

    def test_unterminated_body(self):
        with pytest.raises(ParseError):
            tokenize("{ open")


class TestSelectParsing:
    def test_star(self):
        stmt = parse("SELECT * FROM t")
        assert isinstance(stmt, ast.Select)
        assert stmt.items == ()
        assert stmt.source == ast.NamedTable("t")

    def test_projection_aliases(self):
        stmt = parse("SELECT a AS x, b + 1 y, c FROM t")
        assert stmt.items[0].alias == "x"
        assert stmt.items[1].alias == "y"
        assert stmt.items[2].alias is None

    def test_where_precedence(self):
        stmt = parse("SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3")
        # AND binds tighter than OR
        assert isinstance(stmt.where, ast.BinaryOp)
        assert stmt.where.op == "OR"
        assert stmt.where.right.op == "AND"

    def test_group_by_having(self):
        stmt = parse("SELECT c, COUNT(*) FROM t GROUP BY c HAVING COUNT(*) > 2")
        assert len(stmt.group_by) == 1
        assert stmt.having is not None

    def test_order_limit(self):
        stmt = parse("SELECT a FROM t ORDER BY a DESC, b LIMIT 5")
        assert stmt.order_by[0].ascending is False
        assert stmt.order_by[1].ascending is True
        assert stmt.limit == 5

    def test_subquery_source(self):
        stmt = parse("SELECT a FROM (SELECT a FROM t) AS s")
        assert isinstance(stmt.source, ast.SubquerySource)
        assert stmt.source.alias == "s"

    def test_udf_call_source(self):
        stmt = parse("SELECT * FROM f((SELECT a FROM t), 3, 'x')")
        assert isinstance(stmt.source, ast.UDFCall)
        assert len(stmt.source.query_args) == 1
        assert stmt.source.literal_args == (3, "x")

    def test_select_without_from(self):
        stmt = parse("SELECT 1 + 1 AS two")
        assert stmt.source is None

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse("SELECT a FROM t WHERE 1 = 1 1")

    def test_table_alias(self):
        stmt = parse("SELECT t.a FROM my_table AS t")
        assert stmt.source == ast.NamedTable("my_table", "t")
        assert stmt.items[0].expression == ast.ColumnRef("t.a")

    def test_join_parsing(self):
        stmt = parse(
            "SELECT a.x FROM t1 a JOIN t2 b ON a.id = b.id "
            "LEFT JOIN t3 c ON b.id = c.id"
        )
        outer = stmt.source
        assert isinstance(outer, ast.JoinSource)
        assert outer.kind == "LEFT"
        inner = outer.left
        assert isinstance(inner, ast.JoinSource)
        assert inner.kind == "INNER"

    def test_select_distinct(self):
        stmt = parse("SELECT DISTINCT a FROM t")
        assert stmt.distinct


class TestExpressionParsing:
    def test_arithmetic_precedence(self):
        expr = parse_expression("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_unary_minus(self):
        expr = parse_expression("-a + 1")
        assert expr.op == "+"
        assert isinstance(expr.left, ast.UnaryOp)

    def test_comparison_aliases(self):
        assert parse_expression("a != 1").op == "<>"

    def test_is_null(self):
        expr = parse_expression("a IS NOT NULL")
        assert isinstance(expr, ast.IsNull)
        assert expr.negated

    def test_in_list(self):
        expr = parse_expression("a NOT IN (1, 2)")
        assert isinstance(expr, ast.InList)
        assert expr.negated
        assert len(expr.items) == 2

    def test_between(self):
        expr = parse_expression("a BETWEEN 1 AND 5")
        assert isinstance(expr, ast.Between)

    def test_case_when(self):
        expr = parse_expression("CASE WHEN a > 1 THEN 'big' ELSE 'small' END")
        assert isinstance(expr, ast.CaseWhen)
        assert expr.otherwise is not None

    def test_case_requires_when(self):
        with pytest.raises(ParseError):
            parse_expression("CASE ELSE 1 END")

    def test_cast(self):
        expr = parse_expression("CAST(a AS REAL)")
        assert isinstance(expr, ast.Cast)
        assert expr.target == SQLType.REAL

    def test_count_star_and_distinct(self):
        star = parse_expression("COUNT(*)")
        assert isinstance(star, ast.Aggregate)
        assert star.argument is None
        distinct = parse_expression("COUNT(DISTINCT a)")
        assert distinct.distinct

    def test_stddev_alias(self):
        expr = parse_expression("STDDEV(a)")
        assert expr.name == "STDDEV_SAMP"

    def test_function_call(self):
        expr = parse_expression("power(a, 2)")
        assert isinstance(expr, ast.FunctionCall)
        assert expr.name == "POWER"


class TestDDLParsing:
    def test_create_table(self):
        stmt = parse("CREATE TABLE t (a INT, b DOUBLE PRECISION, c VARCHAR(50))")
        assert stmt.columns == (
            ("a", SQLType.INT), ("b", SQLType.REAL), ("c", SQLType.VARCHAR),
        )

    def test_create_if_not_exists(self):
        stmt = parse("CREATE TABLE IF NOT EXISTS t (a INT)")
        assert stmt.if_not_exists

    def test_drop(self):
        stmt = parse("DROP TABLE IF EXISTS t")
        assert stmt.if_exists

    def test_insert_values(self):
        stmt = parse("INSERT INTO t VALUES (1, 'a', NULL, TRUE, -2.5)")
        assert stmt.rows == ((1, "a", None, True, -2.5),)

    def test_insert_select(self):
        stmt = parse("INSERT INTO t SELECT a FROM s")
        assert isinstance(stmt, ast.InsertSelect)

    def test_delete(self):
        stmt = parse("DELETE FROM t WHERE a = 1")
        assert isinstance(stmt, ast.DeleteFrom)
        assert stmt.where is not None

    def test_create_function(self):
        stmt = parse(
            "CREATE OR REPLACE FUNCTION f(a INT) RETURNS TABLE(b REAL) "
            "LANGUAGE PYTHON { return {'b': a * 1.0} }"
        )
        assert isinstance(stmt, ast.CreateFunction)
        assert stmt.or_replace
        assert stmt.parameters == (("a", SQLType.INT),)
        assert "return" in stmt.body

    def test_drop_function(self):
        stmt = parse("DROP FUNCTION IF EXISTS f")
        assert isinstance(stmt, ast.DropFunction)

    def test_create_remote_table(self):
        stmt = parse("CREATE REMOTE TABLE r (a INT) ON 'worker1/t'")
        assert isinstance(stmt, ast.CreateRemoteTable)
        assert stmt.location == "worker1/t"

    def test_create_merge_and_alter(self):
        stmt = parse("CREATE MERGE TABLE m (a INT)")
        assert isinstance(stmt, ast.CreateMergeTable)
        alter = parse("ALTER TABLE m ADD TABLE p")
        assert isinstance(alter, ast.AlterMergeAdd)
        assert (alter.merge_table, alter.part_table) == ("m", "p")

    def test_unsupported_statement(self):
        with pytest.raises(ParseError):
            parse("UPDATE t SET a = 1")
