"""Plain (master-side) aggregation of secure-transfer payloads."""

import pytest

from repro.errors import FederationError
from repro.federation.aggregation import aggregate_plain


class TestAggregatePlain:
    def test_sum_vectors(self):
        transfers = [
            {"s": {"data": [1.0, 2.0], "operation": "sum"}},
            {"s": {"data": [3.0, 4.0], "operation": "sum"}},
        ]
        assert aggregate_plain(transfers)["s"] == [4.0, 6.0]

    def test_scalar_kept_scalar(self):
        transfers = [
            {"n": {"data": 5, "operation": "sum"}},
            {"n": {"data": 7, "operation": "sum"}},
        ]
        result = aggregate_plain(transfers)["n"]
        assert result == 12.0
        assert not isinstance(result, list)

    def test_min_max(self):
        transfers = [
            {"lo": {"data": [5.0], "operation": "min"}, "hi": {"data": [5.0], "operation": "max"}},
            {"lo": {"data": [2.0], "operation": "min"}, "hi": {"data": [9.0], "operation": "max"}},
        ]
        result = aggregate_plain(transfers)
        assert result["lo"] == [2.0]
        assert result["hi"] == [9.0]

    def test_union(self):
        transfers = [
            {"u": {"data": [1, 0, 0], "operation": "union"}},
            {"u": {"data": [0, 0, 1], "operation": "union"}},
        ]
        assert aggregate_plain(transfers)["u"] == [1, 0, 1]

    def test_product(self):
        transfers = [
            {"p": {"data": [2.0], "operation": "product"}},
            {"p": {"data": [-4.0], "operation": "product"}},
        ]
        assert aggregate_plain(transfers)["p"] == [-8.0]

    def test_nested_matrices(self):
        transfers = [
            {"m": {"data": [[1.0, 0.0], [0.0, 1.0]], "operation": "sum"}},
            {"m": {"data": [[1.0, 1.0], [1.0, 1.0]], "operation": "sum"}},
        ]
        assert aggregate_plain(transfers)["m"] == [[2.0, 1.0], [1.0, 2.0]]

    def test_matches_smpc_semantics(self):
        """Plain and SMPC aggregation agree on the same payloads."""
        from repro.smpc.cluster import SMPCCluster

        payload_a = {
            "s": {"data": [1.5, -2.0], "operation": "sum"},
            "mn": {"data": [4.0], "operation": "min"},
            "u": {"data": [1, 0], "operation": "union"},
        }
        payload_b = {
            "s": {"data": [0.5, 3.0], "operation": "sum"},
            "mn": {"data": [-1.0], "operation": "min"},
            "u": {"data": [1, 1], "operation": "union"},
        }
        plain = aggregate_plain([payload_a, payload_b])
        cluster = SMPCCluster(3, "shamir", seed=1)
        cluster.import_shares("j", "a", payload_a)
        cluster.import_shares("j", "b", payload_b)
        secure = cluster.aggregate("j")
        assert plain["s"] == pytest.approx(secure["s"], abs=1e-3)
        assert plain["mn"] == pytest.approx(secure["mn"], abs=1e-3)
        assert plain["u"] == secure["u"]

    def test_errors(self):
        with pytest.raises(FederationError):
            aggregate_plain([])
        with pytest.raises(FederationError, match="disagree"):
            aggregate_plain([{"a": {"data": 1, "operation": "sum"}},
                             {"b": {"data": 1, "operation": "sum"}}])
        with pytest.raises(FederationError, match="conflict"):
            aggregate_plain([{"a": {"data": 1, "operation": "sum"}},
                             {"a": {"data": 1, "operation": "min"}}])
        with pytest.raises(FederationError, match="shape"):
            aggregate_plain([{"a": {"data": [1, 2], "operation": "sum"}},
                             {"a": {"data": [1], "operation": "sum"}}])
        with pytest.raises(FederationError, match="unsupported"):
            aggregate_plain([{"a": {"data": 1, "operation": "median"}}])
