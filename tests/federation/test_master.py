"""Master-node orchestration and the two aggregation paths."""

import pytest

from repro.errors import DatasetUnavailableError, FederationError
from repro.federation.master import Master
from repro.federation.worker import Worker
from repro.federation.transport import Transport
from repro.data.cohorts import CohortSpec, generate_cohort
from repro.smpc.cluster import SMPCCluster
from repro.udfgen import relation, secure_transfer, transfer, udf


@udf(data=relation(), return_type=[transfer()])
def master_test_local(data):
    return {"sum": float(data.to_matrix().sum()), "n": len(data)}


@udf(data=relation(), return_type=[secure_transfer()])
def master_test_secure(data):
    return {"sum": {"data": float(data.to_matrix().sum()), "operation": "sum"}}


def build_master(n_workers=2, smpc=True):
    transport = Transport()
    workers = {}
    for index in range(n_workers):
        worker = Worker(f"hospital_{index}")
        dataset = ["edsd", "adni", "ppmi"][index % 3]
        worker.load_data_model(
            "dementia", generate_cohort(CohortSpec(dataset, 50, seed=index))
        )
        transport.register(worker.node_id, worker.handle)
        workers[worker.node_id] = worker
    cluster = SMPCCluster(3, "shamir", seed=3) if smpc else None
    master = Master(transport, list(workers), smpc_cluster=cluster)
    return master, workers, transport


def run_local(master, udf_name, workers):
    args = {
        w: {"data": {"kind": "view",
                     "query": "SELECT lefthippocampus FROM data_dementia"}}
        for w in workers
    }
    return master.run_local_step("job1", udf_name, args)


class TestCatalog:
    def test_availability(self):
        master, workers, _ = build_master()
        availability = master.refresh_catalog()
        assert availability["dementia"]["edsd"] == ["hospital_0"]
        assert availability["dementia"]["adni"] == ["hospital_1"]

    def test_workers_for(self):
        master, _, _ = build_master()
        assert master.workers_for("dementia", ["edsd"]) == ["hospital_0"]
        assert set(master.workers_for("dementia", ["edsd", "adni"])) == {
            "hospital_0", "hospital_1",
        }

    def test_missing_dataset(self):
        master, _, _ = build_master()
        with pytest.raises(DatasetUnavailableError):
            master.workers_for("dementia", ["nonexistent"])

    def test_missing_model(self):
        master, _, _ = build_master()
        with pytest.raises(DatasetUnavailableError):
            master.workers_for("genomics", ["edsd"])

    def test_down_worker_excluded_from_catalog(self):
        master, _, transport = build_master()
        transport.set_down("hospital_1")
        availability = master.refresh_catalog()
        assert "adni" not in availability["dementia"]
        assert master.alive_workers() == ["hospital_0"]


class TestPlainAggregation:
    def test_remote_merge_path(self):
        master, workers, _ = build_master()
        results = run_local(
            master, "tests_federation_test_master_master_test_local", workers
        )
        tables = {w: results[w][0]["table"] for w in workers}
        transfers = master.gather_transfers_plain("job1", tables)
        assert len(transfers) == 2
        assert all(t["n"] == 50 for t in transfers)

    def test_remote_resolver_parses_location(self):
        master, _, _ = build_master()
        with pytest.raises(FederationError, match="bad remote location"):
            master._resolve_remote("no-slash")


class TestSecureAggregation:
    def test_smpc_path(self):
        master, workers, _ = build_master()
        results = run_local(
            master, "tests_federation_test_master_master_test_secure", workers
        )
        tables = {w: results[w][0]["table"] for w in workers}
        aggregated = master.gather_transfers_secure("sec_job", tables)
        transfers_sum = aggregated["sum"]
        # equals the plain sum of both workers' local sums
        plain = run_local(
            master, "tests_federation_test_master_master_test_local", workers
        )
        plain_tables = {w: plain[w][0]["table"] for w in workers}
        reference = sum(t["sum"] for t in master.gather_transfers_plain("p", plain_tables))
        assert transfers_sum == pytest.approx(reference, abs=1e-3)

    def test_requires_cluster(self):
        master, workers, _ = build_master(smpc=False)
        with pytest.raises(FederationError, match="SMPC"):
            master.gather_transfers_secure("j", {"hospital_0": "t"})


class TestGlobalSteps:
    def test_store_and_read_transfer(self):
        master, _, _ = build_master()
        table = master.store_global_transfer("j", {"coefficients": [1.0, 2.0]})
        assert master.read_transfer(table) == {"coefficients": [1.0, 2.0]}

    def test_read_unknown_table(self):
        master, _, _ = build_master()
        with pytest.raises(FederationError):
            master.read_transfer("ghost")

    def test_broadcast(self):
        master, workers, _ = build_master()
        table = master.store_global_transfer("j", {"beta": [0.5]})
        placed = master.broadcast_transfer("j", table, list(workers))
        for worker_id, remote_table in placed.items():
            blob = workers[worker_id].database.scalar(f"SELECT * FROM {remote_table}")
            assert "beta" in blob

    def test_cleanup_tolerates_down_workers(self):
        master, workers, transport = build_master()
        transport.set_down("hospital_1")
        master.cleanup("j", list(workers))  # must not raise
