"""Worker-node behaviour, especially the privacy rules."""

import pytest

from repro.data.cohorts import CohortSpec, generate_cohort
from repro.engine.table import Schema, Table
from repro.engine.types import SQLType
from repro.errors import FederationError, PrivacyThresholdError
from repro.federation.messages import Message
from repro.federation.worker import Worker
from repro.udfgen import literal, relation, secure_transfer, state, transfer, udf


@udf(data=relation(), return_type=[state(), transfer(), secure_transfer()])
def worker_test_step(data):
    total = float(data.to_matrix().sum())
    return (
        {"kept": "locally"},
        {"total": total},
        {"total": {"data": total, "operation": "sum"}},
    )


def send(worker, kind, **payload):
    return worker.handle(Message("master", worker.node_id, kind, payload))


@pytest.fixture()
def worker():
    w = Worker("hospital_x", privacy_threshold=10)
    w.load_data_model("dementia", generate_cohort(CohortSpec("edsd", 60, seed=5)))
    return w


def run_step(worker, job="job1"):
    return send(
        worker, "run_udf",
        job_id=job,
        udf_name="tests_federation_test_worker_worker_test_step",
        arguments={"data": {"kind": "view",
                            "query": "SELECT lefthippocampus FROM data_dementia"}},
    )["outputs"]


class TestDataLoading:
    def test_datasets_tracked(self, worker):
        assert worker.datasets() == {"dementia": ["edsd"]}
        assert send(worker, "list_datasets")["datasets"] == {"dementia": ["edsd"]}

    def test_requires_dataset_column(self):
        w = Worker("h")
        table = Table.from_rows(Schema([("v", SQLType.INT)]), [(1,)])
        with pytest.raises(FederationError, match="dataset"):
            w.load_data_model("m", table)

    def test_appending_second_dataset(self, worker):
        worker.load_data_model("dementia", generate_cohort(CohortSpec("adni", 30, seed=6)))
        assert worker.datasets()["dementia"] == ["adni", "edsd"]

    def test_ping(self, worker):
        assert send(worker, "ping")["status"] == "up"


class TestRunUDF:
    def test_outputs_typed(self, worker):
        outputs = run_step(worker)
        assert [o["kind"] for o in outputs] == ["state", "transfer", "secure_transfer"]

    def test_privacy_threshold_enforced(self, worker):
        with pytest.raises(PrivacyThresholdError):
            send(
                worker, "run_udf",
                job_id="j",
                udf_name="tests_federation_test_worker_worker_test_step",
                arguments={"data": {"kind": "view",
                                    "query": "SELECT lefthippocampus FROM data_dementia "
                                             "WHERE lefthippocampus > 99"}},
            )

    def test_chained_table_argument_must_be_known(self, worker):
        with pytest.raises(FederationError, match="not a known step output"):
            send(
                worker, "run_udf",
                job_id="j",
                udf_name="tests_federation_test_worker_worker_test_step",
                arguments={"data": {"kind": "table", "name": "data_dementia"}},
            )

    def test_unknown_message_kind(self, worker):
        with pytest.raises(FederationError):
            send(worker, "format_disk")


class TestPrivacyRules:
    def test_state_never_leaves(self, worker):
        state_table = run_step(worker)[0]["table"]
        with pytest.raises(FederationError, match="only aggregates leave"):
            send(worker, "get_transfer", table=state_table)
        with pytest.raises(FederationError, match="denied"):
            send(worker, "fetch_table", table=state_table)

    def test_primary_data_not_fetchable(self, worker):
        with pytest.raises(FederationError, match="not an exposed step output"):
            send(worker, "fetch_table", table="data_dementia")
        with pytest.raises(FederationError):
            send(worker, "get_transfer", table="data_dementia")

    def test_transfer_fetchable(self, worker):
        transfer_table = run_step(worker)[1]["table"]
        blob = send(worker, "get_transfer", table=transfer_table)["transfer"]
        assert "total" in blob

    def test_secure_transfer_needs_smpc(self, worker):
        secure_table = run_step(worker)[2]["table"]
        with pytest.raises(FederationError, match="SMPC"):
            send(worker, "get_transfer", table=secure_table)
        payload = send(worker, "get_secure_payload", table=secure_table)["payload"]
        assert payload["total"]["operation"] == "sum"

    def test_get_secure_payload_rejects_plain_transfer(self, worker):
        transfer_table = run_step(worker)[1]["table"]
        with pytest.raises(FederationError, match="not a secure transfer"):
            send(worker, "get_secure_payload", table=transfer_table)


class TestLifecycle:
    def test_cleanup_drops_job_tables(self, worker):
        outputs = run_step(worker, job="to_clean")
        dropped = send(worker, "cleanup", job_id="to_clean")["dropped"]
        assert {o["table"] for o in outputs} <= set(dropped)
        assert not worker.database.has_table(outputs[0]["table"])

    def test_cleanup_matches_prefixed_steps(self, worker):
        outputs = run_step(worker, job="exp1_s3")
        dropped = send(worker, "cleanup", job_id="exp1")["dropped"]
        assert {o["table"] for o in outputs} <= set(dropped)

    def test_put_transfer_roundtrip(self, worker):
        send(worker, "put_transfer", job_id="j", table="bcast_1", blob='{"k": 1}')
        assert worker.database.scalar("SELECT * FROM bcast_1") == '{"k": 1}'
        with pytest.raises(FederationError, match="already exists"):
            send(worker, "put_transfer", job_id="j", table="bcast_1", blob="{}")

    def test_row_count(self, worker):
        count = send(worker, "row_count",
                     query="SELECT lefthippocampus FROM data_dementia")["rows"]
        assert count == 60
