"""Dataset-aware shipping plans."""

import pytest

from repro.errors import DatasetUnavailableError
from repro.federation.scheduler import plan_shipping


class TestPlanShipping:
    def test_each_dataset_assigned_once(self):
        availability = {"a": ["w1"], "b": ["w2"], "c": ["w1"]}
        plan = plan_shipping(availability, ["a", "b", "c"])
        assigned = [code for codes in plan.assignments.values() for code in codes]
        assert sorted(assigned) == ["a", "b", "c"]

    def test_replicated_dataset_not_double_counted(self):
        availability = {"a": ["w1", "w2"]}
        plan = plan_shipping(availability, ["a"])
        assert sum(len(c) for c in plan.assignments.values()) == 1

    def test_load_balancing(self):
        availability = {
            "a": ["w1"], "b": ["w1"], "c": ["w1", "w2"], "d": ["w1", "w2"],
        }
        plan = plan_shipping(availability, ["a", "b", "c", "d"])
        # the replicated datasets should go to the less-loaded worker
        assert len(plan.assignments["w2"]) == 2

    def test_missing_dataset_raises(self):
        with pytest.raises(DatasetUnavailableError, match="missing"):
            plan_shipping({"a": ["w1"]}, ["a", "missing"])

    def test_subset_of_workers_only(self):
        availability = {"a": ["w1"], "b": ["w1"]}
        plan = plan_shipping(availability, ["a"])
        assert plan.workers == ["w1"]
        assert plan.datasets_for("w1") == ["a"]
        assert plan.datasets_for("w9") == []

    def test_empty_request(self):
        plan = plan_shipping({"a": ["w1"]}, [])
        assert plan.assignments == {}
