"""Dataset-aware shipping plans."""

import pytest

from repro.errors import DatasetUnavailableError
from repro.federation.scheduler import plan_shipping


class TestPlanShipping:
    def test_each_dataset_assigned_once(self):
        availability = {"a": ["w1"], "b": ["w2"], "c": ["w1"]}
        plan = plan_shipping(availability, ["a", "b", "c"])
        assigned = [code for codes in plan.assignments.values() for code in codes]
        assert sorted(assigned) == ["a", "b", "c"]

    def test_replicated_dataset_not_double_counted(self):
        availability = {"a": ["w1", "w2"]}
        plan = plan_shipping(availability, ["a"])
        assert sum(len(c) for c in plan.assignments.values()) == 1

    def test_load_balancing(self):
        availability = {
            "a": ["w1"], "b": ["w1"], "c": ["w1", "w2"], "d": ["w1", "w2"],
        }
        plan = plan_shipping(availability, ["a", "b", "c", "d"])
        # the replicated datasets should go to the less-loaded worker
        assert len(plan.assignments["w2"]) == 2

    def test_missing_dataset_raises(self):
        with pytest.raises(DatasetUnavailableError, match="missing"):
            plan_shipping({"a": ["w1"]}, ["a", "missing"])

    def test_subset_of_workers_only(self):
        availability = {"a": ["w1"], "b": ["w1"]}
        plan = plan_shipping(availability, ["a"])
        assert plan.workers == ["w1"]
        assert plan.datasets_for("w1") == ["a"]
        assert plan.datasets_for("w9") == []

    def test_empty_request(self):
        plan = plan_shipping({"a": ["w1"]}, [])
        assert plan.assignments == {}


class TestDeterminism:
    """Satellite: tie-breaks must not depend on dict insertion order."""

    def test_tie_break_is_insertion_order_independent(self):
        forward = {"a": ["w2", "w1", "w3"], "b": ["w3", "w2", "w1"]}
        backward = {"b": ["w1", "w3", "w2"], "a": ["w3", "w1", "w2"]}
        assert (
            plan_shipping(forward, ["a", "b"]).assignments
            == plan_shipping(backward, ["b", "a"]).assignments
        )

    def test_tie_goes_to_lowest_worker_id(self):
        plan = plan_shipping({"a": ["w9", "w2", "w5"]}, ["a"])
        assert plan.assignments == {"w2": ["a"]}

    def test_load_aware_choice(self):
        availability = {"a": ["w1", "w2"]}
        plan = plan_shipping(availability, ["a"], current_load={"w1": 3})
        assert plan.assignments == {"w2": ["a"]}

    def test_load_aware_tie_still_deterministic(self):
        availability = {"a": ["w1", "w2"]}
        plan = plan_shipping(availability, ["a"], current_load={"w1": 1, "w2": 1})
        assert plan.assignments == {"w1": ["a"]}


class TestWorkerLoad:
    def test_acquire_release_roundtrip(self):
        from repro.federation.scheduler import WorkerLoad

        load = WorkerLoad()
        load.acquire({"w1": ["a", "b"], "w2": ["c"]})
        assert load.snapshot() == {"w1": 2, "w2": 1}
        load.acquire({"w1": ["d"]})
        assert load.snapshot() == {"w1": 3, "w2": 1}
        load.release({"w1": ["a", "b"], "w2": ["c"]})
        assert load.snapshot() == {"w1": 1}
        load.release({"w1": ["d"]})
        assert load.snapshot() == {}

    def test_release_never_goes_negative(self):
        from repro.federation.scheduler import WorkerLoad

        load = WorkerLoad()
        load.release({"w1": ["a"]})
        assert load.snapshot() == {}


class TestExactlyOnceProperty:
    """Satellite: replicated datasets are counted exactly once under the
    load-aware planner, for any availability map and any in-flight load."""

    def test_property_exactly_once_under_load(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        workers = st.sampled_from([f"w{i}" for i in range(6)])
        codes = st.sampled_from([f"ds{i}" for i in range(8)])
        availability_st = st.dictionaries(
            codes, st.lists(workers, min_size=1, max_size=6, unique=True),
            min_size=1, max_size=8,
        )
        load_st = st.dictionaries(
            workers, st.integers(min_value=0, max_value=20), max_size=6
        )

        @settings(max_examples=200, deadline=None)
        @given(availability=availability_st, load=load_st)
        def check(availability, load):
            requested = sorted(availability)
            plan = plan_shipping(availability, requested, current_load=load)
            assigned = [c for codes in plan.assignments.values() for c in codes]
            # exactly once: no dataset dropped, none double-counted
            assert sorted(assigned) == requested
            # every assignment respects availability
            for worker, worker_codes in plan.assignments.items():
                for code in worker_codes:
                    assert worker in availability[code]

        check()
