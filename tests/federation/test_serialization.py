"""Table wire serialization."""

import math

from repro.engine.table import Schema, Table
from repro.engine.types import SQLType
from repro.federation.serialization import (
    COLUMNAR_FORMAT,
    payload_elements,
    table_from_payload,
    table_to_payload,
)

MIXED_SCHEMA = Schema([
    ("i", SQLType.INT), ("r", SQLType.REAL),
    ("s", SQLType.VARCHAR), ("b", SQLType.BOOL),
])


def _mixed_table() -> Table:
    return Table.from_rows(MIXED_SCHEMA, [
        (1, 1.5, "x", True),
        (None, None, None, None),
        (-7, math.pi, "", False),
    ])


class TestRoundtrip:
    def test_all_types_with_nulls(self):
        table = _mixed_table()
        restored = table_from_payload(table_to_payload(table))
        assert restored.schema == table.schema
        assert restored.to_rows() == table.to_rows()

    def test_empty_table(self):
        schema = Schema([("v", SQLType.REAL)])
        restored = table_from_payload(table_to_payload(Table.empty(schema)))
        assert restored.num_rows == 0
        assert restored.schema == schema


class TestColumnarFormat:
    def test_payload_shape(self):
        payload = table_to_payload(_mixed_table())
        assert payload["format"] == COLUMNAR_FORMAT
        assert payload["columns"] == [
            ("i", "INT"), ("r", "REAL"), ("s", "VARCHAR"), ("b", "BOOL")
        ]
        assert set(payload["values"]) == set(payload["nulls"]) == {"i", "r", "s", "b"}
        assert payload["values"]["i"] == [1, 0, -7]  # placeholder under the mask
        assert payload["nulls"]["i"] == [False, True, False]
        # Plain JSON-able python scalars only — no numpy types on the wire.
        assert all(type(v) is int for v in payload["values"]["i"])
        assert all(type(v) is float for v in payload["values"]["r"])

    def test_null_masks_survive_round_trip(self):
        restored = table_from_payload(table_to_payload(_mixed_table()))
        assert restored.column("s").to_list() == ["x", None, ""]
        assert restored.column("b").null_count == 1

    def test_legacy_row_payload_still_decodes(self):
        table = _mixed_table()
        legacy = {
            "columns": [(spec.name, spec.sql_type.value) for spec in table.schema],
            "rows": table.to_rows(),
        }
        restored = table_from_payload(legacy)
        assert restored.schema == table.schema
        assert restored.to_rows() == table.to_rows()


class TestPayloadElements:
    def test_counts_columnar_cells(self):
        assert payload_elements(table_to_payload(_mixed_table())) == 12

    def test_counts_legacy_cells(self):
        table = _mixed_table()
        legacy = {
            "columns": [(spec.name, spec.sql_type.value) for spec in table.schema],
            "rows": table.to_rows(),
        }
        assert payload_elements(legacy) == 12

    def test_counts_nested_and_ignores_non_tables(self):
        wrapped = {"table": table_to_payload(_mixed_table()), "job_id": "j1"}
        assert payload_elements(wrapped) == 12
        assert payload_elements({"status": "ok"}) == 0
        assert payload_elements(None) == 0
        assert payload_elements([1, 2, 3]) == 0
