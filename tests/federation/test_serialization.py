"""Table wire serialization."""

import math

import pytest

from repro.engine.table import Schema, Table
from repro.engine.types import SQLType
from repro.errors import FederationError
from repro.federation.serialization import (
    COLUMNAR_FORMAT,
    payload_elements,
    table_from_payload,
    table_to_payload,
)

MIXED_SCHEMA = Schema([
    ("i", SQLType.INT), ("r", SQLType.REAL),
    ("s", SQLType.VARCHAR), ("b", SQLType.BOOL),
])


def _mixed_table() -> Table:
    return Table.from_rows(MIXED_SCHEMA, [
        (1, 1.5, "x", True),
        (None, None, None, None),
        (-7, math.pi, "", False),
    ])


class TestRoundtrip:
    def test_all_types_with_nulls(self):
        table = _mixed_table()
        restored = table_from_payload(table_to_payload(table))
        assert restored.schema == table.schema
        assert restored.to_rows() == table.to_rows()

    def test_empty_table(self):
        schema = Schema([("v", SQLType.REAL)])
        restored = table_from_payload(table_to_payload(Table.empty(schema)))
        assert restored.num_rows == 0
        assert restored.schema == schema


class TestColumnarFormat:
    def test_payload_shape(self):
        payload = table_to_payload(_mixed_table())
        assert payload["format"] == COLUMNAR_FORMAT
        assert payload["columns"] == [
            ("i", "INT"), ("r", "REAL"), ("s", "VARCHAR"), ("b", "BOOL")
        ]
        assert set(payload["values"]) == set(payload["nulls"]) == {"i", "r", "s", "b"}
        assert payload["values"]["i"] == [1, 0, -7]  # placeholder under the mask
        assert payload["nulls"]["i"] == [False, True, False]
        # Plain JSON-able python scalars only — no numpy types on the wire.
        assert all(type(v) is int for v in payload["values"]["i"])
        assert all(type(v) is float for v in payload["values"]["r"])

    def test_null_masks_survive_round_trip(self):
        restored = table_from_payload(table_to_payload(_mixed_table()))
        assert restored.column("s").to_list() == ["x", None, ""]
        assert restored.column("b").null_count == 1

    def test_legacy_row_payload_still_decodes(self):
        table = _mixed_table()
        legacy = {
            "columns": [(spec.name, spec.sql_type.value) for spec in table.schema],
            "rows": table.to_rows(),
        }
        restored = table_from_payload(legacy)
        assert restored.schema == table.schema
        assert restored.to_rows() == table.to_rows()


class TestAdversarialEdges:
    """Payload shapes a hostile or future peer could put on the wire."""

    def test_empty_mixed_table_round_trip(self):
        restored = table_from_payload(table_to_payload(Table.empty(MIXED_SCHEMA)))
        assert restored.num_rows == 0
        assert restored.schema == MIXED_SCHEMA
        assert payload_elements(table_to_payload(restored)) == 0

    def test_all_null_columns_round_trip(self):
        table = Table.from_rows(MIXED_SCHEMA, [
            (None, None, None, None),
            (None, None, None, None),
        ])
        restored = table_from_payload(table_to_payload(table))
        for name in ("i", "r", "s", "b"):
            assert restored.column(name).to_list() == [None, None]
            assert restored.column(name).null_count == 2

    def test_nan_normalizes_to_null_and_round_trips(self):
        # The engine canonicalizes NaN to NULL at ingest (complete-case
        # filtering must not see NaN); the wire must preserve that form and
        # never resurrect a NaN out of a masked slot.
        schema = Schema([("v", SQLType.REAL)])
        table = Table.from_rows(schema, [(float("nan"),), (None,), (1.0,)])
        assert table.column("v").null_count == 2
        payload = table_to_payload(table)
        assert not any(math.isnan(v) for v in payload["values"]["v"])
        restored = table_from_payload(payload)
        assert restored.column("v").to_list() == [None, None, 1.0]

    def test_smuggled_nan_under_clear_mask_is_normalized(self):
        # An adversarial payload carrying raw NaN with nulls=False must not
        # leak NaN past the mask: decode folds it into NULL, same as ingest.
        schema = Schema([("v", SQLType.REAL)])
        payload = table_to_payload(Table.from_rows(schema, [(1.0,), (2.0,)]))
        payload["values"]["v"] = [float("nan"), 2.0]
        restored = table_from_payload(payload)
        assert restored.column("v").to_list() == [None, 2.0]
        assert restored.column("v").null_count == 1

    def test_unknown_format_version_is_rejected(self):
        payload = table_to_payload(_mixed_table())
        payload["format"] = "columnar-v99"
        with pytest.raises(FederationError, match="columnar-v99"):
            table_from_payload(payload)

    def test_unknown_format_not_silently_decoded_as_legacy(self):
        # Even a payload that *also* carries legacy "rows" must be rejected
        # once it declares a format this node does not understand.
        table = _mixed_table()
        payload = {
            "format": "columnar-v99",
            "columns": [(spec.name, spec.sql_type.value) for spec in table.schema],
            "rows": table.to_rows(),
        }
        with pytest.raises(FederationError, match="unknown table payload format"):
            table_from_payload(payload)


class TestPayloadElements:
    def test_counts_columnar_cells(self):
        assert payload_elements(table_to_payload(_mixed_table())) == 12

    def test_counts_legacy_cells(self):
        table = _mixed_table()
        legacy = {
            "columns": [(spec.name, spec.sql_type.value) for spec in table.schema],
            "rows": table.to_rows(),
        }
        assert payload_elements(legacy) == 12

    def test_counts_nested_and_ignores_non_tables(self):
        wrapped = {"table": table_to_payload(_mixed_table()), "job_id": "j1"}
        assert payload_elements(wrapped) == 12
        assert payload_elements({"status": "ok"}) == 0
        assert payload_elements(None) == 0
        assert payload_elements([1, 2, 3]) == 0
