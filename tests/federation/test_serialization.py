"""Table wire serialization."""

from repro.engine.table import Schema, Table
from repro.engine.types import SQLType
from repro.federation.serialization import table_from_payload, table_to_payload


class TestRoundtrip:
    def test_all_types_with_nulls(self):
        schema = Schema([
            ("i", SQLType.INT), ("r", SQLType.REAL),
            ("s", SQLType.VARCHAR), ("b", SQLType.BOOL),
        ])
        table = Table.from_rows(schema, [
            (1, 1.5, "x", True),
            (None, None, None, None),
        ])
        restored = table_from_payload(table_to_payload(table))
        assert restored.schema == table.schema
        assert restored.to_rows() == table.to_rows()

    def test_empty_table(self):
        schema = Schema([("v", SQLType.REAL)])
        restored = table_from_payload(table_to_payload(Table.empty(schema)))
        assert restored.num_rows == 0
        assert restored.schema == schema
