"""Simulated transport: metering, latency model, failure injection."""

import pytest

from repro.errors import FederationError, NodeUnavailableError
from repro.federation.transport import Transport


def echo_handler(message):
    return {"echo": dict(message.payload), "kind": message.kind}


@pytest.fixture()
def transport():
    t = Transport(latency_seconds=0.001, bandwidth_bytes_per_second=1e6)
    t.register("node_a", echo_handler)
    t.register("node_b", echo_handler)
    return t


class TestDelivery:
    def test_roundtrip(self, transport):
        response = transport.send("node_a", "node_b", "ping", {"x": 1})
        assert response["echo"] == {"x": 1}
        assert response["kind"] == "ping"

    def test_unknown_receiver(self, transport):
        with pytest.raises(FederationError):
            transport.send("node_a", "ghost", "ping")

    def test_duplicate_registration(self, transport):
        with pytest.raises(FederationError):
            transport.register("node_a", echo_handler)

    def test_nodes_listing(self, transport):
        assert transport.nodes() == ["node_a", "node_b"]

    def test_none_response_becomes_empty_dict(self, transport):
        transport.register("quiet", lambda m: None)
        assert transport.send("node_a", "quiet", "ping") == {}


class TestMetering:
    def test_messages_and_bytes_counted(self, transport):
        before = transport.stats.messages
        transport.send("node_a", "node_b", "ping", {"payload": "x" * 100})
        # request + response both metered
        assert transport.stats.messages == before + 2
        assert transport.stats.bytes_sent > 100

    def test_simulated_time_includes_latency(self, transport):
        transport.send("node_a", "node_b", "ping")
        assert transport.stats.simulated_seconds >= 2 * 0.001

    def test_per_link_stats(self, transport):
        transport.send("node_a", "node_b", "ping")
        assert transport.link_stats[("node_a", "node_b")].messages == 1
        assert transport.link_stats[("node_b", "node_a")].messages == 1

    def test_reset(self, transport):
        transport.send("node_a", "node_b", "ping")
        transport.stats.reset()
        assert transport.stats.messages == 0


class TestFailureInjection:
    def test_down_node_unreachable(self, transport):
        transport.set_down("node_b")
        with pytest.raises(NodeUnavailableError):
            transport.send("node_a", "node_b", "ping")

    def test_down_sender_also_fails(self, transport):
        transport.set_down("node_a")
        with pytest.raises(NodeUnavailableError):
            transport.send("node_a", "node_b", "ping")

    def test_recovery(self, transport):
        transport.set_down("node_b")
        transport.set_down("node_b", False)
        assert transport.send("node_a", "node_b", "ping")["kind"] == "ping"

    def test_drop_probability(self):
        t = Transport(drop_probability=1.0, seed=1)
        t.register("a", echo_handler)
        t.register("b", echo_handler)
        with pytest.raises(NodeUnavailableError, match="dropped"):
            t.send("a", "b", "ping")

    def test_drop_probability_validated(self):
        with pytest.raises(FederationError):
            Transport(drop_probability=1.5)
