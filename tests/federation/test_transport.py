"""Simulated transport: metering, latency model, failure injection."""

import pytest

from repro.errors import FederationError, NodeUnavailableError
from repro.federation.transport import Transport


def echo_handler(message):
    return {"echo": dict(message.payload), "kind": message.kind}


@pytest.fixture()
def transport():
    t = Transport(latency_seconds=0.001, bandwidth_bytes_per_second=1e6)
    t.register("node_a", echo_handler)
    t.register("node_b", echo_handler)
    return t


class TestDelivery:
    def test_roundtrip(self, transport):
        response = transport.send("node_a", "node_b", "ping", {"x": 1})
        assert response["echo"] == {"x": 1}
        assert response["kind"] == "ping"

    def test_unknown_receiver(self, transport):
        with pytest.raises(FederationError):
            transport.send("node_a", "ghost", "ping")

    def test_duplicate_registration(self, transport):
        with pytest.raises(FederationError):
            transport.register("node_a", echo_handler)

    def test_nodes_listing(self, transport):
        assert transport.nodes() == ["node_a", "node_b"]

    def test_none_response_becomes_empty_dict(self, transport):
        transport.register("quiet", lambda m: None)
        assert transport.send("node_a", "quiet", "ping") == {}


class TestMetering:
    def test_messages_and_bytes_counted(self, transport):
        before = transport.stats.messages
        transport.send("node_a", "node_b", "ping", {"payload": "x" * 100})
        # request + response both metered
        assert transport.stats.messages == before + 2
        assert transport.stats.bytes_sent > 100

    def test_simulated_time_includes_latency(self, transport):
        transport.send("node_a", "node_b", "ping")
        assert transport.stats.simulated_seconds >= 2 * 0.001

    def test_per_link_stats(self, transport):
        transport.send("node_a", "node_b", "ping")
        assert transport.link_stats[("node_a", "node_b")].messages == 1
        assert transport.link_stats[("node_b", "node_a")].messages == 1

    def test_reset(self, transport):
        transport.send("node_a", "node_b", "ping")
        transport.stats.reset()
        assert transport.stats.messages == 0

    def test_payload_elements_metered_for_table_payloads(self, transport):
        from repro.engine.table import Schema, Table
        from repro.engine.types import SQLType
        from repro.federation.serialization import table_to_payload

        table = Table.from_rows(
            Schema([("a", SQLType.INT), ("b", SQLType.REAL)]),
            [(1, 2.0), (3, 4.0), (None, 6.0)],
        )
        transport.send("node_a", "node_b", "push", {"table": table_to_payload(table)})
        # The request carries 6 cells; the echoed response carries them back.
        assert transport.stats.payload_elements == 12
        assert transport.link_stats[("node_a", "node_b")].payload_elements == 6
        transport.send("node_a", "node_b", "ping", {"x": 1})
        assert transport.stats.payload_elements == 12  # non-tables count zero


class TestFailureInjection:
    def test_down_node_unreachable(self, transport):
        transport.set_down("node_b")
        with pytest.raises(NodeUnavailableError):
            transport.send("node_a", "node_b", "ping")

    def test_down_sender_also_fails(self, transport):
        transport.set_down("node_a")
        with pytest.raises(NodeUnavailableError):
            transport.send("node_a", "node_b", "ping")

    def test_recovery(self, transport):
        transport.set_down("node_b")
        transport.set_down("node_b", False)
        assert transport.send("node_a", "node_b", "ping")["kind"] == "ping"

    def test_drop_probability(self):
        t = Transport(drop_probability=1.0, seed=1)
        t.register("a", echo_handler)
        t.register("b", echo_handler)
        with pytest.raises(NodeUnavailableError, match="dropped"):
            t.send("a", "b", "ping")

    def test_drop_probability_validated(self):
        with pytest.raises(FederationError):
            Transport(drop_probability=1.5)


def make_transport(n=4, **kwargs):
    t = Transport(**kwargs)
    for i in range(n):
        t.register(f"w{i}", echo_handler)
    return t


class TestSendMany:
    def test_results_in_request_order(self):
        t = make_transport(4)
        requests = [(f"w{i}", "ping", {"i": i}) for i in range(4)]
        results = t.send_many("w0", requests)
        assert [r["echo"]["i"] for r in results] == [0, 1, 2, 3]

    def test_empty_request_list(self):
        t = make_transport(2)
        assert t.send_many("w0", []) == []

    def test_error_policy_return_keeps_slots(self):
        t = make_transport(3)
        t.set_down("w1")
        results = t.send_many(
            "w0", [("w1", "ping", None), ("w2", "ping", None)], on_error="return"
        )
        assert isinstance(results[0], NodeUnavailableError)
        assert results[1]["kind"] == "ping"

    def test_error_policy_raise_first_in_request_order(self):
        t = make_transport(4)
        t.set_down("w2")
        with pytest.raises(FederationError, match="ghost"):
            t.send_many(
                "w0",
                [("ghost", "ping", None), ("w2", "ping", None), ("w3", "ping", None)],
            )

    def test_unknown_policy_rejected(self):
        t = make_transport(2)
        with pytest.raises(FederationError, match="policy"):
            t.send_many("w0", [("w1", "ping", None)], on_error="bogus")

    def test_parallel_clock_charges_max_not_sum(self):
        seq = make_transport(4, latency_seconds=0.01, max_workers=1)
        par = make_transport(4, latency_seconds=0.01, max_workers=4)
        requests = [(f"w{i}", "ping", {"x": 1}) for i in range(4)]
        seq.send_many("w0", requests)
        par.send_many("w0", requests)
        # Sequential sends accumulate ~4x the simulated time of the
        # overlapping parallel group (equal payloads -> equal per-send cost).
        assert seq.stats.simulated_seconds == pytest.approx(
            4 * par.stats.simulated_seconds
        )

    def test_link_stats_always_sum(self):
        par = make_transport(4, latency_seconds=0.01, max_workers=4)
        par.send_many("w0", [("w1", "ping", None)] * 3)
        assert par.link_stats[("w0", "w1")].messages == 3
        assert par.link_stats[("w1", "w0")].messages == 3
        link_total = par.link_stats[("w0", "w1")].simulated_seconds
        assert link_total == pytest.approx(3 * (0.01 + par.link_stats[("w0", "w1")].bytes_sent / 3 / par.bandwidth), rel=0.5)


class TestBroadcast:
    def test_responses_keyed_by_receiver(self):
        t = make_transport(4)
        responses = t.broadcast("w0", ["w1", "w2", "w3"], "ping", {"q": 1})
        assert sorted(responses) == ["w1", "w2", "w3"]
        assert all(r["echo"] == {"q": 1} for r in responses.values())

    def test_skip_policy_drops_down_nodes(self):
        t = make_transport(4)
        t.set_down("w2")
        responses = t.broadcast("w0", ["w1", "w2", "w3"], "ping", on_error="skip")
        assert sorted(responses) == ["w1", "w3"]

    def test_raise_policy_propagates(self):
        t = make_transport(3)
        t.set_down("w1")
        with pytest.raises(NodeUnavailableError):
            t.broadcast("w0", ["w1", "w2"], "ping")

    def test_skip_only_swallows_unavailability(self):
        t = make_transport(2)

        def angry(message):
            raise ValueError("handler exploded")

        t.register("angry", angry)
        with pytest.raises(Exception, match="handler exploded"):
            t.broadcast("w0", ["w1", "angry"], "ping", on_error="skip")


class TestDeterministicDrops:
    def test_seeded_drops_identical_across_runs(self):
        outcomes = []
        for _ in range(2):
            t = make_transport(6, drop_probability=0.5, seed=77, max_workers=4)
            results = t.send_many(
                "w0",
                [(f"w{i}", "ping", {"i": i}) for i in range(1, 6)] * 4,
                on_error="return",
            )
            outcomes.append([isinstance(r, NodeUnavailableError) for r in results])
        assert outcomes[0] == outcomes[1]
        assert any(outcomes[0]) and not all(outcomes[0])

    def test_sequential_and_parallel_draw_same_drops(self):
        # Drop decisions are drawn in request order before dispatch, so the
        # fan-out width cannot change which messages fail.
        patterns = []
        for width in (1, 4):
            t = make_transport(6, drop_probability=0.5, seed=123, max_workers=width)
            results = t.send_many(
                "w0",
                [(f"w{i}", "ping", None) for i in range(1, 6)] * 4,
                on_error="return",
            )
            patterns.append([isinstance(r, NodeUnavailableError) for r in results])
        assert patterns[0] == patterns[1]


class TestConcurrentIntegrity:
    def test_set_down_during_broadcast_never_deadlocks(self):
        import threading as _threading

        t = make_transport(6, max_workers=4)
        stop = _threading.Event()

        def flipper():
            while not stop.is_set():
                t.set_down("w3")
                t.set_down("w3", False)

        flip = _threading.Thread(target=flipper)
        flip.start()
        try:
            for _ in range(50):
                responses = t.broadcast(
                    "w0", [f"w{i}" for i in range(1, 6)], "ping", on_error="skip"
                )
                # Nodes never marked down always answer.
                assert {"w1", "w2", "w4", "w5"} <= set(responses)
        finally:
            stop.set()
            flip.join(timeout=10)
        assert not flip.is_alive()

    def test_stats_consistent_under_concurrent_hammering(self):
        import threading as _threading

        t = make_transport(4, max_workers=4)
        n_threads, n_sends = 8, 25

        def hammer(index):
            for j in range(n_sends):
                t.send_many(
                    "w0",
                    [(f"w{1 + (index + j + k) % 3}", "ping", {"j": j}) for k in range(3)],
                )

        threads = [_threading.Thread(target=hammer, args=(i,)) for i in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        snapshot = t.snapshot()
        expected = n_threads * n_sends * 3 * 2  # request + response per send
        assert snapshot.messages == expected
        assert sum(s.messages for s in t.link_stats.values()) == expected
        assert sum(s.bytes_sent for s in t.link_stats.values()) == snapshot.bytes_sent


class TestParallelismKnob:
    def test_default_scales_with_nodes(self):
        assert make_transport(3).parallelism == 3
        assert make_transport(40).parallelism == 32

    def test_explicit_max_workers_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_FEDERATION_PARALLELISM", "8")
        assert make_transport(4, max_workers=2).parallelism == 2

    def test_env_var_overrides_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_FEDERATION_PARALLELISM", "1")
        t = make_transport(4)
        assert t.parallelism == 1

    def test_env_var_validated(self, monkeypatch):
        monkeypatch.setenv("REPRO_FEDERATION_PARALLELISM", "soon")
        with pytest.raises(FederationError, match="integer"):
            make_transport(4).parallelism

    def test_invalid_max_workers_rejected(self):
        with pytest.raises(FederationError):
            Transport(max_workers=0)

    def test_parallelism_one_matches_sequential_results(self):
        seq = make_transport(5, max_workers=1)
        par = make_transport(5, max_workers=5)
        requests = [(f"w{i}", "ping", {"i": i}) for i in range(5)]
        assert seq.send_many("w0", requests) == par.send_many("w0", requests)
        assert seq.snapshot().messages == par.snapshot().messages
        assert seq.snapshot().bytes_sent == par.snapshot().bytes_sent


class TestSendManySkipReportsFailures:
    def test_skip_returns_which_receivers_failed(self):
        # Regression: on_error="skip" used to lose the failed receivers, so
        # callers could not evict the dead nodes.
        t = make_transport(5)
        t.set_down("w2")
        t.set_down("w4")
        results = t.send_many(
            "w0",
            [(f"w{i}", "ping", {"i": i}) for i in range(1, 5)],
            on_error="skip",
        )
        assert [r["echo"]["i"] for r in results] == [1, 3]
        assert sorted(results.failed) == ["w2", "w4"]
        assert all(
            isinstance(exc, NodeUnavailableError) for exc in results.failed.values()
        )

    def test_skip_failures_counted_in_stats(self):
        t = make_transport(3)
        t.set_down("w1")
        t.send_many("w0", [("w1", "ping", None), ("w2", "ping", None)], on_error="skip")
        assert t.snapshot().failed_sends == 1

    def test_broadcast_skip_reports_failed_receivers(self):
        t = make_transport(4)
        t.set_down("w2")
        responses = t.broadcast("w0", ["w1", "w2", "w3"], "ping", on_error="skip")
        assert sorted(responses) == ["w1", "w3"]
        assert list(responses.failed) == ["w2"]

    def test_skip_still_raises_permanent_errors(self):
        t = make_transport(2)

        def angry(message):
            raise ValueError("handler exploded")

        t.register("angry", angry)
        with pytest.raises(ValueError, match="handler exploded"):
            t.send_many("w0", [("w1", "ping", None), ("angry", "ping", None)], on_error="skip")

    def test_skip_empty_requests(self):
        t = make_transport(2)
        result = t.send_many("w0", [], on_error="skip")
        assert result == [] and result.failed == {}


class TestRetries:
    def test_retry_recovers_from_transient_drops(self):
        from repro.federation.policy import RetryPolicy

        t = make_transport(
            4, drop_probability=0.5, seed=42, retry=RetryPolicy(max_attempts=6)
        )
        results = t.send_many(
            "w0", [(f"w{i}", "ping", {"i": i}) for i in range(1, 4)] * 5
        )
        assert len(results) == 15  # every send eventually delivered
        assert t.snapshot().retries > 0
        assert t.snapshot().failed_sends == 0

    def test_down_node_exhausts_retries(self):
        from repro.federation.policy import RetryPolicy

        t = make_transport(3, retry=RetryPolicy(max_attempts=3))
        t.set_down("w1")
        with pytest.raises(NodeUnavailableError):
            t.send("w0", "w1", "ping")
        snapshot = t.snapshot()
        assert snapshot.retries == 2  # two re-attempts after the first try
        assert snapshot.failed_sends == 1

    def test_permanent_errors_are_not_retried(self):
        from repro.federation.policy import RetryPolicy

        t = make_transport(2, retry=RetryPolicy(max_attempts=5))
        with pytest.raises(FederationError, match="unknown node"):
            t.send("w0", "ghost", "ping")
        assert t.snapshot().retries == 0

    def test_deadline_raises_timeout(self):
        from repro.errors import FederationTimeoutError
        from repro.federation.policy import RetryPolicy

        t = make_transport(
            2,
            retry=RetryPolicy(
                max_attempts=10, base_delay_seconds=0.2, deadline_seconds=0.5
            ),
        )
        t.set_down("w1")
        with pytest.raises(FederationTimeoutError, match="deadline"):
            t.send("w0", "w1", "ping")

    def test_timeout_is_unavailability_but_not_transient(self):
        from repro.errors import FederationTimeoutError, is_transient

        timeout = FederationTimeoutError("too slow")
        assert isinstance(timeout, NodeUnavailableError)
        assert not is_transient(timeout)
        assert is_transient(NodeUnavailableError("down"))
        assert not is_transient(ValueError("bug"))

    def test_backoff_delays_charge_the_simulated_clock(self):
        from repro.federation.policy import RetryPolicy

        t = make_transport(
            2,
            latency_seconds=0.001,
            retry=RetryPolicy(max_attempts=3, base_delay_seconds=0.1, jitter=0.0),
        )
        t.set_down("w1")
        with pytest.raises(NodeUnavailableError):
            t.send("w0", "w1", "ping")
        # 3 failed attempts x latency + backoffs of 0.1 and 0.2 seconds.
        assert t.snapshot().simulated_seconds == pytest.approx(0.003 + 0.1 + 0.2)

    def test_retry_policy_validation(self):
        from repro.federation.policy import RetryPolicy

        with pytest.raises(FederationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(FederationError):
            RetryPolicy(jitter=2.0)
        with pytest.raises(FederationError):
            RetryPolicy(deadline_seconds=0.0)


class TestSnapshotIsolation:
    """snapshot()/link_snapshot() hand out copies, never the live counters."""

    def test_snapshot_is_detached_from_live_stats(self):
        t = make_transport(2)
        t.send("w0", "w1", "ping")
        snap = t.snapshot()
        before = (snap.messages, snap.bytes_sent, snap.simulated_seconds)

        snap.messages = 999_999
        snap.reset()
        assert t.stats.messages > 0, "mutating a snapshot must not touch live stats"

        t.send("w0", "w1", "ping")
        assert t.stats.messages == before[0] + 2
        # The first snapshot is frozen at the moment it was taken.
        assert snap.messages == 0
        assert t.snapshot().messages == before[0] + 2

    def test_link_snapshot_is_deep_copied(self):
        t = make_transport(2)
        t.send("w0", "w1", "ping")
        links = t.link_snapshot()
        live_messages = t.link_stats[("w0", "w1")].messages

        links[("w0", "w1")].messages = 999_999
        assert t.link_stats[("w0", "w1")].messages == live_messages

        # Each call yields fresh, mutually independent copies.
        again = t.link_snapshot()
        assert again[("w0", "w1")].messages == live_messages
        assert again[("w0", "w1")] is not links[("w0", "w1")]
