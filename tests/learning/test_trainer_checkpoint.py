"""Round-granular training checkpoints: stop, resume, byte-identity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.durability.checkpoint import CheckpointStore
from repro.learning.trainer import FederatedTrainer, TrainingConfig


def make_config(**overrides):
    base = dict(
        data_model="dementia",
        datasets=("edsd", "adni", "ppmi"),
        response="converted_ad",
        covariates=("lefthippocampus", "p_tau"),
        mode="newton",
        rounds=5,
        evaluate_every=1,
        seed=3,
    )
    base.update(overrides)
    return TrainingConfig(**base)


class TestStopAndResume:
    def test_resume_is_byte_identical_to_uninterrupted(self, fresh_federation, tmp_path):
        trainer = FederatedTrainer(fresh_federation)
        config = make_config()
        baseline = trainer.train(config)

        store = CheckpointStore(str(tmp_path))
        partial = trainer.train(config, checkpoints=store, stop_after_round=2)
        assert len(partial.history) < len(baseline.history)
        (ckpt_id,) = store.list_ids()
        assert store.load(ckpt_id).state["round"] == 2

        resumed = trainer.train(config, checkpoints=store)
        assert resumed.weights.tolist() == baseline.weights.tolist()
        assert resumed.history == baseline.history
        assert resumed.final_accuracy == baseline.final_accuracy

    def test_checkpoint_deleted_on_completion(self, fresh_federation, tmp_path):
        trainer = FederatedTrainer(fresh_federation)
        store = CheckpointStore(str(tmp_path))
        trainer.train(make_config(rounds=2), checkpoints=store)
        assert store.list_ids() == []

    def test_fingerprint_mismatch_restarts_from_scratch(self, fresh_federation, tmp_path):
        trainer = FederatedTrainer(fresh_federation)
        store = CheckpointStore(str(tmp_path))
        trainer.train(
            make_config(), checkpoints=store, checkpoint_id="shared", stop_after_round=2
        )
        # Same id, different config: the stale checkpoint must not be restored.
        changed = make_config(learning_rate=0.9)
        result = trainer.train(changed, checkpoints=store, checkpoint_id="shared")
        assert len(result.history) == changed.rounds

    def test_dp_resume_accounts_completed_rounds(self, fresh_federation, tmp_path):
        trainer = FederatedTrainer(fresh_federation)
        store = CheckpointStore(str(tmp_path))
        config = make_config(mode="dp", epsilon=8.0, delta=1e-5, rounds=4)
        trainer.train(config, checkpoints=store, stop_after_round=2)
        resumed = trainer.train(config, checkpoints=store)
        # The resumed run still spends exactly the full budget — the two
        # completed rounds were re-recorded against the fresh accountant.
        assert resumed.epsilon_spent == pytest.approx(8.0)

    def test_training_without_store_unchanged(self, fresh_federation):
        trainer = FederatedTrainer(fresh_federation)
        config = make_config(rounds=3)
        a = trainer.train(config)
        b = trainer.train(config)
        assert np.array_equal(a.weights, b.weights)
