"""Gradient-trained model primitives."""

import numpy as np
import pytest

from repro.errors import AlgorithmError
from repro.learning.aggregation import fedavg, fedsgd
from repro.learning.models import LinearModel, LogisticModel


class TestLogisticModel:
    def test_zero_weights_predict_half(self):
        model = LogisticModel.zeros(2)
        X = np.array([[1.0, 5.0]])
        assert model.predict_probability(X)[0] == pytest.approx(0.5)

    def test_gradient_descends_loss(self):
        rng = np.random.default_rng(0)
        X = np.column_stack([np.ones(200), rng.normal(size=200)])
        y = (X[:, 1] > 0).astype(float)
        model = LogisticModel.zeros(2)
        losses = []
        for _ in range(50):
            losses.append(model.loss(X, y))
            model.weights -= 1.0 * model.gradient(X, y)
        assert losses[-1] < losses[0]
        assert (model.predict(X) == y).mean() > 0.9

    def test_gradient_zero_rows(self):
        model = LogisticModel.zeros(1)
        with pytest.raises(AlgorithmError):
            model.gradient(np.empty((0, 1)), np.empty(0))


class TestLinearModel:
    def test_gradient_descends_mse(self):
        rng = np.random.default_rng(0)
        X = np.column_stack([np.ones(100), rng.normal(size=100)])
        y = 2.0 + 3.0 * X[:, 1]
        model = LinearModel.zeros(2)
        for _ in range(200):
            model.weights -= 0.1 * model.gradient(X, y)
        assert model.weights == pytest.approx([2.0, 3.0], abs=1e-3)
        assert model.loss(X, y) < 1e-5


class TestAggregation:
    def test_fedavg_weighted(self):
        updates = [np.array([1.0, 0.0]), np.array([0.0, 1.0])]
        combined = fedavg(updates, [3.0, 1.0])
        assert combined == pytest.approx([0.75, 0.25])

    def test_fedsgd_unweighted(self):
        combined = fedsgd([np.array([2.0]), np.array([4.0])])
        assert combined == pytest.approx([3.0])

    def test_errors(self):
        with pytest.raises(AlgorithmError):
            fedavg([], [])
        with pytest.raises(AlgorithmError):
            fedavg([np.zeros(1)], [1.0, 2.0])
        with pytest.raises(AlgorithmError):
            fedavg([np.zeros(1)], [0.0])
        with pytest.raises(AlgorithmError):
            fedsgd([])
