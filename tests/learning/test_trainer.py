"""The federated training loop: none / DP / SA paths."""

import numpy as np
import pytest

from repro.errors import AlgorithmError, PrivacyError
from repro.learning.trainer import FederatedTrainer, TrainingConfig


def make_config(**overrides):
    base = dict(
        data_model="dementia",
        datasets=("edsd", "adni", "ppmi"),
        response="converted_ad",
        covariates=("lefthippocampus", "p_tau"),
        rounds=8,
        learning_rate=0.8,
        clip_norm=1.0,
        evaluate_every=4,
        seed=3,
    )
    base.update(overrides)
    return TrainingConfig(**base)


class TestConfigValidation:
    def test_unknown_mode(self):
        with pytest.raises(AlgorithmError):
            make_config(mode="quantum")

    def test_rounds_positive(self):
        with pytest.raises(AlgorithmError):
            make_config(rounds=0)

    def test_epsilon_positive_when_private(self):
        with pytest.raises(PrivacyError):
            make_config(mode="dp", epsilon=0.0)


class TestCleanTraining:
    def test_loss_decreases(self, fresh_federation):
        trainer = FederatedTrainer(fresh_federation)
        result = trainer.train(make_config(mode="none", rounds=12, evaluate_every=3))
        losses = [h["loss"] for h in result.history]
        assert losses[-1] < losses[0]
        assert result.final_accuracy > 0.6
        assert result.epsilon_spent == 0.0
        assert result.mode == "none"

    def test_design_names(self, fresh_federation):
        trainer = FederatedTrainer(fresh_federation)
        result = trainer.train(make_config(mode="none", rounds=2, evaluate_every=2))
        assert result.design_names == ["intercept", "lefthippocampus", "p_tau"]
        assert result.weights.shape == (3,)

    def test_nominal_covariate_expanded(self, fresh_federation):
        trainer = FederatedTrainer(fresh_federation)
        result = trainer.train(
            make_config(mode="none", rounds=2, evaluate_every=2,
                        covariates=("lefthippocampus", "gender"))
        )
        assert result.design_names == ["intercept", "lefthippocampus", "gender[M]"]


class TestPrivateTraining:
    def test_dp_budget_accounted(self, fresh_federation):
        trainer = FederatedTrainer(fresh_federation)
        result = trainer.train(make_config(mode="dp", epsilon=8.0, delta=1e-5))
        assert result.epsilon_spent == pytest.approx(8.0)
        assert result.delta_spent == pytest.approx(1e-5)
        assert result.mode == "dp"

    def test_sa_budget_accounted(self, fresh_federation):
        trainer = FederatedTrainer(fresh_federation)
        result = trainer.train(make_config(mode="sa", epsilon=8.0))
        assert result.epsilon_spent == pytest.approx(8.0)

    def test_noise_hurts_at_tiny_epsilon(self, fresh_federation):
        trainer = FederatedTrainer(fresh_federation)
        clean = trainer.train(make_config(mode="none", rounds=10, evaluate_every=5))
        noisy = trainer.train(
            make_config(mode="dp", epsilon=0.05, rounds=10, evaluate_every=5)
        )
        assert noisy.final_loss > clean.final_loss

    def test_dp_noise_differs_per_seed(self, fresh_federation):
        trainer = FederatedTrainer(fresh_federation)
        a = trainer.train(make_config(mode="dp", epsilon=5.0, seed=1, rounds=3,
                                      evaluate_every=3))
        b = trainer.train(make_config(mode="dp", epsilon=5.0, seed=2, rounds=3,
                                      evaluate_every=3))
        assert not np.allclose(a.weights, b.weights)

    def test_sa_uses_smpc_cluster(self, fresh_federation):
        cluster = fresh_federation.smpc_cluster
        before = cluster.communication.rounds
        trainer = FederatedTrainer(fresh_federation)
        trainer.train(make_config(mode="sa", epsilon=5.0, rounds=2, evaluate_every=2))
        assert cluster.communication.rounds > before


class TestLinearModelKind:
    def test_linear_regression_by_gradient_descent(self, fresh_federation):
        """model_kind='linear' minimizes MSE toward the OLS solution on
        standardized features."""
        trainer = FederatedTrainer(fresh_federation)
        result = trainer.train(
            make_config(
                mode="none", model_kind="linear",
                response="minimentalstate",
                covariates=("lefthippocampus", "agevalue"),
                rounds=60, learning_rate=0.05, clip_norm=100.0,
                evaluate_every=30,
            )
        )
        losses = [h["loss"] for h in result.history]
        assert losses[-1] < losses[0]
        # on standardized covariates, MSE should approach the OLS residual MSE
        assert losses[-1] < 5.0

    def test_linear_accuracy_reported_as_zero(self, fresh_federation):
        trainer = FederatedTrainer(fresh_federation)
        result = trainer.train(
            make_config(mode="none", model_kind="linear",
                        response="minimentalstate",
                        covariates=("lefthippocampus",),
                        rounds=3, evaluate_every=3)
        )
        assert result.final_accuracy == 0.0  # not defined for regression

    def test_unknown_model_kind_rejected(self):
        with pytest.raises(AlgorithmError):
            make_config(model_kind="quantum")

    def test_newton_requires_logistic(self):
        with pytest.raises(AlgorithmError):
            make_config(mode="newton", model_kind="linear")

    def test_dp_linear_training_runs(self, fresh_federation):
        trainer = FederatedTrainer(fresh_federation)
        result = trainer.train(
            make_config(mode="dp", model_kind="linear", epsilon=50.0,
                        response="minimentalstate",
                        covariates=("lefthippocampus",),
                        rounds=5, evaluate_every=5)
        )
        assert result.epsilon_spent == pytest.approx(50.0)


class TestNewtonMode:
    def test_newton_converges_in_few_rounds(self, fresh_federation):
        """The second-order path reaches the SGD path's accuracy in a
        fraction of the rounds."""
        trainer = FederatedTrainer(fresh_federation)
        newton = trainer.train(make_config(mode="newton", rounds=4, evaluate_every=4))
        sgd = trainer.train(make_config(mode="none", rounds=4, evaluate_every=4))
        assert newton.final_loss <= sgd.final_loss
        assert newton.final_accuracy >= 0.6

    def test_newton_matches_federated_logistic_algorithm(self, fresh_federation):
        """Newton training on unstandardized features converges to the same
        MLE the logistic_regression algorithm finds."""
        import repro.algorithms  # noqa: F401
        from repro.core.experiment import ExperimentEngine, ExperimentRequest

        trainer = FederatedTrainer(fresh_federation)
        result = trainer.train(
            make_config(mode="newton", rounds=12, evaluate_every=12,
                        standardize=False)
        )
        engine = ExperimentEngine(fresh_federation, aggregation="plain")
        reference = engine.run(
            ExperimentRequest(
                algorithm="logistic_regression", data_model="dementia",
                datasets=("edsd", "adni", "ppmi"),
                y=("converted_ad",), x=("lefthippocampus", "p_tau"),
            )
        )
        assert reference.status.value == "success"
        assert np.allclose(result.weights, reference.result["coefficients"], atol=1e-4)

    def test_newton_spends_no_privacy_budget(self, fresh_federation):
        trainer = FederatedTrainer(fresh_federation)
        result = trainer.train(make_config(mode="newton", rounds=3, evaluate_every=3))
        assert result.epsilon_spent == 0.0


class TestEvaluation:
    def test_history_cadence(self, fresh_federation):
        trainer = FederatedTrainer(fresh_federation)
        result = trainer.train(make_config(mode="none", rounds=9, evaluate_every=3))
        assert [h["round"] for h in result.history] == [3, 6, 9]

    def test_final_round_always_evaluated(self, fresh_federation):
        trainer = FederatedTrainer(fresh_federation)
        result = trainer.train(make_config(mode="none", rounds=5, evaluate_every=4))
        assert result.history[-1]["round"] == 5
