"""Common Data Elements and the catalogue registry."""

import pytest

from repro.data.cdes import (
    CDERegistry,
    CommonDataElement,
    DataModel,
    cde_registry,
    dementia_data_model,
)
from repro.engine.types import SQLType
from repro.errors import CatalogError, SpecificationError


class TestCommonDataElement:
    def test_nominal_requires_enumerations(self):
        with pytest.raises(SpecificationError):
            CommonDataElement("x", "X", SQLType.VARCHAR, is_categorical=True)

    def test_numeric_rejects_enumerations(self):
        with pytest.raises(SpecificationError):
            CommonDataElement("x", "X", SQLType.REAL, enumerations=("a",))

    def test_kind(self):
        numeric = CommonDataElement("x", "X", SQLType.REAL)
        nominal = CommonDataElement("g", "G", SQLType.VARCHAR,
                                    is_categorical=True, enumerations=("a", "b"))
        assert numeric.kind == "numeric"
        assert nominal.kind == "nominal"

    def test_metadata_dict(self):
        cde = CommonDataElement("x", "X", SQLType.REAL, min_value=0, max_value=10)
        metadata = cde.to_metadata()
        assert metadata["is_categorical"] is False
        assert metadata["min"] == 0
        assert metadata["max"] == 10


class TestDementiaModel:
    def test_core_variables_present(self):
        model = dementia_data_model()
        for code in ("dataset", "alzheimerbroadcategory", "p_tau", "ab_42",
                     "lefthippocampus", "leftententorhinalarea", "gender"):
            assert code in model.cdes

    def test_validate_variables(self):
        model = dementia_data_model()
        model.validate_variables(["p_tau"], ["numeric"])
        with pytest.raises(SpecificationError):
            model.validate_variables(["gender"], ["numeric"])
        with pytest.raises(CatalogError):
            model.validate_variables(["bogus"], ["numeric"])

    def test_metadata_for(self):
        model = dementia_data_model()
        metadata = model.metadata_for(["gender"])
        assert metadata["gender"]["enumerations"] == ["F", "M"]

    def test_variables_sorted(self):
        model = dementia_data_model()
        assert model.variables() == sorted(model.variables())


class TestRegistry:
    def test_default_model_registered(self):
        assert "dementia" in cde_registry
        assert "dementia" in cde_registry.names()

    def test_register_and_replace(self):
        registry = CDERegistry()
        model = dementia_data_model()
        registry.register(model)
        with pytest.raises(CatalogError):
            registry.register(model)
        registry.register(model, replace=True)

    def test_get_unknown(self):
        registry = CDERegistry()
        with pytest.raises(CatalogError):
            registry.get("ghost")
