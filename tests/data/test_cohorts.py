"""Synthetic cohort generation: shapes, signals, reproducibility."""

import numpy as np
import pytest

from repro.data.cdes import dementia_data_model
from repro.data.cohorts import (
    CohortSpec,
    alzheimers_use_case_cohorts,
    generate_cohort,
    generate_synthetic_hospital,
)
from repro.errors import SpecificationError


@pytest.fixture(scope="module")
def cohort():
    return generate_cohort(CohortSpec("edsd", 800, seed=42))


def by_diagnosis(cohort, variable):
    diagnosis = cohort.column("alzheimerbroadcategory").to_list()
    values = cohort.column(variable).to_list()
    groups = {}
    for d, v in zip(diagnosis, values):
        if v is not None:
            groups.setdefault(d, []).append(v)
    return {k: np.array(v) for k, v in groups.items()}


class TestSpecValidation:
    def test_mix_must_sum_to_one(self):
        with pytest.raises(SpecificationError):
            CohortSpec("x", 10, diagnosis_mix={"CN": 0.5})

    def test_unknown_diagnosis(self):
        with pytest.raises(SpecificationError):
            CohortSpec("x", 10, diagnosis_mix={"CN": 0.5, "ALIEN": 0.5})

    def test_positive_size(self):
        with pytest.raises(SpecificationError):
            CohortSpec("x", 0)

    def test_na_rate_range(self):
        with pytest.raises(SpecificationError):
            CohortSpec("x", 10, na_rate=1.0)


class TestGeneratedShape:
    def test_row_count_and_dataset_column(self, cohort):
        assert cohort.num_rows == 800
        assert set(cohort.column("dataset").to_list()) == {"edsd"}

    def test_schema_matches_data_model(self, cohort):
        model = dementia_data_model()
        for spec in cohort.schema:
            assert spec.name in model.cdes
            assert spec.sql_type == model.cde(spec.name).sql_type

    def test_reproducible(self):
        a = generate_cohort(CohortSpec("edsd", 50, seed=7))
        b = generate_cohort(CohortSpec("edsd", 50, seed=7))
        assert a.to_rows() == b.to_rows()

    def test_different_seeds_differ(self):
        a = generate_cohort(CohortSpec("edsd", 50, seed=7))
        b = generate_cohort(CohortSpec("edsd", 50, seed=8))
        assert a.to_rows() != b.to_rows()

    def test_na_rate_approximate(self, cohort):
        ptau = cohort.column("p_tau")
        rate = ptau.null_count / len(ptau)
        assert 0.04 < rate < 0.14

    def test_values_within_cde_ranges(self, cohort):
        model = dementia_data_model()
        for code in ("lefthippocampus", "p_tau", "ab_42", "minimentalstate"):
            cde = model.cde(code)
            values = cohort.column(code).non_null()
            assert values.min() >= cde.min_value
            assert values.max() <= cde.max_value


class TestClinicalSignals:
    """The generative model must carry the use case's signals."""

    def test_hippocampal_atrophy_ordering(self, cohort):
        groups = by_diagnosis(cohort, "lefthippocampus")
        assert groups["CN"].mean() > groups["MCI"].mean() > groups["AD"].mean()

    def test_biomarker_separation(self, cohort):
        ab42 = by_diagnosis(cohort, "ab_42")
        ptau = by_diagnosis(cohort, "p_tau")
        assert ab42["CN"].mean() > ab42["AD"].mean()
        assert ptau["AD"].mean() > ptau["CN"].mean()

    def test_ventricle_enlargement(self, cohort):
        groups = by_diagnosis(cohort, "leftlateralventricle")
        assert groups["AD"].mean() > groups["CN"].mean()

    def test_bilateral_correlation(self, cohort):
        left = np.array(cohort.column("lefthippocampus").to_list())
        right = np.array(cohort.column("righthippocampus").to_list())
        assert np.corrcoef(left, right)[0, 1] > 0.9

    def test_ad_converts_faster(self, cohort):
        events = by_diagnosis(cohort, "event_observed")
        assert events["AD"].mean() > events["CN"].mean()

    def test_risk_score_discriminates(self, cohort):
        risk = np.array(cohort.column("predicted_risk").to_list())
        converted = np.array(cohort.column("converted_ad").to_list())
        assert risk[converted == 1].mean() > risk[converted == 0].mean()


class TestHospitalAndUseCase:
    def test_multi_dataset_hospital(self):
        table = generate_synthetic_hospital(
            [CohortSpec("edsd", 30, seed=1), CohortSpec("adni", 20, seed=2)]
        )
        assert table.num_rows == 50
        assert set(table.column("dataset").to_list()) == {"edsd", "adni"}

    def test_empty_hospital_rejected(self):
        with pytest.raises(SpecificationError):
            generate_synthetic_hospital([])

    def test_use_case_sizes_match_paper(self):
        cohorts = alzheimers_use_case_cohorts()
        sizes = {worker: table.num_rows for worker, table in cohorts.items()}
        # Paper: Brescia 1960, Lausanne 1032, Lille 1103, ADNI 1066
        assert sizes == {
            "hospital_brescia": 1960,
            "hospital_lausanne": 1032,
            "hospital_lille": 1103,
            "hospital_adni": 1066,
        }
