"""Multiple pathologies: the epilepsy data model, JSON interchange, and
workers hosting several data models at once."""

import numpy as np
import pytest

from repro.api.service import MIPService
from repro.data.cdes import DataModel, cde_registry, dementia_data_model, epilepsy_data_model
from repro.data.cohorts import CohortSpec, generate_cohort, generate_epilepsy_cohort
from repro.errors import SpecificationError
from repro.federation.controller import FederationConfig, create_federation


class TestJSONInterchange:
    def test_roundtrip(self):
        model = dementia_data_model()
        restored = DataModel.from_json(model.to_json())
        assert restored.name == model.name
        assert restored.version == model.version
        assert restored.variables() == model.variables()
        for code in model.variables():
            assert restored.cde(code) == model.cde(code)

    def test_invalid_json(self):
        with pytest.raises(SpecificationError, match="invalid"):
            DataModel.from_json("{not json")

    def test_missing_fields(self):
        with pytest.raises(SpecificationError, match="missing"):
            DataModel.from_json('{"name": "x", "version": "1"}')

    def test_variable_missing_code(self):
        with pytest.raises(SpecificationError):
            DataModel.from_json(
                '{"name": "x", "version": "1", "variables": [{"sql_type": "REAL"}]}'
            )


class TestEpilepsyModel:
    def test_registered_by_default(self):
        assert "epilepsy" in cde_registry
        model = cde_registry.get("epilepsy")
        assert "ieeg_spike_rate" in model.cdes
        assert model.cde("surgery_outcome").is_categorical

    def test_cohort_matches_model(self):
        table = generate_epilepsy_cohort("chuv_eeg", 300, seed=4)
        model = epilepsy_data_model()
        for spec in table.schema:
            assert spec.name in model.cdes
        assert table.num_rows == 300

    def test_cohort_carries_surgical_signal(self):
        table = generate_epilepsy_cohort("chuv_eeg", 1500, seed=4)
        soz = np.array(table.column("soz_channels").to_list())
        outcome = np.array(
            [1.0 if v == "seizure_free" else 0.0
             for v in table.column("surgery_outcome").to_list()]
        )
        # compact seizure-onset zones -> better outcomes
        assert soz[outcome == 1].mean() < soz[outcome == 0].mean()


class TestMultiModelFederation:
    @pytest.fixture(scope="class")
    def service(self):
        federation = create_federation(
            {
                "chuv": {
                    "dementia": generate_cohort(CohortSpec("lausanne", 150, seed=1)),
                    "epilepsy": generate_epilepsy_cohort("chuv_eeg", 150, seed=2),
                },
                "niguarda": {
                    "epilepsy": generate_epilepsy_cohort("niguarda_eeg", 150, seed=3),
                },
            },
            FederationConfig(seed=5),
        )
        return MIPService(federation, aggregation="plain")

    def test_catalogue_lists_both_models(self, service):
        assert service.data_models() == ["dementia", "epilepsy"]
        assert service.datasets("epilepsy") == {
            "chuv_eeg": ["chuv"], "niguarda_eeg": ["niguarda"],
        }

    def test_experiments_target_their_model(self, service):
        dementia = service.run_experiment(
            "ttest_onesample", "dementia", ["lausanne"], y=["p_tau"],
        )
        assert dementia.status.value == "success"
        epilepsy = service.run_experiment(
            "pearson_correlation", "epilepsy", ["chuv_eeg", "niguarda_eeg"],
            y=["ieeg_spike_rate", "hfo_rate"],
        )
        assert epilepsy.status.value == "success"
        assert epilepsy.result["correlations"][0][1] > 0.5  # by construction

    def test_surgical_outcome_model(self, service):
        result = service.run_experiment(
            "logistic_regression", "epilepsy", ["chuv_eeg", "niguarda_eeg"],
            y=["surgery_outcome"], x=["soz_channels", "epilepsy_type"],
        )
        assert result.status.value == "success"
        names = result.result["variable_names"]
        soz_coef = result.result["coefficients"][names.index("soz_channels")]
        assert soz_coef != 0
        # positive level is 'seizure_free'? enumerations: (seizure_free, not_seizure_free)
        # positive level = second observed level; just check the model separates
        assert result.result["auc"] > 0.55 or result.result["auc"] < 0.45

    def test_wrong_model_variable_rejected(self, service):
        result = service.run_experiment(
            "ttest_onesample", "epilepsy", ["chuv_eeg"], y=["p_tau"],
        )
        assert result.status.value == "error"
