"""Execution context: view compilation, handles, aggregation routing."""

import pytest

from repro.core.context import DataView, ExecutionContext
from repro.core.state import GlobalHandle, LocalHandle
from repro.errors import AlgorithmError
from repro.udfgen import literal, merge_transfer, relation, secure_transfer, state, transfer, udf


@udf(data=relation(), scale=literal(), return_type=[state(), secure_transfer()])
def ctx_local_step(data, scale):
    total = float(data.to_matrix().sum()) * scale
    return {"total": total}, {"total": {"data": total, "operation": "sum"}}


@udf(data=relation(), return_type=[transfer()])
def ctx_plain_step(data):
    return {"n": len(data)}


@udf(aggregates=transfer(), return_type=[transfer()])
def ctx_global_step(aggregates):
    return {"doubled": aggregates["total"] * 2}


@udf(transfers=merge_transfer(), return_type=[transfer()])
def ctx_merge_step(transfers):
    return {"total_n": sum(t["n"] for t in transfers)}


@pytest.fixture()
def context(federation):
    return ExecutionContext(
        federation.master,
        "dementia",
        {"hospital_a": ["edsd"], "hospital_b": ["adni"]},
        aggregation="smpc",
    )


class TestViewQuery:
    def test_dataset_filter_and_dropna(self, context):
        query = context.view_query(DataView.of(("p_tau", "agevalue")), "hospital_a")
        assert "dataset IN ('edsd')" in query
        assert "p_tau IS NOT NULL" in query
        assert "agevalue IS NOT NULL" in query

    def test_dropna_false(self, context):
        query = context.view_query(DataView.of(("p_tau",), dropna=False), "hospital_a")
        assert "IS NOT NULL" not in query

    def test_experiment_filter_appended(self, federation):
        context = ExecutionContext(
            federation.master, "dementia", {"hospital_a": ["edsd"]},
            filter_sql="agevalue > 70",
        )
        query = context.view_query(DataView.of(("p_tau",)), "hospital_a")
        assert "(agevalue > 70)" in query

    def test_unknown_aggregation_mode(self, federation):
        with pytest.raises(AlgorithmError):
            ExecutionContext(
                federation.master, "dementia", {"hospital_a": ["edsd"]},
                aggregation="homeopathic",
            )

    def test_no_workers(self, federation):
        with pytest.raises(AlgorithmError):
            ExecutionContext(federation.master, "dementia", {})


class TestLocalRun:
    def test_handles_per_output(self, context):
        handles = context.local_run(
            ctx_local_step,
            {"data": DataView.of(("lefthippocampus",)), "scale": 1.0},
            share_to_global=[False, True],
        )
        state_handle, secure_handle = handles
        assert state_handle.kind == "state"
        assert not state_handle.shared_to_global
        assert secure_handle.kind == "secure_transfer"
        assert secure_handle.shared_to_global
        assert set(state_handle.workers) == {"hospital_a", "hospital_b"}

    def test_share_flag_count_checked(self, context):
        with pytest.raises(AlgorithmError, match="share_to_global"):
            context.local_run(
                ctx_local_step,
                {"data": DataView.of(("lefthippocampus",)), "scale": 1.0},
                share_to_global=[True],
            )

    def test_sharing_state_rejected(self, context):
        with pytest.raises(AlgorithmError, match="only transfers"):
            context.local_run(
                ctx_local_step,
                {"data": DataView.of(("lefthippocampus",)), "scale": 1.0},
                share_to_global=[True, True],
            )


class TestGlobalRun:
    def test_smpc_aggregation_into_global_step(self, context):
        handle = context.local_run(
            ctx_local_step,
            {"data": DataView.of(("lefthippocampus",)), "scale": 1.0},
            share_to_global=[False, True],
        )[1]
        global_handle = context.global_run(
            ctx_global_step, {"aggregates": handle}, share_to_locals=[False]
        )
        result = context.get_transfer_data(global_handle)
        assert result["doubled"] > 0

    def test_unshared_local_rejected(self, context):
        handle = context.local_run(
            ctx_local_step,
            {"data": DataView.of(("lefthippocampus",)), "scale": 1.0},
            share_to_global=[False, False],
        )[1]
        with pytest.raises(AlgorithmError, match="not shared"):
            context.global_run(ctx_global_step, {"aggregates": handle}, [False])

    def test_merge_transfer_path(self, context):
        handle = context.local_run(
            ctx_plain_step,
            {"data": DataView.of(("lefthippocampus",))},
            share_to_global=[True],
        )
        global_handle = context.global_run(
            ctx_merge_step, {"transfers": handle}, share_to_locals=[False]
        )
        result = context.get_transfer_data(global_handle)
        assert result["total_n"] > 0


class TestGetTransferData:
    def test_local_secure_aggregated(self, context):
        handle = context.local_run(
            ctx_local_step,
            {"data": DataView.of(("lefthippocampus",)), "scale": 1.0},
            share_to_global=[False, True],
        )[1]
        aggregated = context.get_transfer_data(handle)
        assert aggregated["total"] > 0

    def test_local_plain_returns_list(self, context):
        handle = context.local_run(
            ctx_plain_step,
            {"data": DataView.of(("lefthippocampus",))},
            share_to_global=[True],
        )
        transfers = context.get_transfer_data(handle)
        assert isinstance(transfers, list)
        assert len(transfers) == 2

    def test_state_handle_rejected(self, context):
        handle = context.local_run(
            ctx_local_step,
            {"data": DataView.of(("lefthippocampus",)), "scale": 1.0},
            share_to_global=[False, False],
        )[0]
        with pytest.raises(AlgorithmError):
            context.get_transfer_data(handle)

    def test_non_handle_rejected(self, context):
        with pytest.raises(AlgorithmError):
            context.get_transfer_data({"not": "a handle"})


class TestPlainVsSecureAgreement:
    def test_same_aggregate_on_both_paths(self, federation):
        results = {}
        for mode in ("smpc", "plain"):
            context = ExecutionContext(
                federation.master, "dementia",
                {"hospital_a": ["edsd"], "hospital_b": ["adni"]},
                aggregation=mode,
            )
            handle = context.local_run(
                ctx_local_step,
                {"data": DataView.of(("lefthippocampus",)), "scale": 1.0},
                share_to_global=[False, True],
            )[1]
            results[mode] = context.get_transfer_data(handle)["total"]
        assert results["smpc"] == pytest.approx(results["plain"], abs=1e-3)
