"""Algorithm parameter specifications."""

import pytest

from repro.core.specs import ParameterSpec, validate_parameters
from repro.errors import SpecificationError


class TestParameterSpec:
    def test_default_filled(self):
        spec = ParameterSpec("k", "int", default=3)
        assert spec.validate(None) == 3

    def test_required_enforced(self):
        spec = ParameterSpec("k", "int", required=True)
        with pytest.raises(SpecificationError, match="required"):
            spec.validate(None)

    def test_int_coercion(self):
        spec = ParameterSpec("k", "int")
        assert spec.validate(3.0) == 3
        with pytest.raises(SpecificationError):
            spec.validate(3.5)
        with pytest.raises(SpecificationError):
            spec.validate("3")
        with pytest.raises(SpecificationError):
            spec.validate(True)  # bools are not ints here

    def test_real_coercion(self):
        spec = ParameterSpec("e", "real")
        assert spec.validate(2) == 2.0
        with pytest.raises(SpecificationError):
            spec.validate("x")

    def test_text(self):
        spec = ParameterSpec("s", "text")
        assert spec.validate("hello") == "hello"
        with pytest.raises(SpecificationError):
            spec.validate(5)

    def test_bool(self):
        spec = ParameterSpec("b", "bool")
        assert spec.validate(True) is True
        with pytest.raises(SpecificationError):
            spec.validate(1)

    def test_range_checks(self):
        spec = ParameterSpec("k", "int", min_value=1, max_value=10)
        assert spec.validate(5) == 5
        with pytest.raises(SpecificationError, match="below minimum"):
            spec.validate(0)
        with pytest.raises(SpecificationError, match="above maximum"):
            spec.validate(11)

    def test_enums(self):
        spec = ParameterSpec("mode", "text", enums=("a", "b"))
        assert spec.validate("a") == "a"
        with pytest.raises(SpecificationError):
            spec.validate("c")

    def test_unknown_type_rejected(self):
        with pytest.raises(SpecificationError):
            ParameterSpec("x", "complex")


class TestValidateParameters:
    SPECS = (
        ParameterSpec("k", "int", required=True, min_value=1),
        ParameterSpec("e", "real", default=1e-4),
    )

    def test_defaults_and_provided(self):
        result = validate_parameters(self.SPECS, {"k": 3})
        assert result == {"k": 3, "e": 1e-4}

    def test_unknown_parameter_rejected(self):
        with pytest.raises(SpecificationError, match="unknown"):
            validate_parameters(self.SPECS, {"k": 3, "zeta": 1})

    def test_none_provided(self):
        with pytest.raises(SpecificationError):
            validate_parameters(self.SPECS, None)
