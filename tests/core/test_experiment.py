"""Experiment lifecycle and validation."""

import pytest

import repro.algorithms  # noqa: F401
from repro.core.experiment import ExperimentEngine, ExperimentRequest, ExperimentStatus
from repro.errors import ExperimentNotFoundError


@pytest.fixture()
def engine(federation):
    return ExperimentEngine(federation, aggregation="plain")


def make_request(**overrides):
    base = dict(
        algorithm="ttest_onesample",
        data_model="dementia",
        datasets=("edsd",),
        y=("p_tau",),
        parameters={"mu": 50.0},
    )
    base.update(overrides)
    return ExperimentRequest(**base)


class TestSuccessPath:
    def test_run_and_history(self, engine):
        result = engine.run(make_request())
        assert result.status == ExperimentStatus.SUCCESS
        assert result.workers == ("hospital_a",)
        assert result.elapsed_seconds > 0
        assert engine.get(result.experiment_id) is result
        assert result in engine.history()

    def test_filter_sql_applied(self, engine):
        full = engine.run(make_request())
        filtered = engine.run(make_request(filter_sql="agevalue > 72"))
        assert filtered.status == ExperimentStatus.SUCCESS
        assert filtered.result["n_observations"] < full.result["n_observations"]


class TestValidation:
    def test_unknown_algorithm(self, engine):
        result = engine.run(make_request(algorithm="astrology"))
        assert result.status == ExperimentStatus.ERROR
        assert "no such algorithm" in result.error

    def test_missing_y(self, engine):
        result = engine.run(make_request(y=()))
        assert result.status == ExperimentStatus.ERROR
        assert "requires dependent variables" in result.error

    def test_missing_x_when_required(self, engine):
        result = engine.run(
            make_request(algorithm="linear_regression", y=("p_tau",), x=(), parameters={})
        )
        assert result.status == ExperimentStatus.ERROR
        assert "covariates" in result.error

    def test_unexpected_x_rejected(self, engine):
        result = engine.run(make_request(x=("agevalue",)))
        assert result.status == ExperimentStatus.ERROR

    def test_no_datasets(self, engine):
        result = engine.run(make_request(datasets=()))
        assert result.status == ExperimentStatus.ERROR
        assert "dataset" in result.error

    def test_unknown_dataset(self, engine):
        result = engine.run(make_request(datasets=("atlantis",)))
        assert result.status == ExperimentStatus.ERROR
        assert "not available" in result.error

    def test_bad_parameter(self, engine):
        result = engine.run(
            make_request(algorithm="kmeans", y=("p_tau",), parameters={"k": 0})
        )
        assert result.status == ExperimentStatus.ERROR
        assert "below minimum" in result.error

    def test_wrong_variable_kind(self, engine):
        # gender is nominal; one-sample t-test needs numeric
        result = engine.run(make_request(y=("gender",)))
        assert result.status == ExperimentStatus.ERROR
        assert "nominal" in result.error

    def test_unknown_variable(self, engine):
        result = engine.run(make_request(y=("spleen_volume",)))
        assert result.status == ExperimentStatus.ERROR

    def test_get_unknown_experiment(self, engine):
        with pytest.raises(ExperimentNotFoundError):
            engine.get("ghost")


class TestTelemetry:
    def test_transport_usage_attributed(self, engine):
        result = engine.run(make_request())
        assert result.telemetry.messages > 0
        assert result.telemetry.bytes_sent > 0
        assert result.telemetry.simulated_network_seconds > 0

    def test_smpc_usage_attributed_on_secure_path(self, fresh_federation):
        secure_engine = ExperimentEngine(fresh_federation, aggregation="smpc")
        result = secure_engine.run(make_request())
        assert result.status == ExperimentStatus.SUCCESS
        assert result.telemetry.smpc_rounds > 0
        assert result.telemetry.smpc_elements > 0

    def test_plain_path_uses_no_smpc(self, fresh_federation):
        plain_engine = ExperimentEngine(fresh_federation, aggregation="plain")
        result = plain_engine.run(make_request())
        assert result.telemetry.smpc_rounds == 0


class TestCleanup:
    def test_worker_tables_cleaned(self, federation):
        engine = ExperimentEngine(federation, aggregation="plain")
        worker = federation.workers["hospital_a"]
        before = set(worker.database.table_names())
        result = engine.run(make_request())
        assert result.status == ExperimentStatus.SUCCESS
        after = set(worker.database.table_names())
        assert after == before


class TestConcurrentTelemetry:
    """Acceptance criterion: two experiments running concurrently must each
    report exactly the telemetry they report when run alone."""

    @staticmethod
    def _build_federation():
        from repro.federation.controller import FederationConfig, create_federation
        from tests.conftest import small_worker_data

        return create_federation(
            small_worker_data(),
            FederationConfig(smpc_nodes=3, smpc_scheme="shamir", seed=77),
        )

    @staticmethod
    def _requests():
        return [
            (
                "exp_solo_a",
                make_request(y=("lefthippocampus", "righthippocampus"),
                             algorithm="pearson_correlation",
                             datasets=("edsd", "adni", "ppmi"),
                             parameters={}),
            ),
            (
                "exp_solo_b",
                make_request(y=("lefthippocampus",), x=("agevalue",),
                             algorithm="linear_regression",
                             datasets=("edsd", "adni", "ppmi"),
                             parameters={}),
            ),
        ]

    def test_concurrent_runs_match_solo_telemetry(self):
        # Solo baselines, each on its own identically-seeded federation.
        solo = {}
        for experiment_id, request in self._requests():
            engine = ExperimentEngine(self._build_federation())
            try:
                engine.submit(request, experiment_id=experiment_id)
                result = engine.wait(experiment_id, timeout=120)
                assert result.status is ExperimentStatus.SUCCESS
                solo[experiment_id] = result.telemetry
            finally:
                engine.shutdown(wait=False)

        # The same two requests overlapping in one federation at pool 2.
        engine = ExperimentEngine(self._build_federation(), max_concurrent=2)
        try:
            for experiment_id, request in self._requests():
                engine.submit(request, experiment_id=experiment_id)
            for experiment_id, _ in self._requests():
                result = engine.wait(experiment_id, timeout=120)
                assert result.status is ExperimentStatus.SUCCESS
                assert result.telemetry == solo[experiment_id], (
                    f"{experiment_id}: concurrent telemetry leaked across jobs"
                )
        finally:
            engine.shutdown(wait=False)
