"""Algorithm registry."""

import pytest

import repro.algorithms  # noqa: F401
from repro.core.algorithm import FederatedAlgorithm
from repro.core.registry import AlgorithmRegistry, algorithm_registry
from repro.errors import AlgorithmError

#: The paper's §2 "Current status" list, mapped to registry names.
PAPER_ALGORITHMS = [
    "kmeans",
    "anova_oneway",
    "anova_twoway",
    "cart",
    "calibration_belt",
    "id3",
    "kaplan_meier",
    "linear_regression",
    "linear_regression_cv",
    "logistic_regression",
    "logistic_regression_cv",
    "naive_bayes",
    "naive_bayes_cv",
    "pearson_correlation",
    "pca",
    "ttest_independent",
    "ttest_onesample",
    "ttest_paired",
]


class TestGlobalRegistry:
    def test_paper_algorithm_list_covered(self):
        for name in PAPER_ALGORITHMS:
            assert name in algorithm_registry, f"paper algorithm {name} missing"

    def test_at_least_15_algorithms(self):
        # Paper: "The MIP currently integrates 15+ algorithms"
        assert len(algorithm_registry.names()) >= 15

    def test_listing_has_labels(self):
        listing = algorithm_registry.listing()
        assert all(entry["label"] for entry in listing)

    def test_get_unknown(self):
        with pytest.raises(AlgorithmError):
            algorithm_registry.get("quantum_regression")


class TestRegistryMechanics:
    def test_register_requires_name(self):
        registry = AlgorithmRegistry()

        class Nameless(FederatedAlgorithm):
            pass

        with pytest.raises(AlgorithmError):
            registry.register(Nameless)

    def test_duplicate_rejected(self):
        registry = AlgorithmRegistry()

        class Algo(FederatedAlgorithm):
            name = "dup"

        registry.register(Algo)
        with pytest.raises(AlgorithmError):
            registry.register(Algo)
