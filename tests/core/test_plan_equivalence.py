"""Plan executor equivalence: pipeline mode is byte-identical to eager mode.

The acceptance bar of the flow-plan refactor: for EVERY registered
algorithm, executing the recorded plan with the pipelining scheduler must
produce a byte-identical ``ExperimentResult`` payload and an identical
normalized trace tree to the eager (imperative-equivalent) path — same
seed, at transport parallelism 1 and 8.
"""

import json

import pytest

from repro.api.demo import DEMO_REQUESTS, demo_request
from repro.core.experiment import ExperimentEngine, ExperimentRequest
from repro.core.registry import algorithm_registry
from repro.data.cohorts import CohortSpec, generate_cohort
from repro.federation.controller import FederationConfig, create_federation
from repro.observability.trace import normalized_tree, tracer

import repro.algorithms  # noqa: F401

DATASETS = ("edsd", "adni", "ppmi")

_WORKER_SPECS = (
    ("hospital_a", "edsd", 11),
    ("hospital_b", "adni", 22),
    ("hospital_c", "ppmi", 33),
)


def build_worker_data(rows: int = 60):
    return {
        worker: {"dementia": generate_cohort(CohortSpec(code, rows, seed=seed))}
        for worker, code, seed in _WORKER_SPECS
    }


@pytest.fixture(scope="module")
def worker_data60():
    return build_worker_data()


@pytest.fixture()
def tracing():
    was_enabled = tracer.enabled
    tracer.reset()
    tracer.enable()
    yield tracer
    tracer.reset()
    if not was_enabled:
        tracer.disable()


def run_mode(worker_data, algorithm, *, flow_mode, parallelism):
    """One fresh federation + engine run; returns (payload, tree, result)."""
    tracer.reset()
    federation = create_federation(
        worker_data,
        FederationConfig(
            smpc_nodes=3, smpc_scheme="shamir", seed=404, parallelism=parallelism
        ),
    )
    engine = ExperimentEngine(federation, aggregation="plain", flow_mode=flow_mode)
    demo = demo_request(algorithm)
    try:
        result = engine.run(
            ExperimentRequest(
                algorithm=algorithm,
                data_model="dementia",
                datasets=DATASETS,
                y=demo["y"],
                x=demo["x"],
                parameters=demo["parameters"],
            )
        )
    finally:
        engine.shutdown()
        federation.shutdown()
    assert result.status.value == "success", f"{algorithm}: {result.error}"
    payload = json.dumps(result.result, sort_keys=True)
    return payload, normalized_tree(), result


def test_demo_requests_cover_every_algorithm():
    assert sorted(DEMO_REQUESTS) == sorted(algorithm_registry.names())


@pytest.mark.parametrize("algorithm", sorted(DEMO_REQUESTS))
def test_pipeline_matches_eager(worker_data60, tracing, algorithm):
    reference, reference_tree, _ = run_mode(
        worker_data60, algorithm, flow_mode="eager", parallelism=1
    )
    for flow_mode, parallelism in (("pipeline", 1), ("pipeline", 8)):
        payload, tree, result = run_mode(
            worker_data60, algorithm, flow_mode=flow_mode, parallelism=parallelism
        )
        label = f"{algorithm} [{flow_mode}, par={parallelism}]"
        assert payload == reference, f"{label}: result payload differs"
        assert tree == reference_tree, f"{label}: normalized trace differs"
        assert result.dedup_hits == 0


@pytest.mark.parametrize("algorithm", ("linear_regression", "pca"))
def test_pipeline_matches_eager_smpc(worker_data60, tracing, algorithm):
    """The secure-aggregation path pipelines identically too (spot check)."""

    def run_smpc(flow_mode):
        tracer.reset()
        federation = create_federation(
            worker_data60,
            FederationConfig(smpc_nodes=3, smpc_scheme="shamir", seed=404,
                             parallelism=8),
        )
        engine = ExperimentEngine(federation, aggregation="smpc",
                                  flow_mode=flow_mode)
        demo = demo_request(algorithm)
        try:
            result = engine.run(
                ExperimentRequest(
                    algorithm=algorithm,
                    data_model="dementia",
                    datasets=DATASETS,
                    y=demo["y"],
                    x=demo["x"],
                    parameters=demo["parameters"],
                )
            )
        finally:
            engine.shutdown()
            federation.shutdown()
        assert result.status.value == "success", f"{algorithm}: {result.error}"
        return json.dumps(result.result, sort_keys=True), normalized_tree()

    eager_payload, eager_tree = run_smpc("eager")
    pipeline_payload, pipeline_tree = run_smpc("pipeline")
    assert pipeline_payload == eager_payload
    assert pipeline_tree == eager_tree
