"""The flow-plan IR: node taxonomy, rendering, fingerprint helpers."""

import json

import pytest

from repro.core.experiment import ExperimentRequest
from repro.core.plan import (
    BarrierNode,
    BroadcastNode,
    FlowPlan,
    GlobalStepNode,
    LocalStepNode,
    PlainAggregateNode,
    PlanArg,
    SecureAggregateNode,
    ValueRef,
    canonical_fingerprint,
    literal_key,
    source_hash,
    topological_order,
)
from repro.core.context import DataView
from repro.core.runner import ExperimentRunner


def build_sample_plan() -> FlowPlan:
    """A hand-built two-step flow: local -> aggregate -> global -> barrier."""
    plan = FlowPlan("job42")
    plan.add(LocalStepNode(
        node_id=plan.next_id(), deps=(),
        step_id="job42_s1", udf="fit_local",
        args=(("data", PlanArg("view", view=DataView.of(("age", "volume")))),
              ("mu", PlanArg("literal", value=1.5))),
        share=(True,), out_kinds=("secure_transfer",),
    ))
    plan.add(SecureAggregateNode(
        node_id=plan.next_id(), deps=(1,),
        gather_id="job42_s2_params", store_id="job42_s2",
        source=PlanArg("ref", ref=ValueRef(1, 0)), path="smpc",
    ))
    plan.add(GlobalStepNode(
        node_id=plan.next_id(), deps=(2,),
        step_id="job42_s2", udf="fit_global",
        args=(("params", PlanArg("ref", ref=ValueRef(2, 0))),),
        share=(True,), out_kinds=("transfer",),
    ))
    plan.add(BarrierNode(
        node_id=plan.next_id(), deps=(3,),
        source=PlanArg("ref", ref=ValueRef(3, 0)),
    ))
    return plan


class TestPlanStructure:
    def test_ids_edges_and_lookup(self):
        plan = build_sample_plan()
        assert len(plan) == 4
        assert [n.node_id for n in plan.nodes] == [1, 2, 3, 4]
        assert list(plan.edges()) == [(1, 2), (2, 3), (3, 4)]
        assert plan.node(3).kind == "global_step"

    def test_kind_tags(self):
        plan = build_sample_plan()
        kinds = [node.kind for node in plan.nodes]
        assert kinds == ["local_step", "secure_aggregate", "global_step", "barrier"]
        assert BroadcastNode(node_id=9, deps=()).kind == "broadcast"
        assert PlainAggregateNode(node_id=9, deps=()).kind == "plain_aggregate"

    def test_topological_order_is_record_order(self):
        plan = build_sample_plan()
        ordered = topological_order(list(reversed(plan.nodes)))
        assert [n.node_id for n in ordered] == [1, 2, 3, 4]


class TestRenderers:
    def test_to_json_scrubs_job_id(self):
        plan = build_sample_plan()
        text = json.dumps(plan.to_json())
        assert "job42" not in text
        assert "$job_s1" in text

    def test_to_json_shape(self):
        rendered = build_sample_plan().to_json()
        assert {entry["kind"] for entry in rendered["nodes"]} == {
            "local_step", "secure_aggregate", "global_step", "barrier"
        }
        local = rendered["nodes"][0]
        assert local["args"]["mu"] == {"literal": 1.5}
        assert local["share"] == [True]
        assert rendered["edges"] == [[1, 2], [2, 3], [3, 4]]

    def test_render_tree(self):
        text = build_sample_plan().render_tree()
        assert text.startswith("flow plan: 4 nodes")
        assert "n1 [local_step] udf=fit_local" in text
        assert "[secure_aggregate] mode=secure" in text

    def test_to_dot(self):
        text = build_sample_plan().to_dot()
        assert text.startswith("digraph flow_plan {")
        assert "n1 -> n2;" in text
        assert 'shape=box' in text

    def test_arg_summaries(self):
        assert PlanArg("ref", ref=ValueRef(7, 1)).summary() == {"ref": "n7[1]"}
        assert PlanArg("literal", value=[1, 2]).summary() == {"literal": [1, 2]}
        big = PlanArg("literal", value=list(range(200))).summary()
        assert set(big) == {"literal_sha256"}
        tables = PlanArg("local_tables", value={"w2": "t2", "w1": "t1"}).summary()
        assert tables == {"const_local_tables": ["w1", "w2"]}


class TestFingerprintHelpers:
    def test_canonical_fingerprint_is_order_independent(self):
        a = canonical_fingerprint({"x": 1, "y": [2, 3]})
        b = canonical_fingerprint({"y": [2, 3], "x": 1})
        assert a == b and len(a) == 64

    def test_canonical_fingerprint_distinguishes_payloads(self):
        assert canonical_fingerprint({"x": 1}) != canonical_fingerprint({"x": 2})

    def test_source_hash_stable(self):
        assert source_hash("def f(): pass") == source_hash("def f(): pass")
        assert source_hash("def f(): pass") != source_hash("def g(): pass")

    def test_literal_key(self):
        assert literal_key({"b": 1, "a": 2}) == '{"a":2,"b":1}'
        assert literal_key(object()) is None


class TestRecordedPlans:
    _seq = iter(range(1000))

    @pytest.fixture()
    def recorded(self, federation):
        runner = ExperimentRunner(
            federation, aggregation="plain", flow_mode="eager", plan_cache=None
        )
        request = ExperimentRequest(
            algorithm="linear_regression",
            data_model="dementia",
            datasets=("edsd", "adni", "ppmi"),
            y=("lefthippocampus",),
            x=("agevalue",),
        )
        info = {}
        runner.execute(request, f"planrec{next(self._seq)}", info=info)
        return info["plan"]

    def test_flow_recorded_as_dag(self, recorded):
        kinds = [node.kind for node in recorded.nodes]
        assert "local_step" in kinds
        assert "barrier" in kinds
        # Record order is topological: every dependency precedes its node.
        for node in recorded.nodes:
            assert all(dep < node.node_id for dep in node.deps)

    def test_recorded_plan_renders_everywhere(self, recorded):
        assert "planrec" not in json.dumps(recorded.to_json())
        assert recorded.render_tree()
        assert recorded.to_dot().endswith("}")
