"""The experiment job queue: states, priorities, admission, cancellation."""

import threading
import time

import pytest

import repro.algorithms  # noqa: F401
from repro.core.algorithm import FederatedAlgorithm
from repro.core.experiment import ExperimentEngine, ExperimentRequest, ExperimentStatus
from repro.core.registry import algorithm_registry
from repro.errors import (
    ExperimentNotFoundError,
    QueueFullError,
)
from repro.udfgen import relation, transfer, udf


def make_request(**overrides):
    defaults = dict(
        algorithm="descriptive_stats",
        data_model="dementia",
        datasets=("edsd", "adni", "ppmi"),
        y=("lefthippocampus",),
    )
    defaults.update(overrides)
    return ExperimentRequest(**defaults)


@pytest.fixture()
def engine(federation):
    eng = ExperimentEngine(federation)
    yield eng
    eng.shutdown(wait=False)


class _Gate:
    """Rendezvous used by the blocker algorithm below."""

    entered = threading.Event()
    release = threading.Event()

    @classmethod
    def reset(cls):
        cls.entered = threading.Event()
        cls.release = threading.Event()


@udf(data=relation(), return_type=[transfer()])
def _count_rows(data):
    return {"n": int(len(data["dataset"]))}


@pytest.fixture()
def blocker_algorithm():
    """Register a temporary algorithm that blocks between two flow steps."""

    class Blocker(FederatedAlgorithm):
        name = "test_blocker"
        label = "Blocker"
        needs_y = "required"
        needs_x = "none"

        def run(self):
            handle = self.local_run(
                func=_count_rows,
                keyword_args={"data": self.data_view(["dataset"] + self.y, dropna=False)},
                share_to_global=[True],
            )
            self.ctx.get_transfer_data(handle)
            _Gate.entered.set()
            _Gate.release.wait(timeout=30)
            # Cooperative cancellation is observed at the next step boundary.
            handle = self.local_run(
                func=_count_rows,
                keyword_args={"data": self.data_view(["dataset"] + self.y, dropna=False)},
                share_to_global=[True],
            )
            self.ctx.get_transfer_data(handle)
            return {"ok": True}

    _Gate.reset()
    algorithm_registry.register(Blocker)
    yield Blocker
    algorithm_registry._algorithms.pop("test_blocker", None)
    _Gate.release.set()


class TestQueueBasics:
    def test_submit_returns_immediately_and_wait_resolves(self, engine):
        job_id = engine.submit(make_request())
        assert job_id.startswith("exp_")
        result = engine.wait(job_id, timeout=60)
        assert result.status is ExperimentStatus.SUCCESS
        assert engine.get(job_id) is result

    def test_run_is_submit_plus_wait(self, engine):
        result = engine.run(make_request())
        assert result.status is ExperimentStatus.SUCCESS
        assert result.experiment_id in [s.job_id for s in engine.jobs()]

    def test_job_snapshot_lifecycle(self, engine):
        job_id = engine.submit(make_request())
        engine.wait(job_id, timeout=60)
        snapshot = engine.queue.job(job_id)
        assert snapshot.state == "success"
        assert snapshot.algorithm == "descriptive_stats"
        assert snapshot.wait_seconds is not None
        assert snapshot.elapsed_seconds is not None
        assert snapshot.to_dict()["job_id"] == job_id

    def test_unknown_ids_raise_not_found(self, engine):
        with pytest.raises(ExperimentNotFoundError):
            engine.get("ghost")
        with pytest.raises(ExperimentNotFoundError):
            engine.wait("ghost")
        with pytest.raises(ExperimentNotFoundError):
            engine.cancel("ghost")
        with pytest.raises(ExperimentNotFoundError):
            engine.queue.job("ghost")

    def test_duplicate_submission_rejected(self, engine):
        engine.submit(make_request(), experiment_id="exp_pinned")
        with pytest.raises(QueueFullError):
            engine.submit(make_request(), experiment_id="exp_pinned")
        engine.wait("exp_pinned", timeout=60)

    def test_error_flow_lands_in_history(self, engine):
        job_id = engine.submit(make_request(algorithm="descriptive_stats", y=()))
        result = engine.wait(job_id, timeout=60)
        assert result.status is ExperimentStatus.ERROR
        assert "SpecificationError" in result.error
        assert engine.queue.job(job_id).state == "error"

    def test_stats_counts(self, engine):
        engine.run(make_request())
        engine.run(make_request(y=()))
        stats = engine.queue.stats()
        assert stats["submitted_total"] == 2
        assert stats["succeeded_total"] == 1
        assert stats["failed_total"] == 1
        assert stats["depth"] == 0
        assert stats["running"] == 0


class TestPriorityAndAdmission:
    def test_higher_priority_dispatches_first(self, fresh_federation, blocker_algorithm):
        engine = ExperimentEngine(fresh_federation, max_concurrent=1)
        try:
            blocker_id = engine.submit(make_request(algorithm="test_blocker"))
            assert _Gate.entered.wait(timeout=30)
            # The executor is busy: these queue up and must dispatch by
            # priority, not submission order.
            low = engine.submit(make_request(name="low"), priority=0)
            high = engine.submit(make_request(name="high"), priority=5)
            _Gate.release.set()
            engine.wait(blocker_id, timeout=60)
            engine.wait(low, timeout=60)
            engine.wait(high, timeout=60)
            jobs = {s.job_id: s for s in engine.jobs()}
            assert jobs[high].wait_seconds < jobs[low].wait_seconds
        finally:
            _Gate.release.set()
            engine.shutdown(wait=False)

    def test_admission_control_rejects_overflow(self, fresh_federation, blocker_algorithm):
        engine = ExperimentEngine(fresh_federation, max_concurrent=1, max_queued=2)
        try:
            blocker_id = engine.submit(make_request(algorithm="test_blocker"))
            assert _Gate.entered.wait(timeout=30)
            engine.submit(make_request(name="q1"))
            engine.submit(make_request(name="q2"))
            with pytest.raises(QueueFullError, match="queue full"):
                engine.submit(make_request(name="overflow"))
            _Gate.release.set()
            engine.wait(blocker_id, timeout=60)
        finally:
            _Gate.release.set()
            engine.shutdown(wait=False)

    def test_wait_timeout(self, fresh_federation, blocker_algorithm):
        engine = ExperimentEngine(fresh_federation, max_concurrent=1)
        try:
            job_id = engine.submit(make_request(algorithm="test_blocker"))
            assert _Gate.entered.wait(timeout=30)
            with pytest.raises(TimeoutError):
                engine.wait(job_id, timeout=0.05)
            _Gate.release.set()
            result = engine.wait(job_id, timeout=60)
            assert result.status is ExperimentStatus.SUCCESS
        finally:
            _Gate.release.set()
            engine.shutdown(wait=False)


class TestCancellation:
    def test_pre_dispatch_cancel_is_guaranteed(self, fresh_federation, blocker_algorithm):
        engine = ExperimentEngine(fresh_federation, max_concurrent=1)
        try:
            blocker_id = engine.submit(make_request(algorithm="test_blocker"))
            assert _Gate.entered.wait(timeout=30)
            queued_id = engine.submit(make_request(name="victim"))
            assert engine.cancel(queued_id) is True
            # The result exists immediately, without waiting for dispatch.
            result = engine.get(queued_id)
            assert result.status is ExperimentStatus.CANCELLED
            assert "before dispatch" in result.error
            assert engine.queue.job(queued_id).state == "cancelled"
            _Gate.release.set()
            engine.wait(blocker_id, timeout=60)
            # The tombstone must not have consumed the executor.
            follow_up = engine.run(make_request(name="after"))
            assert follow_up.status is ExperimentStatus.SUCCESS
        finally:
            _Gate.release.set()
            engine.shutdown(wait=False)

    def test_mid_flow_cancel_is_cooperative(self, fresh_federation, blocker_algorithm):
        engine = ExperimentEngine(fresh_federation, max_concurrent=1)
        try:
            job_id = engine.submit(make_request(algorithm="test_blocker"))
            assert _Gate.entered.wait(timeout=30)
            assert engine.cancel(job_id) is True
            _Gate.release.set()
            result = engine.wait(job_id, timeout=60)
            assert result.status is ExperimentStatus.CANCELLED
            assert "cancelled mid-flow" in result.error
            # The flow got as far as its first step before cancelling.
            assert result.workers
        finally:
            _Gate.release.set()
            engine.shutdown(wait=False)

    def test_cancel_finished_job_returns_false(self, engine):
        result = engine.run(make_request())
        assert engine.cancel(result.experiment_id) is False

    def test_cancelled_audit_event_recorded(self, fresh_federation, blocker_algorithm):
        engine = ExperimentEngine(fresh_federation, max_concurrent=1)
        try:
            blocker_id = engine.submit(make_request(algorithm="test_blocker"))
            assert _Gate.entered.wait(timeout=30)
            queued_id = engine.submit(make_request())
            engine.cancel(queued_id)
            events = fresh_federation.master.audit.events(
                job_id=queued_id, event="experiment_cancelled"
            )
            assert events and events[0].details["pre_dispatch"] is True
            _Gate.release.set()
            engine.wait(blocker_id, timeout=60)
        finally:
            _Gate.release.set()
            engine.shutdown(wait=False)


class TestConcurrentExecution:
    def test_pool_runs_jobs_concurrently(self, fresh_federation):
        engine = ExperimentEngine(fresh_federation, max_concurrent=3)
        try:
            ids = [engine.submit(make_request(name=f"j{i}")) for i in range(3)]
            results = [engine.wait(job_id, timeout=120) for job_id in ids]
            assert all(r.status is ExperimentStatus.SUCCESS for r in results)
            # All three must have been dispatched nearly immediately.
            for snapshot in engine.jobs():
                assert snapshot.wait_seconds < 1.0
        finally:
            engine.shutdown(wait=False)

    def test_unhandled_exception_reraised_in_wait(self, fresh_federation):
        class Exploder(FederatedAlgorithm):
            name = "test_exploder"
            label = "Exploder"
            needs_y = "none"
            needs_x = "none"

            def run(self):
                raise ZeroDivisionError("boom")

        algorithm_registry.register(Exploder)
        engine = ExperimentEngine(fresh_federation)
        try:
            job_id = engine.submit(make_request(algorithm="test_exploder", y=()))
            with pytest.raises(ZeroDivisionError):
                engine.wait(job_id, timeout=60)
            # The executor thread survived and keeps serving.
            ok = engine.run(make_request())
            assert ok.status is ExperimentStatus.SUCCESS
            # The failure is still visible to pollers.
            assert engine.get(job_id).status is ExperimentStatus.ERROR
        finally:
            algorithm_registry._algorithms.pop("test_exploder", None)
            engine.shutdown(wait=False)
