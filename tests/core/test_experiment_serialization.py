"""JSON round-trips for the experiment dataclasses.

These forms are load-bearing: the durability journal persists requests and
terminal results verbatim, so a restart must reconstruct an object equal in
every field — including the audit trail, evictions, critical-path analysis
and profiler attachments added by later observability layers.
"""

from __future__ import annotations

import json

import pytest

from repro.core.experiment import (
    ExperimentRequest,
    ExperimentResult,
    ExperimentStatus,
    ExperimentTelemetry,
)


def full_result() -> ExperimentResult:
    request = ExperimentRequest(
        algorithm="linear_regression",
        data_model="dementia",
        datasets=("edsd", "adni"),
        y=("lefthippocampus",),
        x=("p_tau", "gender"),
        parameters={"positive_levels": ["M"]},
        filter_sql="age_value > 60",
        name="serialization-probe",
    )
    return ExperimentResult(
        experiment_id="exp_roundtrip",
        request=request,
        status=ExperimentStatus.SUCCESS,
        result={"n_obs": 211, "coefficients": [0.5, -0.25]},
        error=None,
        elapsed_seconds=1.25,
        workers=("hospital_a", "hospital_b"),
        telemetry=ExperimentTelemetry(
            messages=12,
            bytes_sent=4096,
            simulated_network_seconds=0.75,
            smpc_rounds=3,
            smpc_elements=42,
        ),
        audit=({"event": "privacy_spend", "epsilon": 0.5},),
        evicted=("hospital_c",),
        critical_path={"total_seconds": 1.0, "path": ["n1", "n2"]},
        profile="flow;local 3\nflow;global 1",
        dedup_hits=2,
    )


class TestResultRoundTrip:
    def test_full_round_trip_preserves_every_field(self):
        original = full_result()
        # Through actual JSON text, not just dicts — what the journal stores.
        revived = ExperimentResult.from_dict(
            json.loads(json.dumps(original.to_dict()))
        )
        assert revived == original
        assert revived.to_dict() == original.to_dict()

    def test_round_trip_restores_types(self):
        revived = ExperimentResult.from_dict(full_result().to_dict())
        assert revived.status is ExperimentStatus.SUCCESS
        assert isinstance(revived.workers, tuple)
        assert isinstance(revived.evicted, tuple)
        assert isinstance(revived.audit, tuple)
        assert isinstance(revived.telemetry, ExperimentTelemetry)

    def test_minimal_payload_uses_defaults(self):
        payload = {
            "experiment_id": "exp_min",
            "request": {"algorithm": "descriptive_stats", "data_model": "dementia"},
            "status": "error",
        }
        revived = ExperimentResult.from_dict(payload)
        assert revived.status is ExperimentStatus.ERROR
        assert revived.result == {}
        assert revived.audit == ()
        assert revived.evicted == ()
        assert revived.critical_path is None
        assert revived.profile is None
        assert revived.dedup_hits == 0

    def test_unknown_status_rejected(self):
        payload = full_result().to_dict()
        payload["status"] = "exploded"
        with pytest.raises(ValueError):
            ExperimentResult.from_dict(payload)


class TestRequestRoundTrip:
    def test_request_round_trip(self):
        request = full_result().request
        assert ExperimentRequest.from_dict(request.to_dict()) == request

    def test_request_to_dict_is_json_ready(self):
        text = json.dumps(full_result().request.to_dict(), sort_keys=True)
        assert '"filter_sql": "age_value > 60"' in text


class TestTelemetryRoundTrip:
    def test_telemetry_round_trip(self):
        telemetry = full_result().telemetry
        assert ExperimentTelemetry.from_dict(telemetry.to_dict()) == telemetry

    def test_empty_payload_is_zeroed(self):
        assert ExperimentTelemetry.from_dict({}) == ExperimentTelemetry()
