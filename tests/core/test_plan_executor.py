"""The plan executor's step cache: in-flight dedup, refcounts, invalidation."""

import threading

import pytest

from repro.core.experiment import ExperimentEngine, ExperimentRequest
from repro.core.plan_executor import StepCache
from repro.errors import ExperimentCancelledError


def outputs_for(job: str) -> list[dict]:
    return [{"kind": "transfer", "tables": {"w1": f"{job}_s1_0_w1"}}]


class TestStepCacheBasics:
    def test_miss_then_publish_then_hit(self):
        cache = StepCache()
        claim = cache.acquire("fp1", "jobA")
        assert not claim.hit
        cache.publish("fp1", "jobA", outputs_for("jobA"), epoch=0)
        again = cache.acquire("fp1", "jobB")
        assert again.hit
        assert again.owner == "jobA"
        assert again.outputs == outputs_for("jobA")
        assert cache.stats() == {"hits": 1, "misses": 1, "entries": 1}

    def test_fail_lets_the_next_caller_own(self):
        cache = StepCache()
        cache.acquire("fp1", "jobA")
        cache.fail("fp1", "jobA")
        claim = cache.acquire("fp1", "jobB")
        assert not claim.hit
        assert cache.stats()["misses"] == 2

    def test_publish_by_non_owner_is_ignored(self):
        cache = StepCache()
        cache.acquire("fp1", "jobA")
        cache.publish("fp1", "jobB", outputs_for("jobB"), epoch=0)
        # Still computing: a waiter would block, so verify via release_job.
        keep, _ = cache.release_job("jobA", epoch=0)
        assert keep == []
        assert cache.stats()["entries"] == 0


class TestInFlightDedup:
    def test_waiter_receives_published_result(self):
        cache = StepCache()
        cache.acquire("fp1", "jobA")
        got = {}

        def wait_for_it():
            got["claim"] = cache.acquire("fp1", "jobB")

        waiter = threading.Thread(target=wait_for_it)
        waiter.start()
        cache.publish("fp1", "jobA", outputs_for("jobA"), epoch=0)
        waiter.join(timeout=10)
        assert not waiter.is_alive()
        assert got["claim"].hit
        assert got["claim"].outputs == outputs_for("jobA")

    def test_waiter_takes_over_after_failure(self):
        cache = StepCache()
        cache.acquire("fp1", "jobA")
        got = {}

        def wait_for_it():
            got["claim"] = cache.acquire("fp1", "jobB")

        waiter = threading.Thread(target=wait_for_it)
        waiter.start()
        cache.fail("fp1", "jobA")
        waiter.join(timeout=10)
        assert not waiter.is_alive()
        assert not got["claim"].hit

    def test_waiter_observes_its_own_cancellation(self):
        cache = StepCache()
        cache.acquire("fp1", "jobA")
        cancel = threading.Event()
        got = {}

        def wait_for_it():
            try:
                cache.acquire("fp1", "jobB", cancel_event=cancel)
            except ExperimentCancelledError as error:
                got["error"] = error

        waiter = threading.Thread(target=wait_for_it)
        waiter.start()
        cancel.set()
        waiter.join(timeout=10)
        assert not waiter.is_alive()
        assert "jobB" in str(got["error"])


class TestReleaseJob:
    def test_owner_keeps_tables_backing_live_entries(self):
        cache = StepCache()
        cache.acquire("fp1", "jobA")
        cache.publish("fp1", "jobA", outputs_for("jobA"), epoch=3)
        keep, drops = cache.release_job("jobA", epoch=3)
        # Same epoch: the entry stays cached, so its tables must survive
        # the owner's job-prefix cleanup.
        assert keep == ["jobA_s1_0_w1"]
        assert drops == {}
        assert cache.stats()["entries"] == 1

    def test_stale_epoch_entries_die_on_release(self):
        cache = StepCache()
        cache.acquire("fp1", "jobA")
        cache.publish("fp1", "jobA", outputs_for("jobA"), epoch=3)
        keep, drops = cache.release_job("jobA", epoch=4)
        # The owner's own cleanup drops its tables; nothing to keep or drop.
        assert keep == [] and drops == {}
        assert cache.stats()["entries"] == 0

    def test_stale_entries_of_other_jobs_report_drops(self):
        cache = StepCache()
        cache.acquire("fp1", "jobA")
        cache.publish("fp1", "jobA", outputs_for("jobA"), epoch=3)
        cache.release_job("jobA", epoch=3)  # jobA gone, entry unreferenced
        _, drops = cache.release_job("jobB", epoch=4)
        assert drops == {"w1": ["jobA_s1_0_w1"]}

    def test_computing_entry_of_dead_owner_is_buried(self):
        cache = StepCache()
        cache.acquire("fp1", "jobA")  # owner never publishes nor fails
        cache.release_job("jobA", epoch=0)
        claim = cache.acquire("fp1", "jobB")  # must not wedge forever
        assert not claim.hit

    def test_lru_eviction_over_capacity(self):
        cache = StepCache(capacity=2)
        for index in range(4):
            fp = f"fp{index}"
            cache.acquire(fp, "jobA")
            cache.publish(
                fp, "jobA",
                [{"kind": "transfer", "tables": {"w1": f"jobA_s{index}_0_w1"}}],
                epoch=0,
            )
        keep, _ = cache.release_job("jobA", epoch=0)
        assert cache.stats()["entries"] == 2
        # The survivors are the two newest entries; only their tables kept.
        assert keep == ["jobA_s2_0_w1", "jobA_s3_0_w1"]


DEMO = dict(
    algorithm="descriptive_stats",
    data_model="dementia",
    datasets=("edsd", "adni", "ppmi"),
    y=("p_tau",),
)


def run_once(federation, cache, **overrides):
    request = ExperimentRequest(**{**DEMO, **overrides})
    engine = ExperimentEngine(federation, aggregation="plain", plan_cache=cache)
    try:
        result = engine.run(request)
    finally:
        engine.shutdown()
    assert result.status.value == "success", result.error
    return result


class TestCrossExperimentDedup:
    def test_identical_experiments_share_local_steps(self, fresh_federation):
        cache = StepCache()
        first = run_once(fresh_federation, cache)
        second = run_once(fresh_federation, cache)
        assert first.dedup_hits == 0
        assert second.dedup_hits > 0
        assert second.result == first.result
        stats = cache.stats()
        assert stats["hits"] == second.dedup_hits
        hits = [e for e in second.audit if e["event"] == "plan_cache_hit"]
        assert hits and all(e["node"] == "master" for e in hits)

    def test_different_cohorts_never_hit(self, fresh_federation):
        cache = StepCache()
        run_once(fresh_federation, cache)
        other = run_once(fresh_federation, cache, datasets=("edsd", "adni"))
        assert other.dedup_hits == 0

    def test_catalog_epoch_invalidates(self, fresh_federation):
        cache = StepCache()
        run_once(fresh_federation, cache)
        epoch = fresh_federation.master.catalog_epoch
        fresh_federation.set_worker_down("hospital_c", True)
        fresh_federation.set_worker_down("hospital_c", False)
        assert fresh_federation.master.catalog_epoch > epoch
        after = run_once(fresh_federation, cache)
        assert after.dedup_hits == 0

    def test_disabled_by_default(self, fresh_federation):
        first = run_once(fresh_federation, None)
        second = run_once(fresh_federation, None)
        assert first.dedup_hits == 0 and second.dedup_hits == 0

    def test_cache_metrics_exposed(self, fresh_federation):
        run_once(fresh_federation, fresh_federation.plan_cache)
        run_once(fresh_federation, fresh_federation.plan_cache)
        snapshot = fresh_federation.metrics_registry().snapshot()
        assert snapshot["repro_plan_cache_hits_total"] > 0
        assert snapshot["repro_plan_cache_misses_total"] > 0
        assert "repro_plan_cache_entries" in snapshot
        assert 0.0 < snapshot["repro_plan_cache_hit_ratio"] < 1.0

    def test_dedup_hits_surface_on_job_snapshots(self, fresh_federation):
        cache = StepCache()
        request = ExperimentRequest(**DEMO)
        engine = ExperimentEngine(fresh_federation, aggregation="plain",
                                  plan_cache=cache)
        try:
            engine.run(request)
            engine.run(request)
            snapshots = engine.jobs()
        finally:
            engine.shutdown()
        assert snapshots[0].dedup_hits == 0
        assert snapshots[1].dedup_hits > 0
        assert snapshots[1].to_dict()["dedup_hits"] == snapshots[1].dedup_hits
        assert snapshots[1].queued_seconds >= 0.0


class TestFlowModeValidation:
    def test_unknown_flow_mode_rejected(self, fresh_federation):
        engine = ExperimentEngine(fresh_federation, aggregation="plain",
                                  flow_mode="speculative")
        try:
            result = engine.run(ExperimentRequest(**DEMO))
        finally:
            engine.shutdown()
        assert result.status.value == "error"
        assert "unknown flow mode" in result.error

    def test_pipeline_mode_runs_clean(self, fresh_federation):
        engine = ExperimentEngine(fresh_federation, aggregation="plain",
                                  flow_mode="pipeline")
        try:
            result = engine.run(ExperimentRequest(**DEMO))
        finally:
            engine.shutdown()
        assert result.status.value == "success", result.error
        assert result.dedup_hits == 0
