"""Golden flow plans: the recorded DAG of every algorithm, diffed in CI.

Each registered algorithm's demo request is executed once (eager, no cache,
pinned cohorts and seed) and its plan's canonical JSON is compared against
the committed golden under ``tests/golden_plans/``.  An accidental change
to an algorithm's flow shape — an extra step, a lost dependency edge, a
different aggregation path — shows up as a golden diff instead of slipping
through silently.

Regenerate after an *intentional* flow change with::

    REPRO_UPDATE_GOLDENS=1 PYTHONPATH=src python -m pytest tests/core/test_golden_plans.py
"""

import itertools
import json
import os
import pathlib

import pytest

from repro.api.demo import DEMO_REQUESTS, demo_request
from repro.core.experiment import ExperimentRequest
from repro.core.runner import ExperimentRunner
from repro.data.cohorts import CohortSpec, generate_cohort
from repro.federation.controller import FederationConfig, create_federation

import repro.algorithms  # noqa: F401

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent.parent / "golden_plans"
DATASETS = ("edsd", "adni", "ppmi")

_seq = itertools.count()


@pytest.fixture(scope="module")
def golden_federation():
    worker_data = {
        "hospital_a": {"dementia": generate_cohort(CohortSpec("edsd", 60, seed=11))},
        "hospital_b": {"dementia": generate_cohort(CohortSpec("adni", 60, seed=22))},
        "hospital_c": {"dementia": generate_cohort(CohortSpec("ppmi", 60, seed=33))},
    }
    federation = create_federation(
        worker_data, FederationConfig(smpc_nodes=3, smpc_scheme="shamir", seed=0)
    )
    yield federation
    federation.shutdown()


def record_plan(federation, algorithm: str) -> str:
    demo = demo_request(algorithm)
    request = ExperimentRequest(
        algorithm=algorithm,
        data_model="dementia",
        datasets=DATASETS,
        y=demo["y"],
        x=demo["x"],
        parameters=demo["parameters"],
    )
    runner = ExperimentRunner(
        federation, aggregation="plain", flow_mode="eager", plan_cache=None
    )
    info = {}
    runner.execute(request, f"plan{next(_seq)}", info=info)
    return json.dumps(info["plan"].to_json(), indent=2, sort_keys=True) + "\n"


@pytest.mark.parametrize("algorithm", sorted(DEMO_REQUESTS))
def test_golden_plan(golden_federation, algorithm):
    rendered = record_plan(golden_federation, algorithm)
    path = GOLDEN_DIR / f"{algorithm}.json"
    if os.environ.get("REPRO_UPDATE_GOLDENS"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(rendered)
        return
    assert path.exists(), (
        f"no golden plan for {algorithm!r}; regenerate with "
        "REPRO_UPDATE_GOLDENS=1"
    )
    assert path.read_text() == rendered, (
        f"flow plan for {algorithm!r} changed; if intentional, regenerate "
        "with REPRO_UPDATE_GOLDENS=1"
    )


def test_no_stale_goldens():
    """Every committed golden corresponds to a registered algorithm."""
    committed = {path.stem for path in GOLDEN_DIR.glob("*.json")}
    assert committed <= set(DEMO_REQUESTS), (
        f"stale golden plans: {sorted(committed - set(DEMO_REQUESTS))}"
    )


def test_plan_recording_is_deterministic(golden_federation):
    """Two recordings of the same flow render byte-identically."""
    first = record_plan(golden_federation, "pca")
    second = record_plan(golden_federation, "pca")
    assert first == second
