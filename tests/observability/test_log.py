"""The structured JSON-lines logger and its level knob."""

import io
import json

import pytest

from repro.observability.log import LOG_LEVEL_ENV, configure, get_logger


@pytest.fixture
def capture():
    stream = io.StringIO()
    configure(level="info", stream=stream)
    yield stream
    configure()  # restore env-driven defaults


def lines(stream):
    return [json.loads(line) for line in stream.getvalue().splitlines()]


class TestStructuredLogger:
    def test_emits_json_lines(self, capture):
        log = get_logger("test.module")
        log.info("round_finished", round=3, loss=0.41)
        (record,) = lines(capture)
        assert record["logger"] == "test.module"
        assert record["event"] == "round_finished"
        assert record["round"] == 3
        assert record["loss"] == 0.41
        assert record["level"] == "info"
        assert "ts" in record

    def test_threshold_filters(self, capture):
        log = get_logger("test.module")
        log.debug("hidden")
        log.warning("shown")
        assert [r["event"] for r in lines(capture)] == ["shown"]

    def test_env_variable_controls_default_level(self, monkeypatch):
        stream = io.StringIO()
        configure(level=None, stream=stream)  # stream override, env level
        try:
            monkeypatch.setenv(LOG_LEVEL_ENV, "debug")
            get_logger("t").debug("now_visible")
            monkeypatch.setenv(LOG_LEVEL_ENV, "error")
            get_logger("t").warning("now_hidden")
        finally:
            configure()
        assert [r["event"] for r in lines(stream)] == ["now_visible"]

    def test_default_threshold_is_warning(self, monkeypatch):
        stream = io.StringIO()
        configure(level=None, stream=stream)
        try:
            monkeypatch.delenv(LOG_LEVEL_ENV, raising=False)
            log = get_logger("t")
            log.info("quiet")
            log.warning("loud")
        finally:
            configure()
        assert [r["event"] for r in lines(stream)] == ["loud"]

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            configure(level="verbose")

    def test_get_logger_is_cached(self):
        assert get_logger("same") is get_logger("same")

    def test_non_json_values_stringified(self, capture):
        get_logger("t").info("e", obj={1, 2}.__class__)
        (record,) = lines(capture)
        assert "class" in record["obj"]
