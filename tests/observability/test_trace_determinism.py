"""Tracing determinism and end-to-end observability through the stack.

The transport pre-draws its drop/jitter schedules in request order, so with
the same seed a flow produces the same span *structure* at any fan-out
parallelism — only timestamps and thread placement differ.  The chaos-suite
federations exercise the lossy paths: spans must record retries and audit
logs must record evictions.
"""

import json

import pytest

from repro.federation.policy import FailurePolicy
from repro.observability.trace import normalized_tree, tracer
from tests.chaos.harness import (
    build_chaos_federation,
    chaos_worker_data,
    run_experiment,
)


@pytest.fixture
def tracing():
    """Enable the process tracer for one test, restoring the prior state."""
    was_enabled = tracer.enabled
    tracer.reset()
    tracer.enable()
    yield tracer
    tracer.reset()
    if not was_enabled:
        tracer.disable()


def traced_run(
    *,
    seed,
    parallelism,
    drop_probability=0.0,
    retries=0,
    algorithm="pearson_correlation",
    y=("lefthippocampus", "righthippocampus"),
    x=(),
):
    tracer.reset()
    federation = build_chaos_federation(
        chaos_worker_data(rows=60),
        drop_probability=drop_probability,
        seed=seed,
        policy=FailurePolicy(retries=retries, on_worker_loss="degrade", min_workers=1),
        parallelism=parallelism,
    )
    result = run_experiment(federation, algorithm, y=y, x=x)
    return federation, result, normalized_tree()


class TestDeterminism:
    def test_same_seed_same_tree_at_any_parallelism(self, tracing):
        _, result_seq, tree_seq = traced_run(seed=101, parallelism=1)
        _, result_par, tree_par = traced_run(seed=101, parallelism=8)
        assert result_seq.status.value == "success"
        assert result_par.status.value == "success"
        assert tree_seq == tree_par

    def test_lossy_runs_stay_deterministic(self, tracing):
        runs = [
            traced_run(seed=7, parallelism=p, drop_probability=0.15, retries=3)[2]
            for p in (1, 8)
        ]
        assert runs[0] == runs[1]

    def test_different_seeds_differ(self, tracing):
        _, _, one = traced_run(seed=1, parallelism=1, drop_probability=0.3, retries=2)
        _, _, two = traced_run(seed=2, parallelism=1, drop_probability=0.3, retries=2)
        # With 30% drops the retry pattern virtually surely differs.
        assert one != two


class TestSpanCoverage:
    def test_trace_covers_every_layer(self, tracing):
        _, result, _ = traced_run(
            seed=5,
            parallelism=4,
            algorithm="linear_regression",
            y=("lefthippocampus",),
            x=("agevalue",),
        )
        assert result.status.value == "success"
        names = {span.name for span in tracer.spans()}
        assert {
            "experiment",
            "flow.local_step",
            "flow.global_step",
            "master.fan_out",
            "transport.fanout",
            "transport.send",
            "worker.handle",
            "udf.generate",
            "udf.execute",
        } <= names

    def test_spans_record_retries(self, tracing):
        traced_run(seed=7, parallelism=4, drop_probability=0.25, retries=3)
        retried = [
            span
            for span in tracer.spans()
            if span.name == "transport.send" and span.attributes.get("retries")
        ]
        assert retried, "a 25% drop rate must force at least one retry"

    def test_chrome_export_is_valid_after_chaos(self, tracing):
        traced_run(seed=7, parallelism=4, drop_probability=0.25, retries=3)
        trace = tracer.export_chrome()
        text = json.dumps(trace)
        parsed = json.loads(text)
        assert parsed["traceEvents"], "chaos trace must contain events"
        assert all(e["ph"] == "X" for e in parsed["traceEvents"])


class TestAuditThroughChaos:
    def test_eviction_recorded_in_audit(self, tracing):
        federation = build_chaos_federation(
            chaos_worker_data(rows=60),
            drop_probability=0.0,
            seed=3,
            policy=FailurePolicy(retries=0, on_worker_loss="degrade", min_workers=1),
            parallelism=2,
        )
        federation.set_worker_down("hospital_b")
        # The catalog excludes the dead worker, so force it back into the plan.
        from tests.chaos.harness import run_algorithm_on_context

        result, context = run_algorithm_on_context(
            federation,
            {"hospital_a": ["edsd"], "hospital_b": ["adni"], "hospital_c": ["ppmi"]},
            "pearson_correlation",
            y=("lefthippocampus", "righthippocampus"),
            job_prefix="exp_audit_evict",
        )
        assert context.evicted
        evictions = federation.master.audit.events(event="worker_evicted")
        assert evictions
        assert "hospital_b" in evictions[0].details["workers"]

    def test_experiment_result_carries_merged_audit(self, tracing):
        federation, result, _ = traced_run(seed=9, parallelism=2)
        assert result.audit, "experiment results must carry their audit trail"
        events = {entry["event"] for entry in result.audit}
        assert {"experiment_started", "dataset_read", "rows_contributed",
                "experiment_finished"} <= events
        nodes = {entry["node"] for entry in result.audit}
        assert "master" in nodes
        assert any(node.startswith("hospital_") for node in nodes)
