"""Critical-path analysis on hand-built span trees.

Each scenario mirrors a real trace shape the queue produces: serial steps,
parallel fan-out, retries inside a send, and an eviction leaving an
unfinished span behind.  Times are synthetic so every expected segment is
exact.
"""

import json

import pytest

from repro.observability.critical_path import (
    CriticalPathReport,
    analyze,
    analyze_experiment,
)
from repro.observability.trace import tracer


def span(name, start, end, children=(), span_id=None, **attributes):
    """A node in the shape Tracer.span_tree() exports."""
    return {
        "name": name,
        "span_id": span_id,
        "start_wall": start,
        "end_wall": end,
        "start_sim": 0.0,
        "end_sim": 0.0,
        "attributes": attributes,
        "children": list(children),
    }


def chain_names(report):
    return [(s.name, s.kind) for s in report.segments]


class TestSerial:
    def test_children_tiling_the_root_exactly(self):
        root = span("experiment", 0.0, 10.0, [
            span("validate", 0.0, 4.0),
            span("execute", 4.0, 10.0),
        ])
        report = analyze(root)
        assert chain_names(report) == [("validate", "span"), ("execute", "span")]
        assert report.chain_duration == pytest.approx(10.0)
        assert report.reconciliation == pytest.approx(1.0)

    def test_gaps_become_parent_self_time(self):
        root = span("experiment", 0.0, 10.0, [span("step", 2.0, 5.0)])
        report = analyze(root)
        assert chain_names(report) == [
            ("experiment", "self"),
            ("step", "span"),
            ("experiment", "self"),
        ]
        durations = [s.duration for s in report.segments]
        assert durations == pytest.approx([2.0, 3.0, 5.0])
        assert report.reconciliation == pytest.approx(1.0)

    def test_self_vs_wait_attribution(self):
        root = span("experiment", 0.0, 10.0, [span("step", 2.0, 5.0)])
        report = analyze(root)
        by_kind = {k.name: k for k in report.by_kind}
        assert by_kind["experiment"].self_time == pytest.approx(7.0)
        assert by_kind["experiment"].wait_time == pytest.approx(3.0)
        assert by_kind["step"].self_time == pytest.approx(3.0)
        assert by_kind["step"].wait_time == pytest.approx(0.0)


class TestParallel:
    def fanout(self):
        return span("experiment", 0.0, 10.0, [
            span("transport.fanout", 0.0, 9.0, [
                span("transport.send", 0.0, 3.0, receiver="worker-1"),
                span("transport.send", 0.0, 9.0, receiver="worker-2"),
                span("transport.send", 0.0, 5.0, receiver="worker-3"),
            ]),
        ])

    def test_only_the_last_finisher_blocks(self):
        report = analyze(self.fanout())
        # worker-2's send is the blocker; its parallel siblings never appear.
        send_segments = [s for s in report.segments if s.name == "transport.send"]
        assert [s.worker for s in send_segments] == ["worker-2"]
        assert send_segments[0].duration == pytest.approx(9.0)
        assert report.reconciliation == pytest.approx(1.0)

    def test_straggler_ranking(self):
        report = analyze(self.fanout())
        workers = {w.worker: w for w in report.workers}
        assert workers["worker-2"].critical == pytest.approx(9.0)
        assert workers["worker-1"].critical == pytest.approx(0.0)
        # slowest total (9) over median total (5)
        assert report.straggler_factor == pytest.approx(9.0 / 5.0)
        assert report.workers[0].worker == "worker-2"

    def test_headline_names_the_dominant_segment(self):
        headline = analyze(self.fanout()).headline()
        assert "transport.send" in headline
        assert "worker-2" in headline
        assert "90%" in headline

    def test_fanout_self_time_excludes_overlapping_children(self):
        report = analyze(self.fanout())
        by_kind = {k.name: k for k in report.by_kind}
        # children cover [0, 9] as a union despite overlapping
        assert by_kind["transport.fanout"].self_time == pytest.approx(0.0)
        assert by_kind["transport.fanout"].wait_time == pytest.approx(9.0)


class TestRetry:
    def test_retry_attempts_stack_inside_a_send(self):
        root = span("transport.send", 0.0, 10.0, [
            span("attempt", 0.0, 4.0, outcome="timeout"),
            span("attempt", 6.0, 10.0, outcome="ok"),
        ], receiver="worker-1")
        report = analyze(root)
        assert chain_names(report) == [
            ("attempt", "span"),
            ("transport.send", "self"),  # backoff gap between attempts
            ("attempt", "span"),
        ]
        durations = [s.duration for s in report.segments]
        assert durations == pytest.approx([4.0, 2.0, 4.0])
        assert report.reconciliation == pytest.approx(1.0)


class TestEviction:
    def test_unfinished_span_is_skipped_but_chain_still_tiles(self):
        root = span("experiment", 0.0, 10.0, [
            span("transport.send", 0.0, 3.0, receiver="worker-1"),
            # evicted mid-flight: the span never closed
            span("transport.send", 0.0, None, receiver="worker-2"),
        ])
        report = analyze(root)
        assert chain_names(report) == [
            ("transport.send", "span"),
            ("experiment", "self"),
        ]
        assert report.reconciliation == pytest.approx(1.0)
        workers = {w.worker for w in report.workers}
        assert workers == {"worker-1"}


class TestFacade:
    def test_picks_the_heaviest_matching_root(self):
        roots = [
            span("experiment.queued", 0.0, 50.0),
            span("experiment", 0.0, 10.0),
            span("experiment", 20.0, 24.0),
        ]
        report = analyze(roots, root_name="experiment")
        assert report.root_name == "experiment"
        assert report.root_duration == pytest.approx(10.0)

    def test_empty_buffer_yields_empty_report(self):
        report = analyze([], root_name="experiment")
        assert report.segments == []
        assert report.reconciliation == pytest.approx(1.0)
        assert "empty critical path" in report.headline()

    def test_rejects_unknown_clock(self):
        with pytest.raises(ValueError):
            analyze([], clock="cpu")

    def test_zero_width_sim_clock_emits_marker_segment(self):
        root = span("experiment", 0.0, 10.0)
        report = analyze(root, clock="sim")
        assert report.root_duration == 0.0
        assert [s.duration for s in report.segments] == [0.0]
        assert report.reconciliation == pytest.approx(1.0)

    def test_export_round_trip(self):
        root = span("experiment", 0.0, 10.0, [span("step", 0.0, 10.0)])
        report = analyze(root)
        payload = json.loads(report.to_json())
        assert payload["reconciliation"] == pytest.approx(1.0)
        assert payload["root"] == "experiment"
        assert payload["segments"][0]["name"] == "step"
        rendered = report.render()
        assert "critical path" in rendered
        assert "step" in rendered

    def test_report_is_pure_over_input(self):
        root = span("experiment", 0.0, 10.0, [span("step", 0.0, 5.0)])
        before = json.dumps(root, sort_keys=True)
        analyze(root)
        assert json.dumps(root, sort_keys=True) == before


class TestLiveTracer:
    def test_analyze_experiment_matches_attribute(self):
        was_enabled = tracer.enabled
        tracer.reset()
        tracer.enable()
        try:
            with tracer.span("experiment", experiment="exp-1"):
                with tracer.span("step"):
                    pass
            with tracer.span("experiment", experiment="exp-2"):
                pass
            report = analyze_experiment("exp-1")
            assert report is not None
            assert report.root_name == "experiment"
            assert analyze_experiment("exp-missing") is None
        finally:
            tracer.reset()
            if not was_enabled:
                tracer.disable()

    def test_tracer_critical_path_accessor(self):
        was_enabled = tracer.enabled
        tracer.reset()
        tracer.enable()
        try:
            with tracer.span("experiment"):
                pass
            report = tracer.critical_path()
            assert isinstance(report, CriticalPathReport)
            assert report.root_name == "experiment"
        finally:
            tracer.reset()
            if not was_enabled:
                tracer.disable()
