"""The append-only audit log and cross-node merging."""

from repro.observability.audit import AuditLog, merged_events


class TestAuditLog:
    def test_record_and_query(self):
        log = AuditLog("hospital_a")
        log.record("dataset_read", job_id="exp_1_s1", rows=120)
        log.record("aggregate_shared", job_id="exp_1_s2", table="t")
        log.record("dataset_read", job_id="exp_2_s1", rows=50)
        assert len(log) == 3
        assert len(log.events(event="dataset_read")) == 2

    def test_experiment_prefix_match(self):
        log = AuditLog("master")
        log.record("experiment_started", job_id="exp_1")
        log.record("secure_aggregate", job_id="exp_1_s3_x")
        log.record("experiment_started", job_id="exp_10")  # not a prefix match
        events = log.events(job_id="exp_1")
        assert [e.job_id for e in events] == ["exp_1", "exp_1_s3_x"]

    def test_sequence_is_monotonic(self):
        log = AuditLog("n")
        entries = [log.record("e") for _ in range(5)]
        assert [e.seq for e in entries] == [0, 1, 2, 3, 4]

    def test_details_are_copied_out(self):
        log = AuditLog("n")
        log.record("e", rows=1)
        first = log.to_dicts()[0]
        first["details"]["rows"] = 999
        assert log.to_dicts()[0]["details"]["rows"] == 1

    def test_events_without_job_id_are_excluded_from_job_queries(self):
        log = AuditLog("n")
        log.record("global_event")
        assert log.events(job_id="exp_1") == []
        assert len(log.events()) == 1


class TestMergedEvents:
    def test_merge_orders_by_time_then_node(self):
        a, b = AuditLog("a"), AuditLog("b")
        a.record("first", job_id="exp_1")
        b.record("second", job_id="exp_1_s1")
        a.record("third", job_id="exp_1_s2")
        merged = merged_events([a, b], job_id="exp_1")
        assert sorted(e["event"] for e in merged) == ["first", "second", "third"]
        keys = [(e["wall_time"], e["node"], e["seq"]) for e in merged]
        assert keys == sorted(keys)

    def test_merge_filters_by_event(self):
        a, b = AuditLog("a"), AuditLog("b")
        a.record("dataset_read", job_id="j")
        b.record("aggregate_shared", job_id="j")
        merged = merged_events([a, b], event="dataset_read")
        assert [e["node"] for e in merged] == ["a"]
