"""The span tracer: nesting, errors, exports, disabled-mode behavior."""

import json
import threading

import pytest

from repro.observability.trace import NULL_SPAN, Tracer, normalized_tree


@pytest.fixture
def tracer():
    return Tracer(enabled=True)


class TestSpans:
    def test_nesting_and_ids(self, tracer):
        with tracer.span("outer", kind="flow") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert inner.trace_id == outer.trace_id
        assert outer.parent_id is None
        assert outer.end_wall is not None and outer.end_wall >= outer.start_wall

    def test_sibling_roots_get_distinct_traces(self, tracer):
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        first, second = tracer.spans()
        assert first.trace_id != second.trace_id

    def test_current_follows_the_stack(self, tracer):
        assert tracer.current() is None
        with tracer.span("a") as a:
            assert tracer.current() is a
            with tracer.span("b") as b:
                assert tracer.current() is b
            assert tracer.current() is a
        assert tracer.current() is None

    def test_explicit_parent_crosses_threads(self, tracer):
        with tracer.span("fanout") as group:
            child_ids = []

            def work():
                with tracer.span("send", parent=group) as child:
                    child_ids.append((child.parent_id, child.trace_id))

            thread = threading.Thread(target=work)
            thread.start()
            thread.join()
        assert child_ids == [(group.span_id, group.trace_id)]

    def test_exception_marks_error(self, tracer):
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("nope")
        (span,) = tracer.spans()
        assert span.status == "error"
        assert "ValueError" in span.error

    def test_set_error_without_raising(self, tracer):
        with tracer.span("soft") as span:
            span.set_error("degraded")
        assert tracer.spans()[0].status == "error"

    def test_attributes(self, tracer):
        with tracer.span("s", a=1) as span:
            span.set_attribute("b", [2, 3])
        assert tracer.spans()[0].attributes == {"a": 1, "b": [2, 3]}


class TestDisabled:
    def test_disabled_returns_shared_null_span(self):
        tracer = Tracer(enabled=False)
        span = tracer.span("anything", x=1)
        assert span is NULL_SPAN
        with span as entered:
            entered.set_attribute("k", "v")
            entered.set_error("ignored")
        assert tracer.spans() == []

    def test_enable_disable_round_trip(self):
        tracer = Tracer(enabled=False)
        tracer.enable()
        with tracer.span("real"):
            pass
        tracer.disable()
        assert tracer.span("fake") is NULL_SPAN
        assert len(tracer.spans()) == 1

    def test_reset_clears_buffer(self):
        tracer = Tracer(enabled=True)
        with tracer.span("a"):
            pass
        tracer.reset()
        assert tracer.spans() == []
        with tracer.span("b") as span:
            assert span.span_id == 1


class TestExports:
    def test_export_json_is_flat_and_linked(self, tracer):
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        flat = tracer.export_json()
        assert [s["name"] for s in flat] == ["outer", "inner"]
        assert flat[1]["parent_id"] == flat[0]["span_id"]
        json.dumps(flat)  # JSON-serializable

    def test_export_chrome_format(self, tracer):
        with tracer.span("outer", step="s1"):
            with tracer.span("inner"):
                pass
        trace = tracer.export_chrome()
        events = trace["traceEvents"]
        assert len(events) == 2
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] >= 0 and event["dur"] >= 0
            assert "sim_seconds" in event["args"]
        assert events[0]["args"]["step"] == "s1"
        json.dumps(trace)

    def test_chrome_error_category(self, tracer):
        with tracer.span("bad") as span:
            span.set_error("broken")
        (event,) = tracer.export_chrome()["traceEvents"]
        assert "error" in event["cat"]
        assert event["args"]["error"] == "broken"

    def test_span_tree_nests_children(self, tracer):
        with tracer.span("root"):
            with tracer.span("left"):
                pass
            with tracer.span("right"):
                pass
        (root,) = tracer.span_tree()
        assert root["name"] == "root"
        assert sorted(c["name"] for c in root["children"]) == ["left", "right"]

    def test_simulated_clock(self, tracer):
        clock = {"now": 1.0}
        tracer.sim_clock = lambda: clock["now"]
        with tracer.span("timed") as span:
            clock["now"] = 3.5
        assert span.start_sim == 1.0
        assert span.end_sim == 3.5


class TestNormalizedTree:
    def test_ignores_sibling_order_and_unstable_attrs(self, tracer):
        with tracer.span("root"):
            with tracer.span("child", receiver="a", plan_cache="hit"):
                pass
            with tracer.span("child", receiver="b", plan_cache="miss"):
                pass
        first = normalized_tree(tracer.span_tree())

        other = Tracer(enabled=True)
        with other.span("root"):
            with other.span("child", receiver="b", plan_cache="hit"):
                pass
            with other.span("child", receiver="a", plan_cache="miss"):
                pass
        assert normalized_tree(other.span_tree()) == first

    def test_distinguishes_structure(self, tracer):
        with tracer.span("root"):
            with tracer.span("child", retries=1):
                pass
        one = normalized_tree(tracer.span_tree())
        other = Tracer(enabled=True)
        with other.span("root"):
            with other.span("child", retries=2):
                pass
        assert normalized_tree(other.span_tree()) != one
