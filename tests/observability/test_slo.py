"""SLO baselines and the health comparator: edges the CI gate leans on."""

import json

import pytest

from repro.observability.metrics import MetricsRegistry
from repro.observability.slo import (
    BaselineStore,
    BenchResult,
    HealthReport,
    Verdict,
    compare,
    evaluate,
    load_bench_results,
    percentile,
    quantiles_from_histogram,
)


def bench(name="b", samples=(1.0, 2.0, 3.0), **config):
    return BenchResult.from_samples(name, samples, config=config)


class TestPercentile:
    def test_interpolates_like_numpy_default(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.5) == pytest.approx(2.5)
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 4.0
        assert percentile(values, 0.25) == pytest.approx(1.75)

    def test_rejects_empty_and_out_of_range(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)


class TestBenchResult:
    def test_from_samples_fills_the_stable_schema(self):
        result = bench(samples=[0.2, 0.1, 0.3], workers=4)
        assert result.p50 == pytest.approx(0.2)
        assert result.wall_s == pytest.approx(0.6)
        assert result.config == {"workers": 4}
        round_trip = BenchResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert round_trip.metrics() == result.metrics()

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            BenchResult.from_samples("b", [])


class TestComparator:
    def test_missing_baseline_is_new(self):
        verdict = compare(bench(), None)
        assert verdict.status == "new"
        assert "no baseline on record" in verdict.notes

    def test_new_metric_in_current_run(self):
        # baseline predates the wall_s metric
        verdict = compare(bench(), {"p50": 2.0, "p95": 3.0})
        assert verdict.status == "ok"
        assert verdict.metrics["wall_s"]["status"] == "new"

    def test_metric_missing_from_current_run_warns(self):
        current = BenchResult(name="b", p50=1.0)  # no p95/wall_s computed
        verdict = compare(current, {"p50": 1.0, "p95": 3.0})
        assert verdict.status == "warn"
        assert verdict.metrics["p95"]["status"] == "missing"

    def test_tolerance_boundaries_are_exclusive(self):
        baseline = {"p50": 1.0, "p95": 1.0, "wall_s": 3.0}
        exactly_warn = BenchResult(name="b", p50=1.10, p95=1.0, wall_s=3.0)
        assert compare(exactly_warn, baseline).status == "ok"
        just_over_warn = BenchResult(name="b", p50=1.101, p95=1.0, wall_s=3.0)
        assert compare(just_over_warn, baseline).status == "warn"
        exactly_fail = BenchResult(name="b", p50=1.20, p95=1.0, wall_s=3.0)
        assert compare(exactly_fail, baseline).status == "warn"
        just_over_fail = BenchResult(name="b", p50=1.201, p95=1.0, wall_s=3.0)
        assert compare(just_over_fail, baseline).status == "regression"

    def test_improvement_is_ok(self):
        baseline = {"p50": 2.0, "p95": 2.0, "wall_s": 6.0}
        verdict = compare(bench(samples=[0.5, 0.5, 0.5]), baseline)
        assert verdict.status == "ok"
        assert verdict.notes == []

    def test_zero_baseline_regresses_on_any_positive_current(self):
        verdict = compare(
            BenchResult(name="b", p50=0.1, p95=0.1, wall_s=0.1),
            {"p50": 0.0, "p95": 0.0, "wall_s": 0.0},
        )
        assert verdict.status == "regression"

    def test_invalid_tolerance_order_rejected(self):
        with pytest.raises(ValueError):
            compare(bench(), None, warn_pct=30.0, fail_pct=20.0)


class TestBaselineStore:
    def test_rolling_window_keeps_last_n_and_medians(self, tmp_path):
        store = BaselineStore(tmp_path)
        for i in range(12):
            store.update(bench(samples=[float(i + 1)] * 3), window=10)
        baseline = store.load("b")
        assert baseline["runs"] == 10
        assert len(baseline["window"]) == 10
        # window holds runs 3..12 → p50 values 3..12, median of 10 entries
        assert baseline["p50"] == pytest.approx(7.5)

    def test_update_creates_the_file(self, tmp_path):
        store = BaselineStore(tmp_path)
        store.update(bench())
        assert (tmp_path / "BASELINE_b.json").is_file()
        assert store.names() == ["b"]

    def test_load_missing_returns_none(self, tmp_path):
        assert BaselineStore(tmp_path).load("nope") is None


class TestEvaluate:
    def write_bench(self, directory, result):
        (directory / f"BENCH_{result.name}.json").write_text(
            json.dumps(result.to_dict()) + "\n"
        )

    def test_end_to_end_statuses(self, tmp_path):
        store = BaselineStore(tmp_path)
        store.update(bench(name="fast", samples=[1.0, 1.0, 1.0]))
        store.update(bench(name="gone", samples=[1.0]))
        self.write_bench(tmp_path, bench(name="fast", samples=[3.0, 3.0, 3.0]))
        self.write_bench(tmp_path, bench(name="fresh", samples=[1.0]))
        report = evaluate(tmp_path)
        statuses = {v.name: v.status for v in report.verdicts}
        assert statuses == {
            "fast": "regression",
            "fresh": "new",
            "gone": "missing",
        }
        assert report.status == "regression"
        assert report.exit_code() == 1
        rendered = report.render()
        assert "regression" in rendered and "overall:" in rendered

    def test_exit_codes_strict_vs_lenient(self):
        report = HealthReport(verdicts=[Verdict("a", "warn")])
        assert report.exit_code() == 0
        assert report.exit_code(strict=True) == 1
        report = HealthReport(verdicts=[Verdict("a", "ok"), Verdict("b", "new")])
        assert report.exit_code(strict=True) == 0

    def test_legacy_bench_files_are_skipped(self, tmp_path):
        (tmp_path / "BENCH_legacy.json").write_text(
            json.dumps({"benchmark": "legacy", "rows": []})
        )
        (tmp_path / "BENCH_broken.json").write_text("{not json")
        self.write_bench(tmp_path, bench(name="modern"))
        results = load_bench_results(tmp_path)
        assert [r.name for r in results] == ["modern"]

    def test_missing_results_dir_is_empty(self, tmp_path):
        assert load_bench_results(tmp_path / "nope") == []
        assert evaluate(tmp_path / "nope").status == "ok"


class TestHistogramQuantiles:
    def test_quantiles_from_live_histogram(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 3.5):
            hist.observe(value)
        estimates = quantiles_from_histogram(hist)
        assert set(estimates) == {"p50", "p95", "p99"}
        assert estimates["p50"] == pytest.approx(2.0)
        assert 2.0 < estimates["p95"] <= 4.0

    def test_empty_histogram_yields_nones(self):
        hist = MetricsRegistry().histogram("h")
        assert quantiles_from_histogram(hist) == {"p50": None, "p95": None, "p99": None}
