"""The unified metrics registry: instruments, collectors, renderers."""

import json

import pytest

from repro.observability.metrics import MetricsRegistry


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_inc_and_value(self, registry):
        counter = registry.counter("jobs_total", "help")
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5

    def test_labels_track_separately(self, registry):
        counter = registry.counter("sends_total")
        counter.inc(receiver="a")
        counter.inc(receiver="a")
        counter.inc(receiver="b")
        assert counter.value(receiver="a") == 2
        assert counter.value(receiver="b") == 1

    def test_rejects_negative(self, registry):
        with pytest.raises(ValueError):
            registry.counter("c").inc(-1)

    def test_get_or_create_returns_same_instrument(self, registry):
        assert registry.counter("c") is registry.counter("c")

    def test_kind_conflict(self, registry):
        registry.counter("thing")
        with pytest.raises(ValueError):
            registry.gauge("thing")


class TestGauge:
    def test_set_and_add(self, registry):
        gauge = registry.gauge("workers_up")
        gauge.set(3)
        gauge.add(-1)
        assert gauge.value() == 2


class TestHistogram:
    def test_cumulative_buckets(self, registry):
        hist = registry.histogram("latency", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.7, 5.0):
            hist.observe(value)
        snap = hist.snapshot_one()
        assert snap["buckets"][0.1] == 1
        assert snap["buckets"][1.0] == 3
        assert snap["buckets"]["+Inf"] == 4
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(6.25)

    def test_prometheus_samples_carry_le_label(self, registry):
        hist = registry.histogram("h", buckets=(1.0,))
        hist.observe(0.5)
        text = registry.render_prometheus()
        assert 'h_bucket{le="1.0"} 1' in text
        assert 'h_bucket{le="+Inf"} 1' in text
        assert "h_count 1" in text


class TestCollectors:
    def test_collector_read_lazily(self, registry):
        live = {"messages": 0}
        registry.register_collector(
            lambda: [("transport_messages_total", {}, float(live["messages"]))]
        )
        assert registry.snapshot()["transport_messages_total"] == 0
        live["messages"] = 7
        assert registry.snapshot()["transport_messages_total"] == 7

    def test_labeled_collector_samples(self, registry):
        registry.register_collector(
            lambda: [
                ("audit_events_total", {"node": "a"}, 2.0),
                ("audit_events_total", {"node": "b"}, 1.0),
            ]
        )
        snapshot = registry.snapshot()["audit_events_total"]
        assert {entry["labels"]["node"]: entry["value"] for entry in snapshot} == {
            "a": 2.0,
            "b": 1.0,
        }


class TestRenderers:
    def test_prometheus_text_format(self, registry):
        counter = registry.counter("requests_total", "Requests seen")
        counter.inc(3, code="200")
        text = registry.render_prometheus()
        assert "# HELP requests_total Requests seen" in text
        assert "# TYPE requests_total counter" in text
        assert 'requests_total{code="200"} 3' in text
        assert text.endswith("\n")

    def test_label_escaping(self, registry):
        registry.counter("c").inc(1, path='a"b\\c')
        text = registry.render_prometheus()
        assert 'path="a\\"b\\\\c"' in text

    def test_render_json_round_trips(self, registry):
        registry.gauge("g").set(1.5)
        assert json.loads(registry.render_json())["g"] == 1.5

    def test_unlabeled_single_sample_is_scalar(self, registry):
        registry.counter("plain").inc(4)
        assert registry.snapshot()["plain"] == 4
