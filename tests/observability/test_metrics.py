"""The unified metrics registry: instruments, collectors, renderers."""

import json

import pytest

from repro.observability.metrics import MetricsRegistry


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_inc_and_value(self, registry):
        counter = registry.counter("jobs_total", "help")
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5

    def test_labels_track_separately(self, registry):
        counter = registry.counter("sends_total")
        counter.inc(receiver="a")
        counter.inc(receiver="a")
        counter.inc(receiver="b")
        assert counter.value(receiver="a") == 2
        assert counter.value(receiver="b") == 1

    def test_rejects_negative(self, registry):
        with pytest.raises(ValueError):
            registry.counter("c").inc(-1)

    def test_get_or_create_returns_same_instrument(self, registry):
        assert registry.counter("c") is registry.counter("c")

    def test_kind_conflict(self, registry):
        registry.counter("thing")
        with pytest.raises(ValueError):
            registry.gauge("thing")


class TestGauge:
    def test_set_and_add(self, registry):
        gauge = registry.gauge("workers_up")
        gauge.set(3)
        gauge.add(-1)
        assert gauge.value() == 2


class TestHistogram:
    def test_cumulative_buckets(self, registry):
        hist = registry.histogram("latency", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.7, 5.0):
            hist.observe(value)
        snap = hist.snapshot_one()
        assert snap["buckets"][0.1] == 1
        assert snap["buckets"][1.0] == 3
        assert snap["buckets"]["+Inf"] == 4
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(6.25)

    def test_prometheus_samples_carry_le_label(self, registry):
        hist = registry.histogram("h", buckets=(1.0,))
        hist.observe(0.5)
        text = registry.render_prometheus()
        assert 'h_bucket{le="1.0"} 1' in text
        assert 'h_bucket{le="+Inf"} 1' in text
        assert "h_count 1" in text


class TestCollectors:
    def test_collector_read_lazily(self, registry):
        live = {"messages": 0}
        registry.register_collector(
            lambda: [("transport_messages_total", {}, float(live["messages"]))]
        )
        assert registry.snapshot()["transport_messages_total"] == 0
        live["messages"] = 7
        assert registry.snapshot()["transport_messages_total"] == 7

    def test_labeled_collector_samples(self, registry):
        registry.register_collector(
            lambda: [
                ("audit_events_total", {"node": "a"}, 2.0),
                ("audit_events_total", {"node": "b"}, 1.0),
            ]
        )
        snapshot = registry.snapshot()["audit_events_total"]
        assert {entry["labels"]["node"]: entry["value"] for entry in snapshot} == {
            "a": 2.0,
            "b": 1.0,
        }


class TestRenderers:
    def test_prometheus_text_format(self, registry):
        counter = registry.counter("requests_total", "Requests seen")
        counter.inc(3, code="200")
        text = registry.render_prometheus()
        assert "# HELP requests_total Requests seen" in text
        assert "# TYPE requests_total counter" in text
        assert 'requests_total{code="200"} 3' in text
        assert text.endswith("\n")

    def test_label_escaping(self, registry):
        registry.counter("c").inc(1, path='a"b\\c')
        text = registry.render_prometheus()
        assert 'path="a\\"b\\\\c"' in text

    def test_render_json_round_trips(self, registry):
        registry.gauge("g").set(1.5)
        assert json.loads(registry.render_json())["g"] == 1.5

    def test_unlabeled_single_sample_is_scalar(self, registry):
        registry.counter("plain").inc(4)
        assert registry.snapshot()["plain"] == 4


class TestHistogramQuantiles:
    def test_empty_histogram_returns_none(self, registry):
        hist = registry.histogram("h", buckets=(1.0, 2.0))
        assert hist.quantile(0.5) is None

    def test_single_observation_interpolates_within_bucket(self, registry):
        hist = registry.histogram("h", buckets=(1.0, 2.0))
        hist.observe(1.5)
        # One observation in (1, 2]: every quantile lands in that bucket,
        # linearly interpolated from its lower edge.
        assert hist.quantile(0.0) == pytest.approx(1.0)
        assert hist.quantile(0.5) == pytest.approx(1.5)
        assert hist.quantile(1.0) == pytest.approx(2.0)

    def test_first_bucket_lower_edge_is_zero(self, registry):
        hist = registry.histogram("h", buckets=(10.0,))
        hist.observe(3.0)
        # PromQL convention: first finite bucket spans [0, upper].
        assert hist.quantile(0.5) == pytest.approx(5.0)

    def test_quantile_at_exact_bucket_edge(self, registry):
        hist = registry.histogram("h", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 3.5):
            hist.observe(value)
        # rank(0.25) == cumulative count of the first bucket: the estimate
        # must sit exactly on the bucket boundary, not beyond it.
        assert hist.quantile(0.25) == pytest.approx(1.0)
        assert hist.quantile(0.5) == pytest.approx(2.0)

    def test_all_mass_in_overflow_reports_highest_finite_bound(self, registry):
        hist = registry.histogram("h", buckets=(1.0, 5.0))
        hist.observe(100.0)
        hist.observe(200.0)
        assert hist.quantile(0.5) == pytest.approx(5.0)
        assert hist.quantile(0.99) == pytest.approx(5.0)

    def test_overflow_only_histogram_without_finite_bounds(self):
        from repro.observability.metrics import estimate_quantile

        assert estimate_quantile((float("inf"),), [3], 0.5) is None

    def test_labels_partition_observations(self, registry):
        hist = registry.histogram("h", buckets=(1.0, 2.0))
        hist.observe(0.5, op="read")
        hist.observe(1.5, op="write")
        assert hist.quantile(0.5, op="read") == pytest.approx(0.5)
        assert hist.quantile(0.5, op="write") == pytest.approx(1.5)
        assert hist.quantile(0.5, op="missing") is None

    def test_quantile_out_of_range_rejected(self, registry):
        hist = registry.histogram("h")
        hist.observe(1.0)
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_nan_observation_keeps_inf_bucket_consistent(self, registry):
        hist = registry.histogram("h", buckets=(1.0,))
        hist.observe(0.5)
        hist.observe(float("nan"))
        snap = hist.snapshot_one()
        # Prometheus invariant: the +Inf cumulative bucket equals _count,
        # even for NaN observations that compare False against every bound.
        assert snap["buckets"]["+Inf"] == snap["count"] == 2
        assert snap["buckets"][1.0] == 1

    def test_inf_observation_lands_in_overflow(self, registry):
        hist = registry.histogram("h", buckets=(1.0,))
        hist.observe(float("inf"))
        snap = hist.snapshot_one()
        assert snap["buckets"]["+Inf"] == snap["count"] == 1
        assert snap["buckets"][1.0] == 0
