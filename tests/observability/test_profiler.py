"""The sampling profiler: collection, attribution, exports, guard rails."""

import json
import threading
import time

import pytest

from repro.observability import profiler as profiler_mod
from repro.observability.profiler import (
    DEFAULT_HZ,
    SamplingProfiler,
    merge_collapsed,
)
from repro.simtest import hooks as sim_hooks


def busy_wait(seconds: float) -> int:
    """CPU-bound marker function: shows up by name in sampled stacks."""
    deadline = time.perf_counter() + seconds
    acc = 0
    while time.perf_counter() < deadline:
        acc = (acc * 31 + 7) % 1_000_003
    return acc


class TestSampling:
    def test_collects_samples_from_a_busy_thread(self):
        profiler = SamplingProfiler(hz=250)
        with profiler:
            busy_wait(0.3)
        assert profiler.sample_count > 10
        collapsed = profiler.collapsed()
        assert collapsed, "a busy 300ms window must produce stacks"
        assert "busy_wait" in collapsed
        # collapsed-stack grammar: "frame;frame;frame <count>"
        for line in collapsed.strip().splitlines():
            stack, _, count = line.rpartition(" ")
            assert stack
            assert int(count) > 0

    def test_stacks_are_root_to_leaf(self):
        profiler = SamplingProfiler(hz=250)
        with profiler:
            busy_wait(0.3)
        stacks = [s for s in profiler.stack_counts() if any("busy_wait" in f for f in s)]
        assert stacks
        for stack in stacks:
            leaf_index = max(i for i, f in enumerate(stack) if "busy_wait" in f)
            # the marker frame sits at/near the leaf end, not at the root
            assert leaf_index > 0

    def test_start_is_idempotent_and_stop_joins(self):
        profiler = SamplingProfiler(hz=100)
        assert profiler.start()
        assert profiler.start()  # second start: already running, still True
        profiler.stop()
        profiler.stop()  # idempotent
        assert not profiler.running

    def test_rejects_nonpositive_hz(self):
        with pytest.raises(ValueError):
            SamplingProfiler(hz=0)


class TestJobAttribution:
    def test_bound_thread_samples_carry_the_job_id(self):
        profiler = SamplingProfiler(hz=250)

        def work():
            token = profiler_mod.bind_current_thread("job-A")
            try:
                busy_wait(0.3)
            finally:
                profiler_mod.unbind_thread(token)

        with profiler:
            thread = threading.Thread(target=work)
            thread.start()
            thread.join()
        assert "job-A" in profiler.jobs()
        job_collapsed = profiler.collapsed(job="job-A")
        assert "busy_wait" in job_collapsed
        # the unbound main thread's samples do not leak into the job view
        assert profiler.stack_counts(job="job-A") != profiler.stack_counts()

    def test_nested_bind_keeps_the_outer_owner(self):
        token = profiler_mod.bind_current_thread("outer")
        try:
            assert profiler_mod.bind_current_thread("inner") is None
            assert profiler_mod.thread_job(threading.get_ident()) == "outer"
        finally:
            profiler_mod.unbind_thread(token)
        assert profiler_mod.thread_job(threading.get_ident()) is None

    def test_unbind_none_token_is_noop(self):
        profiler_mod.unbind_thread(None)


class TestSimtestVeto:
    def test_profiler_refuses_to_start_under_simulation(self, monkeypatch):
        monkeypatch.setattr(sim_hooks, "_active", object())
        profiler = SamplingProfiler(hz=100)
        assert profiler.start() is False
        assert not profiler.running
        # stop on a never-started profiler stays safe
        profiler.stop()

    def test_service_attach_profiler_reports_the_veto(self, monkeypatch):
        from repro.api.service import MIPService
        from repro.data.cohorts import CohortSpec, generate_cohort
        from repro.federation.controller import create_federation

        federation = create_federation(
            {"w0": {"dementia": generate_cohort(CohortSpec("edsd", 30, seed=1))}}
        )
        service = MIPService(federation, aggregation="plain")
        monkeypatch.setattr(sim_hooks, "_active", object())
        profiler = SamplingProfiler(hz=100)
        assert service.attach_profiler(profiler) is False
        assert service.engine.queue.profiler is None


class TestExports:
    def test_speedscope_schema(self):
        profiler = SamplingProfiler(hz=250)
        with profiler:
            busy_wait(0.25)
        payload = profiler.speedscope(name="unit")
        json.dumps(payload)  # serializable
        assert payload["$schema"].endswith("file-format-schema.json")
        profile = payload["profiles"][0]
        assert profile["type"] == "sampled"
        assert len(profile["samples"]) == len(profile["weights"])
        n_frames = len(payload["shared"]["frames"])
        assert n_frames > 0
        for sample in profile["samples"]:
            assert all(0 <= index < n_frames for index in sample)
        assert profile["endValue"] == pytest.approx(sum(profile["weights"]), rel=1e-6)

    def test_merge_collapsed_sums_identical_stacks(self):
        merged = merge_collapsed(["a;b 2\na;c 1\n", "a;b 3\n", "", "garbage-line\n"])
        assert merged == "a;b 5\na;c 1\n"

    def test_summary_counts(self):
        profiler = SamplingProfiler(hz=250)
        with profiler:
            busy_wait(0.2)
        summary = profiler.summary()
        assert summary["hz"] == 250
        assert summary["ticks"] == profiler.sample_count
        assert summary["unique_stacks"] > 0
        assert summary["elapsed_seconds"] > 0


class TestOverhead:
    def test_overhead_under_budget_at_default_hz(self):
        """The sampler must cost <5% wall time on a CPU-bound workload."""
        budget = 0.05
        rounds = 3

        def fixed_work() -> int:
            acc = 0
            for i in range(400_000):
                acc = (acc * 31 + i) % 1_000_003
            return acc

        def best_of(profiled: bool) -> float:
            best = float("inf")
            for _ in range(rounds):
                profiler = SamplingProfiler(hz=DEFAULT_HZ)
                if profiled:
                    profiler.start()
                t0 = time.perf_counter()
                fixed_work()
                elapsed = time.perf_counter() - t0
                profiler.stop()
                best = min(best, elapsed)
            return best

        plain = best_of(False)
        profiled = best_of(True)
        overhead = profiled / plain - 1.0
        assert overhead < budget, (
            f"profiler overhead {overhead:.1%} exceeds the {budget:.0%} budget"
        )
