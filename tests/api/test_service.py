"""The MIPService facade (the dashboard's backend surface)."""

import pytest

from repro.api.service import MIPService
from repro.errors import CatalogError


@pytest.fixture(scope="module")
def service(federation):
    return MIPService(federation, aggregation="plain")


class TestCatalogue:
    def test_data_models(self, service):
        assert service.data_models() == ["dementia"]

    def test_datasets_with_holders(self, service):
        datasets = service.datasets("dementia")
        assert datasets["edsd"] == ["hospital_a"]
        assert datasets["adni"] == ["hospital_b"]
        assert datasets["ppmi"] == ["hospital_c"]

    def test_unknown_model(self, service):
        with pytest.raises(CatalogError):
            service.datasets("genomics")

    def test_variables_listing(self, service):
        variables = {v["code"]: v for v in service.variables("dementia")}
        assert variables["p_tau"]["kind"] == "numeric"
        assert variables["p_tau"]["unit"] == "pg/mL"
        assert variables["gender"]["enumerations"] == ["F", "M"]


class TestAlgorithmsPanel:
    def test_all_registered_listed(self, service):
        names = [a["name"] for a in service.algorithms()]
        assert "kmeans" in names
        assert "linear_regression" in names
        assert len(names) >= 15

    def test_parameter_specs_exposed(self, service):
        kmeans = next(a for a in service.algorithms() if a["name"] == "kmeans")
        params = {p["name"]: p for p in kmeans["parameters"]}
        assert params["k"]["required"] is True
        assert params["k"]["min"] == 1
        assert params["e"]["default"] == pytest.approx(1e-4)


class TestExperimentLifecycle:
    def test_run_poll_history(self, service):
        result = service.run_experiment(
            "ttest_onesample", "dementia", ["edsd"], y=["p_tau"],
            parameters={"mu": 50.0}, name="demo",
        )
        assert result.status.value == "success"
        assert service.experiment(result.experiment_id) is result
        assert result in service.experiments()
        assert result.request.name == "demo"

    def test_failed_experiment_recorded(self, service):
        result = service.run_experiment(
            "kmeans", "dementia", ["edsd"], y=["p_tau"], parameters={},
        )
        assert result.status.value == "error"  # k is required
        assert "required" in result.error
        assert service.experiment(result.experiment_id).status.value == "error"

    def test_status_endpoint(self, service):
        status = service.status()
        assert set(status["workers"]) == {"hospital_a", "hospital_b", "hospital_c"}
        assert all(state == "up" for state in status["workers"].values())
        assert status["data_models"] == {"dementia": ["adni", "edsd", "ppmi"]}
        assert status["caseload_rows"]["dementia"] == 450  # 3 x 150 fixture rows
        assert status["smpc"]["scheme"] == "shamir"
        assert status["experiments"]["total"] >= 1

    def test_status_reflects_down_worker(self, fresh_federation):
        from repro.api.service import MIPService

        service = MIPService(fresh_federation, aggregation="plain")
        fresh_federation.set_worker_down("hospital_b")
        status = service.status()
        assert status["workers"]["hospital_b"] == "down"
        assert "adni" not in status["data_models"]["dementia"]

    def test_result_level_noise(self, federation):
        """The service can inject DP noise into every released aggregate."""
        from repro.api.service import MIPService
        from repro.smpc.cluster import NoiseSpec

        clean_service = MIPService(federation, aggregation="smpc")
        noisy_service = MIPService(
            federation, aggregation="smpc", noise=NoiseSpec("gaussian", 5.0)
        )
        clean = clean_service.run_experiment(
            "ttest_onesample", "dementia", ["edsd"], y=["p_tau"],
        )
        noisy = noisy_service.run_experiment(
            "ttest_onesample", "dementia", ["edsd"], y=["p_tau"],
        )
        assert clean.status.value == noisy.status.value == "success"
        assert noisy.result["mean"] != clean.result["mean"]
        assert abs(noisy.result["mean"] - clean.result["mean"]) < 5.0

    def test_kmeans_like_figure_3(self, service):
        """The Figure 3 flow: pick k-means, set k, run, read clusters."""
        result = service.run_experiment(
            "kmeans", "dementia", ["edsd", "adni", "ppmi"],
            y=["ab_42", "p_tau", "leftententorhinalarea"],
            parameters={"k": 3, "e": 0.01, "iterations_max_number": 50, "seed": 1},
        )
        assert result.status.value == "success"
        assert len(result.result["centroids"]) == 3


class TestAsyncSurface:
    def test_submit_wait_poll(self, fresh_federation):
        service = MIPService(fresh_federation, aggregation="plain", pool_size=2)
        job_id = service.submit_experiment(
            "ttest_onesample", "dementia", ["edsd"], y=["p_tau"],
            parameters={"mu": 50.0},
        )
        assert isinstance(job_id, str) and job_id.startswith("exp_")
        result = service.wait_experiment(job_id, timeout=120)
        assert result.status.value == "success"
        assert service.experiment(job_id) is result
        jobs = service.jobs()
        assert jobs and jobs[0]["job_id"] == job_id
        assert jobs[0]["state"] == "success"

    def test_cancel_experiment_unknown_id(self, fresh_federation):
        from repro.errors import ExperimentNotFoundError

        service = MIPService(fresh_federation)
        with pytest.raises(ExperimentNotFoundError):
            service.cancel_experiment("ghost")

    def test_run_experiment_is_submit_plus_wait(self, fresh_federation):
        service = MIPService(fresh_federation, aggregation="plain")
        result = service.run_experiment(
            "ttest_onesample", "dementia", ["edsd"], y=["p_tau"],
            parameters={"mu": 50.0},
        )
        assert result.status.value == "success"
        assert service.engine.queue.stats()["submitted_total"] == 1


class TestQueueMetrics:
    def test_registry_includes_queue_gauges(self, fresh_federation):
        service = MIPService(fresh_federation, aggregation="plain", pool_size=3)
        service.run_experiment(
            "ttest_onesample", "dementia", ["edsd"], y=["p_tau"],
            parameters={"mu": 50.0},
        )
        snapshot = service.metrics_snapshot()
        assert snapshot["repro_queue_pool_size"] == 3.0
        assert snapshot["repro_queue_submitted_total"] == 1.0
        assert snapshot["repro_queue_succeeded_total"] == 1.0
        assert snapshot["repro_queue_depth"] == 0.0
        assert snapshot["repro_queue_running"] == 0.0
        assert "repro_queue_depth" in service.render_metrics()

    def test_status_includes_queue(self, fresh_federation):
        service = MIPService(fresh_federation, aggregation="plain")
        status = service.status()
        assert status["queue"]["pool_size"] == 1
        assert status["queue"]["depth"] == 0


class TestStatusCaseloadGuard:
    def test_status_survives_missing_model_table(self, fresh_federation):
        """A worker advertising a model without a materialized table must
        not crash the status endpoint (it contributes zero rows)."""
        service = MIPService(fresh_federation, aggregation="plain")
        worker = fresh_federation.workers["hospital_b"]
        # Simulate deferred loading: the catalog entry exists, the table
        # does not.
        worker.database.drop_table("data_dementia", if_exists=True)
        status = service.status()
        assert status["caseload_rows"]["dementia"] >= 0
        assert status["workers"]["hospital_b"] == "up"
