"""Workflows: chained experiments with cross-step references."""

import pytest

from repro.api.service import MIPService
from repro.api.workflow import Workflow, WorkflowStep
from repro.errors import SpecificationError


@pytest.fixture(scope="module")
def service(federation):
    return MIPService(federation, aggregation="plain")


class TestConstruction:
    def test_needs_steps(self):
        with pytest.raises(SpecificationError):
            Workflow([])

    def test_duplicate_names_rejected(self):
        steps = [
            WorkflowStep("a", "descriptive_stats", y=["p_tau"]),
            WorkflowStep("a", "descriptive_stats", y=["p_tau"]),
        ]
        with pytest.raises(SpecificationError, match="duplicate"):
            Workflow(steps)


class TestExecution:
    def test_static_chain(self, service):
        workflow = Workflow([
            WorkflowStep("explore", "descriptive_stats", y=["p_tau"]),
            WorkflowStep("test", "ttest_onesample", y=["p_tau"],
                         parameters={"mu": 50.0}),
        ])
        outcome = workflow.run(service)
        assert outcome.succeeded
        assert list(outcome.steps) == ["explore", "test"]
        assert outcome.result_of("test")["t_statistic"] is not None

    def test_dynamic_field_reads_previous_step(self, service):
        """Step 2's hypothesized mean comes from step 1's pooled mean —
        the classic explore-then-model chain."""
        workflow = Workflow([
            WorkflowStep("explore", "descriptive_stats", y=["p_tau"]),
            WorkflowStep(
                "test", "ttest_onesample", y=["p_tau"],
                parameters=lambda results: {
                    "mu": results["explore"]["pooled"]["p_tau"]["mean"]
                },
            ),
        ])
        outcome = workflow.run(service)
        assert outcome.succeeded
        # testing against the observed mean: t must be ~0
        assert abs(outcome.result_of("test")["t_statistic"]) < 1e-6

    def test_dynamic_filter(self, service):
        workflow = Workflow([
            WorkflowStep("explore", "descriptive_stats", y=["agevalue"]),
            WorkflowStep(
                "older", "ttest_onesample", y=["p_tau"],
                filter_sql=lambda results: (
                    f"agevalue > {results['explore']['pooled']['agevalue']['q2']}"
                ),
            ),
        ])
        outcome = workflow.run(service)
        assert outcome.succeeded
        full = service.run_experiment("ttest_onesample", "dementia",
                                      sorted(service.datasets("dementia")),
                                      y=["p_tau"])
        assert (outcome.result_of("older")["n_observations"]
                < full.result["n_observations"])

    def test_stop_on_error(self, service):
        workflow = Workflow([
            WorkflowStep("bad", "kmeans", y=["p_tau"]),  # k missing
            WorkflowStep("never", "ttest_onesample", y=["p_tau"]),
        ])
        outcome = workflow.run(service)
        assert not outcome.succeeded
        assert outcome.failed_step == "bad"
        assert "never" not in outcome.steps

    def test_continue_on_error(self, service):
        workflow = Workflow([
            WorkflowStep("bad", "kmeans", y=["p_tau"]),
            WorkflowStep("still_runs", "ttest_onesample", y=["p_tau"]),
        ])
        outcome = workflow.run(service, stop_on_error=False)
        assert outcome.failed_step == "bad"
        assert outcome.steps["still_runs"].status.value == "success"

    def test_workflow_over_smpc_path(self, federation):
        smpc_service = MIPService(federation, aggregation="smpc")
        workflow = Workflow([
            WorkflowStep("explore", "descriptive_stats", y=["lefthippocampus"]),
            WorkflowStep(
                "model", "linear_regression",
                y=["lefthippocampus"], x=["agevalue"],
                filter_sql=lambda results: (
                    f"lefthippocampus > {results['explore']['pooled']['lefthippocampus']['q1']}"
                ),
            ),
        ])
        outcome = workflow.run(smpc_service)
        assert outcome.succeeded
        model = outcome.result_of("model")
        explore = outcome.result_of("explore")
        # the filter kept roughly the top three quartiles
        assert model["n_observations"] < explore["pooled"]["lefthippocampus"]["datapoints"]

    def test_experiment_names_carry_step_names(self, service):
        workflow = Workflow([
            WorkflowStep("named_step", "ttest_onesample", y=["p_tau"]),
        ])
        outcome = workflow.run(service)
        assert outcome.steps["named_step"].request.name == "named_step"
