"""The command-line interface."""

import json

import pytest

from repro.cli import main, parse_parameter


class TestParseParameter:
    def test_json_values(self):
        assert parse_parameter("k=3") == ("k", 3)
        assert parse_parameter("e=0.5") == ("e", 0.5)
        assert parse_parameter("flag=true") == ("flag", True)

    def test_string_fallback(self):
        assert parse_parameter("mode=fast") == ("mode", "fast")

    def test_missing_equals(self):
        with pytest.raises(SystemExit):
            parse_parameter("k")


class TestCommands:
    def test_catalogue(self, capsys):
        code = main(["catalogue"])
        assert code == 0
        output = json.loads(capsys.readouterr().out)
        assert "dementia" in output
        assert "edsd" in output["dementia"]["datasets"]

    def test_algorithms(self, capsys):
        code = main(["algorithms"])
        assert code == 0
        listing = json.loads(capsys.readouterr().out)
        assert any(entry["name"] == "kmeans" for entry in listing)

    def test_run_success(self, capsys):
        code = main([
            "run", "--algorithm", "ttest_onesample", "-y", "p_tau",
            "--param", "mu=50", "--rows", "80", "--aggregation", "plain",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "success"
        assert "t_statistic" in payload["result"]

    def test_run_failure_exit_code(self, capsys):
        code = main([
            "run", "--algorithm", "kmeans", "-y", "p_tau",
            "--rows", "80", "--aggregation", "plain",  # k missing
        ])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "error"
        assert "required" in payload["error"]

    def test_run_with_filter_and_datasets(self, capsys):
        code = main([
            "run", "--algorithm", "ttest_onesample", "-y", "p_tau",
            "--datasets", "edsd", "--filter", "agevalue > 60",
            "--rows", "150", "--aggregation", "plain",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["workers"] == ["hospital_edsd"]

    def test_run_from_csv(self, capsys, tmp_path):
        lines = ["dataset,p_tau,lefthippocampus"]
        for index in range(40):
            lines.append(f"csvsite,{50 + index % 20},{2.5 + (index % 10) / 10}")
        path = tmp_path / "export.csv"
        path.write_text("\n".join(lines) + "\n")
        code = main([
            "run", "--algorithm", "pearson_correlation",
            "-y", "p_tau", "-y", "lefthippocampus",
            "--csv", f"site_a={path}", "--aggregation", "plain",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "success"
        assert payload["result"]["n_observations"] == 40


class TestObservabilityCommands:
    def test_trace_chrome_output(self, capsys):
        code = main([
            "trace", "--algorithm", "ttest_onesample", "-y", "p_tau",
            "--param", "mu=50", "--rows", "80", "--aggregation", "plain",
        ])
        assert code == 0
        trace = json.loads(capsys.readouterr().out)
        events = trace["traceEvents"]
        assert events and all(e["ph"] == "X" for e in events)
        names = {e["name"] for e in events}
        assert {"experiment", "flow.local_step", "transport.send"} <= names

    def test_trace_json_with_audit_to_file(self, capsys, tmp_path):
        out = tmp_path / "trace.json"
        code = main([
            "trace", "--algorithm", "ttest_onesample", "-y", "p_tau",
            "--param", "mu=50", "--rows", "80", "--aggregation", "plain",
            "--format", "json", "--audit", "--out", str(out),
        ])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["spans"]
        events = {entry["event"] for entry in payload["audit"]}
        assert {"experiment_started", "dataset_read", "experiment_finished"} <= events

    def test_trace_failure_exit_code(self, capsys):
        code = main([
            "trace", "--algorithm", "kmeans", "-y", "p_tau",
            "--rows", "80", "--aggregation", "plain",  # k missing
        ])
        assert code == 1

    def test_trace_leaves_tracer_disabled(self):
        from repro.observability.trace import tracer

        was_enabled = tracer.enabled
        main([
            "trace", "--algorithm", "ttest_onesample", "-y", "p_tau",
            "--param", "mu=50", "--rows", "80", "--aggregation", "plain",
        ])
        assert tracer.enabled == was_enabled

    def test_metrics_prometheus_output(self, capsys):
        code = main([
            "metrics", "--algorithm", "ttest_onesample", "-y", "p_tau",
            "--param", "mu=50", "--rows", "80", "--aggregation", "plain",
        ])
        assert code == 0
        text = capsys.readouterr().out
        assert "# TYPE repro_transport_messages_total counter" in text
        assert "repro_audit_events_total{" in text

    def test_metrics_json_output(self, capsys):
        code = main([
            "metrics", "--algorithm", "ttest_onesample", "-y", "p_tau",
            "--param", "mu=50", "--rows", "80", "--aggregation", "plain",
            "--format", "json",
        ])
        assert code == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["repro_transport_messages_total"] > 0


class TestQueueCommands:
    def test_submit_no_wait(self, capsys):
        code = main([
            "submit", "--algorithm", "ttest_onesample", "-y", "p_tau",
            "--param", "mu=50", "--rows", "80", "--aggregation", "plain",
            "--no-wait",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment_id"].startswith("exp_")
        assert payload["queue"]["submitted_total"] == 1

    def test_submit_waits_by_default(self, capsys):
        code = main([
            "submit", "--algorithm", "ttest_onesample", "-y", "p_tau",
            "--param", "mu=50", "--rows", "80", "--aggregation", "plain",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "success"
        assert "t_statistic" in payload["result"]

    def test_jobs_batch(self, capsys):
        code = main([
            "jobs", "--algorithm", "ttest_onesample", "-y", "p_tau",
            "--param", "mu=50", "--rows", "80", "--aggregation", "plain",
            "--repeat", "3", "--pool", "2",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["jobs"]) == 3
        assert all(job["state"] == "success" for job in payload["jobs"])
        assert payload["queue"]["pool_size"] == 2
        # Per-job attribution: identical requests, identical telemetry.
        messages = {entry["messages"] for entry in payload["telemetry"]}
        assert len(messages) == 1

    def test_cancel_batch(self, capsys):
        code = main([
            "cancel", "--algorithm", "ttest_onesample", "-y", "p_tau",
            "--param", "mu=50", "--rows", "80", "--aggregation", "plain",
            "--repeat", "3", "--pool", "1",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cancelled"] is True
        assert payload["cancelled_job"]["status"] == "cancelled"
        states = {job["state"] for job in payload["jobs"]}
        assert "cancelled" in states
