"""The command-line interface."""

import json

import pytest

from repro.cli import main, parse_parameter


class TestParseParameter:
    def test_json_values(self):
        assert parse_parameter("k=3") == ("k", 3)
        assert parse_parameter("e=0.5") == ("e", 0.5)
        assert parse_parameter("flag=true") == ("flag", True)

    def test_string_fallback(self):
        assert parse_parameter("mode=fast") == ("mode", "fast")

    def test_missing_equals(self):
        with pytest.raises(SystemExit):
            parse_parameter("k")


class TestCommands:
    def test_catalogue(self, capsys):
        code = main(["catalogue"])
        assert code == 0
        output = json.loads(capsys.readouterr().out)
        assert "dementia" in output
        assert "edsd" in output["dementia"]["datasets"]

    def test_algorithms(self, capsys):
        code = main(["algorithms"])
        assert code == 0
        listing = json.loads(capsys.readouterr().out)
        assert any(entry["name"] == "kmeans" for entry in listing)

    def test_run_success(self, capsys):
        code = main([
            "run", "--algorithm", "ttest_onesample", "-y", "p_tau",
            "--param", "mu=50", "--rows", "80", "--aggregation", "plain",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "success"
        assert "t_statistic" in payload["result"]

    def test_run_failure_exit_code(self, capsys):
        code = main([
            "run", "--algorithm", "kmeans", "-y", "p_tau",
            "--rows", "80", "--aggregation", "plain",  # k missing
        ])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "error"
        assert "required" in payload["error"]

    def test_run_with_filter_and_datasets(self, capsys):
        code = main([
            "run", "--algorithm", "ttest_onesample", "-y", "p_tau",
            "--datasets", "edsd", "--filter", "agevalue > 60",
            "--rows", "150", "--aggregation", "plain",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["workers"] == ["hospital_edsd"]

    def test_run_from_csv(self, capsys, tmp_path):
        lines = ["dataset,p_tau,lefthippocampus"]
        for index in range(40):
            lines.append(f"csvsite,{50 + index % 20},{2.5 + (index % 10) / 10}")
        path = tmp_path / "export.csv"
        path.write_text("\n".join(lines) + "\n")
        code = main([
            "run", "--algorithm", "pearson_correlation",
            "-y", "p_tau", "-y", "lefthippocampus",
            "--csv", f"site_a={path}", "--aggregation", "plain",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "success"
        assert payload["result"]["n_observations"] == 40


class TestObservabilityCommands:
    def test_trace_chrome_output(self, capsys):
        code = main([
            "trace", "--algorithm", "ttest_onesample", "-y", "p_tau",
            "--param", "mu=50", "--rows", "80", "--aggregation", "plain",
        ])
        assert code == 0
        trace = json.loads(capsys.readouterr().out)
        events = trace["traceEvents"]
        assert events and all(e["ph"] == "X" for e in events)
        names = {e["name"] for e in events}
        assert {"experiment", "flow.local_step", "transport.send"} <= names

    def test_trace_json_with_audit_to_file(self, capsys, tmp_path):
        out = tmp_path / "trace.json"
        code = main([
            "trace", "--algorithm", "ttest_onesample", "-y", "p_tau",
            "--param", "mu=50", "--rows", "80", "--aggregation", "plain",
            "--format", "json", "--audit", "--out", str(out),
        ])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["spans"]
        events = {entry["event"] for entry in payload["audit"]}
        assert {"experiment_started", "dataset_read", "experiment_finished"} <= events

    def test_trace_failure_exit_code(self, capsys):
        code = main([
            "trace", "--algorithm", "kmeans", "-y", "p_tau",
            "--rows", "80", "--aggregation", "plain",  # k missing
        ])
        assert code == 1

    def test_trace_leaves_tracer_disabled(self):
        from repro.observability.trace import tracer

        was_enabled = tracer.enabled
        main([
            "trace", "--algorithm", "ttest_onesample", "-y", "p_tau",
            "--param", "mu=50", "--rows", "80", "--aggregation", "plain",
        ])
        assert tracer.enabled == was_enabled

    def test_metrics_prometheus_output(self, capsys):
        code = main([
            "metrics", "--algorithm", "ttest_onesample", "-y", "p_tau",
            "--param", "mu=50", "--rows", "80", "--aggregation", "plain",
        ])
        assert code == 0
        text = capsys.readouterr().out
        assert "# TYPE repro_transport_messages_total counter" in text
        assert "repro_audit_events_total{" in text

    def test_metrics_json_output(self, capsys):
        code = main([
            "metrics", "--algorithm", "ttest_onesample", "-y", "p_tau",
            "--param", "mu=50", "--rows", "80", "--aggregation", "plain",
            "--format", "json",
        ])
        assert code == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["repro_transport_messages_total"] > 0


class TestQueueCommands:
    def test_submit_no_wait(self, capsys):
        code = main([
            "submit", "--algorithm", "ttest_onesample", "-y", "p_tau",
            "--param", "mu=50", "--rows", "80", "--aggregation", "plain",
            "--no-wait",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment_id"].startswith("exp_")
        assert payload["queue"]["submitted_total"] == 1

    def test_submit_waits_by_default(self, capsys):
        code = main([
            "submit", "--algorithm", "ttest_onesample", "-y", "p_tau",
            "--param", "mu=50", "--rows", "80", "--aggregation", "plain",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "success"
        assert "t_statistic" in payload["result"]

    def test_jobs_batch(self, capsys):
        code = main([
            "jobs", "--algorithm", "ttest_onesample", "-y", "p_tau",
            "--param", "mu=50", "--rows", "80", "--aggregation", "plain",
            "--repeat", "3", "--pool", "2",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["jobs"]) == 3
        assert all(job["state"] == "success" for job in payload["jobs"])
        assert payload["queue"]["pool_size"] == 2
        # Per-job attribution: identical requests, identical telemetry.
        messages = {entry["messages"] for entry in payload["telemetry"]}
        assert len(messages) == 1

    def test_cancel_batch(self, capsys):
        code = main([
            "cancel", "--algorithm", "ttest_onesample", "-y", "p_tau",
            "--param", "mu=50", "--rows", "80", "--aggregation", "plain",
            "--repeat", "3", "--pool", "1",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cancelled"] is True
        assert payload["cancelled_job"]["status"] == "cancelled"
        states = {job["state"] for job in payload["jobs"]}
        assert "cancelled" in states


class TestTraceFilters:
    def run_tree(self, tmp_path, *extra):
        out = tmp_path / "tree.json"
        code = main([
            "trace", "--algorithm", "ttest_onesample", "-y", "p_tau",
            "--param", "mu=50", "--rows", "80", "--aggregation", "plain",
            "--format", "tree", "--out", str(out), *extra,
        ])
        assert code == 0
        return json.loads(out.read_text())["trace"]

    @staticmethod
    def walk(nodes):
        for node in nodes:
            yield node
            yield from TestTraceFilters.walk(node["children"])

    def test_min_ms_prunes_and_annotates_durations(self, tmp_path):
        unfiltered = self.run_tree(tmp_path)
        filtered = self.run_tree(tmp_path, "--min-ms", "0.01")
        assert filtered, "a real run must keep some spans above 0.01ms"
        assert len(list(self.walk(filtered))) <= len(list(self.walk(unfiltered)))
        for node in self.walk(filtered):
            assert node["duration_ms"] >= 0

    def test_absurd_min_ms_prunes_everything(self, tmp_path):
        assert self.run_tree(tmp_path, "--min-ms", "1e6") == []

    def test_top_caps_children_and_counts_dropped(self, tmp_path):
        filtered = self.run_tree(tmp_path, "--top", "1")
        for node in self.walk(filtered):
            assert len(node["children"]) <= 1
            if "children_dropped" in node:
                assert node["children_dropped"] >= 1
                assert node["dropped_ms"] >= 0


class TestProfileCommand:
    def test_experiment_profile_artifacts(self, tmp_path):
        out_dir = tmp_path / "prof"
        code = main([
            "profile", "--algorithm", "linear_regression",
            "-y", "lefthippocampus", "-x", "agevalue",
            "--rows", "1200", "--aggregation", "plain",
            "--hz", "997", "--out-dir", str(out_dir),
        ])
        assert code == 0
        collapsed = (out_dir / "flamegraph.collapsed").read_text()
        assert collapsed.strip(), "the flamegraph must not be empty"
        for line in collapsed.strip().splitlines():
            stack, _, count = line.rpartition(" ")
            assert stack and int(count) > 0
        speedscope = json.loads((out_dir / "profile.speedscope.json").read_text())
        assert speedscope["profiles"][0]["type"] == "sampled"
        path = json.loads((out_dir / "critical_path.json").read_text())
        assert path["root"] == "experiment"
        # acceptance: the chain reconciles with the root duration within 1%
        assert abs(path["reconciliation"] - 1.0) <= 0.01
        assert path["segments"]

    def test_script_profile(self, tmp_path, capsys):
        script = tmp_path / "workload.py"
        script.write_text(
            "import time\n"
            "deadline = time.perf_counter() + 0.2\n"
            "acc = 0\n"
            "while time.perf_counter() < deadline:\n"
            "    acc = (acc * 31 + 7) % 1000003\n"
        )
        out_dir = tmp_path / "prof"
        code = main([
            "profile", str(script), "--hz", "997", "--out-dir", str(out_dir),
        ])
        assert code == 0
        assert (out_dir / "flamegraph.collapsed").read_text().strip()

    def test_profile_without_target_errors(self):
        with pytest.raises(SystemExit):
            main(["profile"])


class TestHealthCommand:
    def write_bench(self, directory, name, scale=1.0):
        from repro.observability.slo import BenchResult

        directory.mkdir(parents=True, exist_ok=True)
        result = BenchResult.from_samples(
            name, [0.1 * scale, 0.12 * scale, 0.11 * scale], config={"n": 1}
        )
        (directory / f"BENCH_{name}.json").write_text(
            json.dumps(result.to_dict()) + "\n"
        )

    def test_update_then_ok(self, tmp_path, capsys):
        self.write_bench(tmp_path, "demo")
        assert main([
            "health", "--results-dir", str(tmp_path), "--update-baselines",
        ]) == 0
        capsys.readouterr()
        assert main(["health", "--results-dir", str(tmp_path)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_regression_exits_nonzero(self, tmp_path, capsys):
        self.write_bench(tmp_path, "demo")
        assert main([
            "health", "--results-dir", str(tmp_path), "--update-baselines",
        ]) == 0
        self.write_bench(tmp_path, "demo", scale=2.0)  # 2x latency injection
        capsys.readouterr()
        assert main(["health", "--results-dir", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "regression" in out

    def test_strict_fails_on_missing_run(self, tmp_path, capsys):
        self.write_bench(tmp_path, "demo")
        assert main([
            "health", "--results-dir", str(tmp_path), "--update-baselines",
        ]) == 0
        (tmp_path / "BENCH_demo.json").unlink()
        assert main(["health", "--results-dir", str(tmp_path)]) == 0
        assert main(["health", "--results-dir", str(tmp_path), "--strict"]) == 1

    def test_json_format(self, tmp_path, capsys):
        self.write_bench(tmp_path, "demo")
        assert main([
            "health", "--results-dir", str(tmp_path), "--format", "json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["benches"][0]["status"] == "new"
