"""Atomic, schema-versioned checkpoint storage."""

from __future__ import annotations

import json
import os

from repro.durability.checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    CheckpointStore,
    ExperimentCheckpoint,
    request_fingerprint,
)


def _checkpoint(job_id="exp_1", **state):
    return ExperimentCheckpoint(
        job_id=job_id,
        fingerprint="abc123",
        reads=[{"index": 0, "key": "LocalStepNode:n1", "value": {"sum": 4.5}}],
        state=state or {"round": 2},
    )


class TestStore:
    def test_save_load_round_trip(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.save(_checkpoint())
        loaded = store.load("exp_1")
        assert loaded is not None
        assert loaded.job_id == "exp_1"
        assert loaded.fingerprint == "abc123"
        assert loaded.reads == [
            {"index": 0, "key": "LocalStepNode:n1", "value": {"sum": 4.5}}
        ]
        assert loaded.state == {"round": 2}
        assert loaded.schema == CHECKPOINT_SCHEMA_VERSION

    def test_missing_returns_none_without_failure_count(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        assert store.load("nope") is None
        assert store.stats.load_failures_total == 0

    def test_corrupt_json_returns_none(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.save(_checkpoint())
        path = os.path.join(str(tmp_path), "exp_1.ckpt.json")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{not json")
        assert store.load("exp_1") is None
        assert store.stats.load_failures_total == 1

    def test_schema_mismatch_returns_none(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.save(_checkpoint())
        path = os.path.join(str(tmp_path), "exp_1.ckpt.json")
        payload = json.load(open(path))
        payload["schema"] = CHECKPOINT_SCHEMA_VERSION + 1
        json.dump(payload, open(path, "w"))
        assert store.load("exp_1") is None
        assert store.stats.load_failures_total == 1

    def test_save_overwrites_atomically(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.save(_checkpoint(round=1))
        store.save(_checkpoint(round=7))
        assert store.load("exp_1").state == {"round": 7}
        assert not any(name.endswith(".tmp") for name in os.listdir(tmp_path))

    def test_delete(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.save(_checkpoint())
        assert store.delete("exp_1") is True
        assert store.load("exp_1") is None
        assert store.delete("exp_1") is False

    def test_hostile_job_id_stays_inside_directory(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.save(_checkpoint(job_id="../../evil"))
        assert store.list_ids() == [".._.._evil"]
        assert store.load("../../evil") is not None

    def test_list_ids_sorted(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        for job_id in ("b", "a", "c"):
            store.save(_checkpoint(job_id=job_id))
        assert store.list_ids() == ["a", "b", "c"]


class TestFingerprint:
    def test_fingerprint_is_order_insensitive(self):
        assert request_fingerprint({"a": 1, "b": 2}) == request_fingerprint(
            {"b": 2, "a": 1}
        )

    def test_fingerprint_distinguishes_values(self):
        assert request_fingerprint({"a": 1}) != request_fingerprint({"a": 2})
