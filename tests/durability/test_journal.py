"""The write-ahead journal: framing, rotation, torn-tail recovery."""

from __future__ import annotations

import os

import pytest

from repro.durability.journal import Journal, _frame, _parse_frame


def _segment(directory: str, index: int = 1) -> str:
    return os.path.join(directory, f"journal-{index:06d}.wal")


class TestFraming:
    def test_frame_round_trip(self):
        record = {"seq": 3, "kind": "submit", "job_id": "j1", "pi": 3.141592653589793}
        assert _parse_frame(_frame(record).rstrip(b"\n")) == record

    def test_flipped_bit_detected(self):
        line = _frame({"seq": 1, "kind": "x"}).rstrip(b"\n")
        corrupt = bytearray(line)
        corrupt[-1] ^= 0x01
        assert _parse_frame(bytes(corrupt)) is None

    def test_truncated_frame_detected(self):
        line = _frame({"seq": 1, "kind": "x"}).rstrip(b"\n")
        assert _parse_frame(line[: len(line) // 2]) is None

    def test_non_dict_payload_rejected(self):
        import json
        import zlib

        body = json.dumps([1, 2, 3]).encode()
        crc = zlib.crc32(body) & 0xFFFFFFFF
        assert _parse_frame(b"%08x %s" % (crc, body)) is None


class TestAppendAndReopen:
    def test_records_survive_reopen_in_order(self, tmp_path):
        journal = Journal(str(tmp_path))
        for index in range(10):
            journal.append("step", {"job_id": "j1", "index": index})
        journal.close()
        reopened = Journal(str(tmp_path))
        records = list(reopened.records())
        assert [r["index"] for r in records] == list(range(10))
        assert [r["seq"] for r in records] == list(range(1, 11))
        reopened.close()

    def test_sequence_continues_after_reopen(self, tmp_path):
        journal = Journal(str(tmp_path))
        journal.append("submit", {"job_id": "j1"})
        journal.close()
        reopened = Journal(str(tmp_path))
        assert reopened.append("terminal", {"job_id": "j1"}) == 2
        reopened.close()

    def test_fsync_batching(self, tmp_path):
        journal = Journal(str(tmp_path), fsync_every=4)
        for _ in range(8):
            journal.append("step", {})
        assert journal.stats.fsyncs_total == 2
        journal.append("terminal", {}, sync=True)
        assert journal.stats.fsyncs_total == 3
        journal.close()


class TestRotation:
    def test_segments_rotate_and_replay_across_files(self, tmp_path):
        journal = Journal(str(tmp_path), segment_max_bytes=256)
        for index in range(40):
            journal.append("step", {"index": index})
        journal.close()
        assert journal.stats.rotations_total > 0
        segments = [n for n in os.listdir(tmp_path) if n.endswith(".wal")]
        assert len(segments) > 1
        reopened = Journal(str(tmp_path), segment_max_bytes=256)
        assert [r["index"] for r in reopened.records()] == list(range(40))
        reopened.close()


class TestTornTailRecovery:
    def _write_then(self, tmp_path, extra: bytes) -> Journal:
        journal = Journal(str(tmp_path))
        for index in range(5):
            journal.append("step", {"index": index})
        journal.close()
        with open(_segment(str(tmp_path)), "ab") as handle:
            handle.write(extra)
        return Journal(str(tmp_path))

    def test_torn_tail_truncated(self, tmp_path):
        reopened = self._write_then(tmp_path, b"deadbeef {\"seq\": 6, \"kin")
        assert [r["index"] for r in reopened.records()] == list(range(5))
        assert reopened.stats.dropped_bytes > 0
        # The file itself was cut back: a further reopen drops nothing.
        reopened.close()
        clean = Journal(str(tmp_path))
        assert clean.stats.dropped_bytes == 0
        assert len(list(clean.records())) == 5
        clean.close()

    def test_corrupt_crc_mid_file_drops_suffix(self, tmp_path):
        journal = Journal(str(tmp_path))
        for index in range(6):
            journal.append("step", {"index": index})
        journal.close()
        path = _segment(str(tmp_path))
        with open(path, "rb") as handle:
            lines = handle.read().splitlines(keepends=True)
        corrupted = bytearray(lines[2])
        corrupted[12] ^= 0xFF
        with open(path, "wb") as handle:
            handle.write(b"".join(lines[:2]) + bytes(corrupted) + b"".join(lines[3:]))
        reopened = Journal(str(tmp_path))
        # Everything from the corrupt frame on is causally suspect.
        assert [r["index"] for r in reopened.records()] == [0, 1]
        assert reopened.stats.dropped_bytes > 0
        reopened.close()

    def test_corruption_drops_later_segments(self, tmp_path):
        journal = Journal(str(tmp_path), segment_max_bytes=256)
        for index in range(40):
            journal.append("step", {"index": index})
        journal.close()
        first = _segment(str(tmp_path), 1)
        with open(first, "rb") as handle:
            data = bytearray(handle.read())
        data[12] ^= 0xFF  # corrupt the first segment's first frame body
        with open(first, "wb") as handle:
            handle.write(bytes(data))
        reopened = Journal(str(tmp_path), segment_max_bytes=256)
        assert list(reopened.records()) == []
        assert reopened.stats.dropped_segments > 0
        remaining = [n for n in os.listdir(tmp_path) if n.endswith(".wal")]
        assert len(remaining) == 1
        reopened.close()

    def test_append_after_torn_recovery(self, tmp_path):
        reopened = self._write_then(tmp_path, b"garbage-without-newline")
        seq = reopened.append("submit", {"job_id": "j2"}, sync=True)
        assert seq == 6
        reopened.close()
        final = Journal(str(tmp_path))
        kinds = [r["kind"] for r in final.records()]
        assert kinds == ["step"] * 5 + ["submit"]
        final.close()


@pytest.mark.parametrize("payload", [{}, {"nested": {"a": [1, 2.5, None, "x"]}}])
def test_payload_shapes(tmp_path, payload):
    journal = Journal(str(tmp_path))
    journal.append("step", payload)
    journal.close()
    reopened = Journal(str(tmp_path))
    (record,) = list(reopened.records())
    for key, value in payload.items():
        assert record[key] == value
    reopened.close()
