"""Journal replay, checkpoint resume, and full service restarts."""

from __future__ import annotations

import pytest

from repro.core.experiment import (
    ExperimentRequest,
    ExperimentResult,
    ExperimentStatus,
)
from repro.durability.recovery import DurabilityManager


def _request(**overrides) -> ExperimentRequest:
    fields = dict(
        algorithm="descriptive_stats",
        data_model="dementia",
        datasets=("edsd",),
        y=("lefthippocampus",),
    )
    fields.update(overrides)
    return ExperimentRequest(**fields)


def _result(job_id: str, request: ExperimentRequest) -> ExperimentResult:
    return ExperimentResult(
        experiment_id=job_id,
        request=request,
        status=ExperimentStatus.SUCCESS,
        result={"n": 42},
    )


class TestReplay:
    def test_terminal_job_is_restored(self, tmp_path):
        manager = DurabilityManager(str(tmp_path))
        request = _request()
        manager.record_submit("j1", request, priority=0)
        manager.record_dispatch("j1")
        manager.record_terminal("j1", _result("j1", request))
        manager.close()
        recovered = DurabilityManager(str(tmp_path))
        report = recovered.recover()
        assert sorted(report.completed) == ["j1"]
        assert report.completed["j1"].result == {"n": 42}
        assert report.pending == []
        recovered.close()

    def test_interrupted_job_is_reenqueued_in_order(self, tmp_path):
        manager = DurabilityManager(str(tmp_path))
        manager.record_submit("j1", _request(), priority=0)
        manager.record_submit("j2", _request(name="second"), priority=5)
        manager.record_dispatch("j1")
        manager.close()
        report = DurabilityManager(str(tmp_path)).recover()
        assert report.completed == {}
        assert [(job_id, priority) for job_id, _req, priority in report.pending] == [
            ("j1", 0),
            ("j2", 5),
        ]

    def test_resubmission_clears_stale_terminal(self, tmp_path):
        manager = DurabilityManager(str(tmp_path))
        request = _request()
        manager.record_submit("j1", request, priority=0)
        manager.record_terminal("j1", _result("j1", request))
        # The same id submitted again (a restart re-enqueued it).
        manager.record_submit("j1", request, priority=0)
        manager.close()
        report = DurabilityManager(str(tmp_path)).recover()
        assert report.completed == {}
        assert [job_id for job_id, _r, _p in report.pending] == ["j1"]

    def test_recover_gcs_stale_checkpoint_of_terminal_job(self, tmp_path):
        manager = DurabilityManager(str(tmp_path))
        request = _request()
        manager.record_submit("j1", request, priority=0)
        manager.record_read("j1", "LocalStepNode:n1", {"sum": 1.5})
        manager.record_terminal("j1", _result("j1", request))
        # Simulate a crash between the terminal append and the checkpoint
        # delete: put the stale frontier back.
        from repro.durability.checkpoint import ExperimentCheckpoint

        manager.checkpoints.save(
            ExperimentCheckpoint(
                job_id="j1", fingerprint="stale", reads=[{"key": "k", "value": 1}]
            )
        )
        manager.close()
        recovered = DurabilityManager(str(tmp_path))
        recovered.recover()
        assert recovered.checkpoints.load("j1") is None
        recovered.close()

    def test_orphan_records_are_counted_not_fatal(self, tmp_path):
        manager = DurabilityManager(str(tmp_path))
        manager.journal.append("dispatch", {"job_id": "ghost"})
        manager.journal.append("step", {"job_id": "ghost", "index": 0, "key": "k"})
        manager.record_submit("j1", _request(), priority=0)
        manager.close()
        report = DurabilityManager(str(tmp_path)).recover()
        assert report.orphan_records == 2
        assert [job_id for job_id, _r, _p in report.pending] == ["j1"]


class TestCheckpointResume:
    def test_prepare_resume_returns_frontier_length(self, tmp_path):
        manager = DurabilityManager(str(tmp_path))
        request = _request()
        manager.record_submit("j1", request, priority=0)
        manager.record_read("j1", "LocalStepNode:n1", {"sum": 1.5})
        manager.record_read("j1", "GlobalStepNode:n2", {"mean": 0.5})
        manager.close()
        recovered = DurabilityManager(str(tmp_path))
        recovered.recover()
        assert recovered.prepare_resume("j1", request) == 2
        reads = recovered.take_resume_reads("j1")
        assert [entry["key"] for entry in reads] == [
            "LocalStepNode:n1",
            "GlobalStepNode:n2",
        ]
        # Consumed once: a second take returns nothing.
        assert recovered.take_resume_reads("j1") is None
        recovered.close()

    def test_fingerprint_mismatch_discards_checkpoint(self, tmp_path):
        manager = DurabilityManager(str(tmp_path))
        manager.record_submit("j1", _request(), priority=0)
        manager.record_read("j1", "LocalStepNode:n1", {"sum": 1.5})
        manager.close()
        recovered = DurabilityManager(str(tmp_path))
        recovered.recover()
        different = _request(y=("righthippocampus",))
        assert recovered.prepare_resume("j1", different) == 0
        assert recovered.checkpoint_mismatches == 1
        # The stale checkpoint was deleted, not left to trip a later resume.
        assert recovered.checkpoints.load("j1") is None
        recovered.close()

    def test_terminal_drops_checkpoint(self, tmp_path):
        manager = DurabilityManager(str(tmp_path))
        request = _request()
        manager.record_submit("j1", request, priority=0)
        manager.record_read("j1", "LocalStepNode:n1", {"sum": 1.5})
        assert manager.checkpoints.load("j1") is not None
        manager.record_terminal("j1", _result("j1", request))
        assert manager.checkpoints.load("j1") is None
        manager.close()

    def test_unserializable_read_disables_checkpointing(self, tmp_path):
        manager = DurabilityManager(str(tmp_path))
        manager.record_submit("j1", _request(), priority=0)
        manager.record_read("j1", "LocalStepNode:n1", {"bad": object()})
        assert manager.unserializable_reads == 1
        assert manager.checkpoints.load("j1") is None
        # Later reads for the job are ignored rather than crashing.
        manager.record_read("j1", "LocalStepNode:n2", {"fine": 1})
        assert manager.checkpoints.load("j1") is None
        manager.close()


class TestServiceRestart:
    def _service(self, federation, state_dir):
        from repro.api.service import MIPService

        return MIPService(federation, state_dir=str(state_dir))

    def test_finished_results_survive_restart(self, fresh_federation, tmp_path):
        service = self._service(fresh_federation, tmp_path)
        result = service.run_experiment(
            algorithm="descriptive_stats",
            data_model="dementia",
            datasets=sorted(service.datasets("dementia")),
            y=["lefthippocampus"],
        )
        assert result.status is ExperimentStatus.SUCCESS
        service.shutdown()
        restarted = self._service(fresh_federation, tmp_path)
        assert restarted.recovery["restored"] == [result.experiment_id]
        restored = restarted.engine.get(result.experiment_id)
        assert restored.to_dict() == result.to_dict()
        restarted.shutdown()

    def test_unfinished_submit_is_resumed_on_restart(self, fresh_federation, tmp_path):
        service = self._service(fresh_federation, tmp_path)
        datasets = sorted(service.datasets("dementia"))
        # Journal a submit without running it — the pre-dispatch crash cell.
        request = ExperimentRequest(
            algorithm="descriptive_stats",
            data_model="dementia",
            datasets=tuple(datasets),
            y=("lefthippocampus",),
        )
        service.durability.record_submit("exp_lost", request, priority=2)
        service.shutdown()
        restarted = self._service(fresh_federation, tmp_path)
        assert restarted.recovery["resumed"] == ["exp_lost"]
        recovered = restarted.wait_experiment("exp_lost")
        assert recovered.status is ExperimentStatus.SUCCESS
        restarted.shutdown()
        # Third life: the re-run's terminal record wins over the old submit.
        third = self._service(fresh_federation, tmp_path)
        assert third.recovery["resumed"] == []
        assert "exp_lost" in third.recovery["restored"]
        third.shutdown()

    def test_status_and_metrics_expose_durability(self, fresh_federation, tmp_path):
        service = self._service(fresh_federation, tmp_path)
        assert "durability" in service.status()
        rendered = service.metrics_registry().render_prometheus()
        assert "repro_journal_appends_total" in rendered
        service.shutdown()
