"""The @udf decorator and registry."""

import pytest

from repro.errors import UDFError
from repro.udfgen.decorators import get_spec, udf, udf_registry
from repro.udfgen.iotypes import literal, merge_transfer, relation, state, transfer


@udf(x=relation(), k=literal(), return_type=[state(), transfer()])
def sample_step(x, k):
    return {"k": k}, {"k": k}


class TestDecorator:
    def test_spec_attached(self):
        spec = get_spec(sample_step)
        assert spec.input_names == ["x", "k"]
        assert len(spec.outputs) == 2
        assert spec.name in udf_registry

    def test_source_captured_without_decorator(self):
        spec = get_spec(sample_step)
        assert spec.source.startswith("def sample_step")
        assert "@udf" not in spec.source

    def test_function_still_callable(self):
        st, tr = sample_step(None, 5)
        assert st == {"k": 5}

    def test_input_type_lookup(self):
        spec = get_spec(sample_step)
        assert spec.input_type("k").kind == "literal"
        with pytest.raises(UDFError):
            spec.input_type("missing")

    def test_parameter_mismatch_rejected(self):
        with pytest.raises(UDFError, match="missing types"):
            @udf(return_type=transfer())
            def missing_types(x):
                return {}

    def test_extra_parameter_rejected(self):
        with pytest.raises(UDFError, match="unknown parameters"):
            @udf(x=relation(), y=relation(), return_type=transfer())
            def extra(x):
                return {}

    def test_zero_outputs_rejected(self):
        with pytest.raises(UDFError):
            @udf(x=relation(), return_type=[])
            def no_outputs(x):
                return {}

    def test_literal_not_valid_output(self):
        with pytest.raises(UDFError):
            @udf(x=relation(), return_type=literal())
            def bad_output(x):
                return 1

    def test_merge_transfer_not_valid_output(self):
        with pytest.raises(UDFError):
            @udf(x=relation(), return_type=merge_transfer())
            def bad_output2(x):
                return []

    def test_single_return_type_accepted(self):
        @udf(x=relation(), return_type=transfer())
        def single(x):
            return {}

        assert len(get_spec(single).outputs) == 1

    def test_get_spec_requires_decoration(self):
        def plain():
            pass

        with pytest.raises(UDFError):
            get_spec(plain)


class TestRegistry:
    def test_lookup_unknown(self):
        with pytest.raises(UDFError):
            udf_registry.get("no_such_udf")

    def test_names_sorted(self):
        names = udf_registry.names()
        assert names == sorted(names)
