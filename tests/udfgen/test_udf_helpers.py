"""Statistical helpers used inside UDF bodies."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.udfgen.runtime import Relation
from repro.udfgen.udf_helpers import (
    apply_scaler,
    build_design_matrix,
    category_counts,
    confusion_counts,
    fold_assignments,
    histogram_counts,
    logistic_gradient_hessian,
    regression_sufficient_stats,
    route_tree,
    score_histograms,
    sigmoid,
)


class TestDesignMatrix:
    def test_numeric_with_intercept(self):
        rel = Relation({"x": np.array([1.0, 2.0])})
        design, names = build_design_matrix(rel, ["x"], {})
        assert names == ["intercept", "x"]
        assert design.tolist() == [[1.0, 1.0], [1.0, 2.0]]

    def test_nominal_dummy_coding_reference_level(self):
        rel = Relation({"g": np.array(["a", "b", "c"], dtype=object)})
        metadata = {"g": {"is_categorical": True, "enumerations": ["a", "b", "c"]}}
        design, names = build_design_matrix(rel, ["g"], metadata)
        assert names == ["intercept", "g[b]", "g[c]"]
        assert design[:, 1].tolist() == [0.0, 1.0, 0.0]
        assert design[:, 2].tolist() == [0.0, 0.0, 1.0]

    def test_no_intercept(self):
        rel = Relation({"x": np.array([1.0])})
        design, names = build_design_matrix(rel, ["x"], {}, intercept=False)
        assert names == ["x"]

    def test_nominal_without_enumerations_raises(self):
        rel = Relation({"g": np.array(["a"], dtype=object)})
        with pytest.raises(ValueError):
            build_design_matrix(rel, ["g"], {"g": {"is_categorical": True}})

    def test_empty_covariates(self):
        rel = Relation({"x": np.array([1.0, 2.0])})
        design, names = build_design_matrix(rel, [], {}, intercept=False)
        assert design.shape == (2, 0)


class TestSufficientStats:
    def test_matches_direct_computation(self):
        design = np.array([[1.0, 2.0], [1.0, 3.0], [1.0, 4.0]])
        y = np.array([1.0, 2.0, 3.0])
        stats = regression_sufficient_stats(design, y)
        assert np.allclose(stats["xtx"], design.T @ design)
        assert np.allclose(stats["xty"], design.T @ y)
        assert stats["yty"] == pytest.approx(14.0)
        assert stats["sum_y"] == pytest.approx(6.0)
        assert stats["n"] == 3

    def test_additivity(self):
        """Sharding the rows and summing the stats equals the pooled stats."""
        rng = np.random.default_rng(0)
        design = rng.normal(size=(20, 3))
        y = rng.normal(size=20)
        whole = regression_sufficient_stats(design, y)
        part1 = regression_sufficient_stats(design[:7], y[:7])
        part2 = regression_sufficient_stats(design[7:], y[7:])
        assert np.allclose(part1["xtx"] + part2["xtx"], whole["xtx"])
        assert np.allclose(part1["xty"] + part2["xty"], whole["xty"])
        assert part1["n"] + part2["n"] == whole["n"]


class TestFoldAssignments:
    def test_balanced(self):
        folds = fold_assignments(10, 5, seed=1)
        counts = np.bincount(folds, minlength=5)
        assert counts.tolist() == [2, 2, 2, 2, 2]

    def test_deterministic(self):
        assert np.array_equal(fold_assignments(20, 4, 7), fold_assignments(20, 4, 7))

    def test_different_seed_differs(self):
        assert not np.array_equal(fold_assignments(50, 5, 1), fold_assignments(50, 5, 2))


class TestSigmoid:
    def test_extreme_values_stable(self):
        assert sigmoid(np.array([1000.0]))[0] == pytest.approx(1.0)
        assert sigmoid(np.array([-1000.0]))[0] == pytest.approx(0.0)

    @given(st.floats(-50, 50))
    def test_range(self, z):
        value = sigmoid(np.array([z]))[0]
        assert 0.0 <= value <= 1.0

    def test_symmetry(self):
        z = np.array([0.3, -1.2])
        assert np.allclose(sigmoid(z) + sigmoid(-z), 1.0)


class TestLogisticStats:
    def test_gradient_at_separating_point(self):
        design = np.array([[1.0, 0.0], [1.0, 1.0]])
        y = np.array([0.0, 1.0])
        beta = np.zeros(2)
        stats = logistic_gradient_hessian(design, y, beta)
        # p = 0.5 everywhere: gradient = X^T (y - 0.5)
        assert np.allclose(stats["gradient"], design.T @ (y - 0.5))
        assert stats["log_likelihood"] == pytest.approx(2 * np.log(0.5))
        assert stats["n"] == 2


class TestCountsAndHistograms:
    def test_category_counts(self):
        values = np.array(["a", "b", "a"], dtype=object)
        assert category_counts(values, ["a", "b", "c"]).tolist() == [2, 1, 0]

    def test_histogram_counts(self):
        counts = histogram_counts(np.array([0.1, 0.5, 0.9]), [0.0, 0.5, 1.0])
        assert counts.tolist() == [1, 2]

    def test_confusion_counts(self):
        actual = np.array([True, True, False, False])
        scores = np.array([0.9, 0.2, 0.8, 0.1])
        counts = confusion_counts(actual, scores, 0.5)
        assert counts == {"tp": 1, "fp": 1, "fn": 1, "tn": 1}

    def test_score_histograms_partition(self):
        actual = np.array([True, False, True])
        scores = np.array([0.95, 0.5, 0.05])
        hists = score_histograms(actual, scores, n_bins=10)
        assert hists["positives"].sum() == 2
        assert hists["negatives"].sum() == 1


class TestApplyScaler:
    def test_standardizes_active_columns(self):
        design = np.array([[1.0, 10.0], [1.0, 20.0]])
        scaler = {"means": [0.0, 15.0], "stds": [0.0, 5.0]}
        scaled = apply_scaler(design, scaler)
        assert scaled[:, 0].tolist() == [1.0, 1.0]  # intercept untouched
        assert scaled[:, 1].tolist() == [-1.0, 1.0]

    def test_none_is_identity(self):
        design = np.array([[2.0]])
        assert apply_scaler(design, None) is design


class TestRouteTree:
    def test_numeric_split(self):
        rel = Relation({"x": np.array([1.0, 5.0])})
        tree = {
            "root": 0,
            "nodes": {
                "0": {"type": "split", "feature": "x", "threshold": 3.0, "left": 1, "right": 2},
                "1": {"type": "leaf"},
                "2": {"type": "leaf"},
            },
        }
        assert route_tree(rel, tree).tolist() == ["1", "2"]

    def test_nominal_binary_split(self):
        rel = Relation({"g": np.array(["a", "b"], dtype=object)})
        tree = {
            "root": 0,
            "nodes": {
                "0": {"type": "split", "feature": "g", "level": "a", "left": 1, "right": 2},
                "1": {"type": "leaf"},
                "2": {"type": "leaf"},
            },
        }
        assert route_tree(rel, tree).tolist() == ["1", "2"]

    def test_multiway_split_with_default(self):
        rel = Relation({"g": np.array(["a", "b", "zzz"], dtype=object)})
        tree = {
            "root": 0,
            "nodes": {
                "0": {
                    "type": "split", "feature": "g",
                    "children": {"a": 1, "b": 2}, "default_child": 2,
                },
                "1": {"type": "leaf"},
                "2": {"type": "leaf"},
            },
        }
        assert route_tree(rel, tree).tolist() == ["1", "2", "2"]

    def test_two_level_tree(self):
        rel = Relation({"x": np.array([1.0, 4.0, 9.0])})
        tree = {
            "root": 0,
            "nodes": {
                "0": {"type": "split", "feature": "x", "threshold": 5.0, "left": 1, "right": 2},
                "1": {"type": "split", "feature": "x", "threshold": 2.0, "left": 3, "right": 4},
                "2": {"type": "leaf"},
                "3": {"type": "leaf"},
                "4": {"type": "leaf"},
            },
        }
        assert route_tree(rel, tree).tolist() == ["3", "4", "2"]
