"""UDF I/O type markers."""

import pytest

from repro.engine.types import SQLType
from repro.errors import UDFError
from repro.udfgen.iotypes import (
    literal,
    merge_transfer,
    output_schema,
    relation,
    secure_transfer,
    state,
    tensor,
    transfer,
)


class TestConstructors:
    def test_relation_schema_optional(self):
        assert relation().schema is None
        typed = relation([("a", SQLType.INT)])
        assert typed.schema == (("a", SQLType.INT),)

    def test_tensor_dims_validated(self):
        assert tensor(1).ndims == 1
        with pytest.raises(UDFError):
            tensor(3)

    def test_kinds(self):
        assert relation().kind == "relation"
        assert tensor().kind == "tensor"
        assert literal().kind == "literal"
        assert state().kind == "state"
        assert transfer().kind == "transfer"
        assert merge_transfer().kind == "merge_transfer"
        assert secure_transfer().kind == "secure_transfer"


class TestOutputSchema:
    def test_state_blob_schema(self):
        assert output_schema(state()) == [("state", SQLType.VARCHAR)]

    def test_transfer_blob_schema(self):
        assert output_schema(transfer()) == [("transfer", SQLType.VARCHAR)]

    def test_secure_transfer_blob_schema(self):
        assert output_schema(secure_transfer()) == [("secure_transfer", SQLType.VARCHAR)]

    def test_tensor_schema_by_rank(self):
        assert output_schema(tensor(1)) == [("dim0", SQLType.INT), ("val", SQLType.REAL)]
        assert output_schema(tensor(2)) == [
            ("dim0", SQLType.INT), ("dim1", SQLType.INT), ("val", SQLType.REAL),
        ]

    def test_relation_needs_explicit_schema(self):
        with pytest.raises(UDFError):
            output_schema(relation())
        assert output_schema(relation([("x", SQLType.REAL)])) == [("x", SQLType.REAL)]

    def test_literal_cannot_be_output(self):
        with pytest.raises(UDFError):
            output_schema(literal())

    def test_merge_transfer_cannot_be_output(self):
        with pytest.raises(UDFError):
            output_schema(merge_transfer())
