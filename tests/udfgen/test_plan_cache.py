"""The UDF application plan cache: memoized SQL generation.

The optimisation's contract: generation is deterministic (a cached and an
uncached application are byte-identical), iterative flows stop re-emitting
definition SQL after their first iteration, and the stateful ``_cache``
session objects never leak between jobs despite the shared definitions.
"""

import pytest

from repro import (
    CohortSpec,
    FederationConfig,
    MIPService,
    create_federation,
    generate_cohort,
)
from repro.engine.database import Database
from repro.udfgen.decorators import get_spec, udf
from repro.udfgen.generator import (
    generate_udf_application,
    plan_cache,
    run_udf_application,
)
from repro.udfgen.iotypes import literal, relation, state, transfer
from repro.udfgen.runtime import deserialize_transfer


@udf(data=relation(), factor=literal(), return_type=[state(), transfer()])
def plan_fit(data, factor):
    total = float(data.to_matrix().sum())
    return {"total": total}, {"scaled": total * factor}


@udf(previous=state(), bump=literal(), return_type=[transfer()])
def plan_continue(previous, bump):
    return {"echo": float(previous["total"]) + bump}


@pytest.fixture()
def db():
    database = Database()
    database.execute("CREATE TABLE numbers (a REAL, b REAL)")
    database.execute("INSERT INTO numbers VALUES (1.0, 2.0), (3.0, 4.0)")
    return database


@pytest.fixture(autouse=True)
def fresh_cache():
    plan_cache.clear()
    yield
    plan_cache.clear()


def build_service(seed=5):
    federation = create_federation(
        {
            "h1": {"dementia": generate_cohort(CohortSpec("edsd", 120, seed=1))},
            "h2": {"dementia": generate_cohort(CohortSpec("adni", 120, seed=2))},
        },
        FederationConfig(seed=seed),
    )
    return MIPService(federation, aggregation="plain")


class TestDeterminism:
    def test_cached_and_uncached_sql_byte_identical(self, db):
        spec = get_spec(plan_fit)
        arguments = {"data": "numbers", "factor": 3}
        cached = generate_udf_application(spec, "j1", arguments, use_cache=True)
        warm = generate_udf_application(spec, "j1", arguments, use_cache=True)
        uncached = generate_udf_application(spec, "j1", arguments, use_cache=False)
        assert cached.statements == warm.statements == uncached.statements
        assert plan_cache.stats()["hits"] == 1  # the warm call

    def test_cached_and_uncached_results_identical(self, db):
        spec = get_spec(plan_fit)
        uncached = generate_udf_application(
            spec, "ja", {"data": "numbers", "factor": 2}, use_cache=False
        )
        cached = generate_udf_application(
            spec, "jb", {"data": "numbers", "factor": 2}, use_cache=True
        )
        _, t1 = run_udf_application(db, uncached)
        _, t2 = run_udf_application(db, cached)
        blob1 = deserialize_transfer(db.scalar(f"SELECT * FROM {t1}"))
        blob2 = deserialize_transfer(db.scalar(f"SELECT * FROM {t2}"))
        assert blob1 == blob2 == {"scaled": 20.0}

    def test_literal_values_not_baked_into_cache_key(self, db):
        """Different literal arguments reuse one plan — the k-means pattern
        where the centroids literal changes every iteration."""
        spec = get_spec(plan_fit)
        app1 = generate_udf_application(spec, "j1", {"data": "numbers", "factor": 1})
        app2 = generate_udf_application(spec, "j2", {"data": "numbers", "factor": 5})
        assert app1.function_name == app2.function_name
        assert plan_cache.stats() == {"hits": 1, "misses": 1, "size": 1}
        _, t1 = run_udf_application(db, app1)
        _, t2 = run_udf_application(db, app2)
        assert deserialize_transfer(db.scalar(f"SELECT * FROM {t1}")) == {"scaled": 10.0}
        assert deserialize_transfer(db.scalar(f"SELECT * FROM {t2}")) == {"scaled": 50.0}

    def test_definition_skipped_on_second_application(self, db):
        spec = get_spec(plan_fit)
        app1 = generate_udf_application(spec, "j1", {"data": "numbers", "factor": 1})
        run_udf_application(db, app1)
        functions_after_first = db.function_names()
        app2 = generate_udf_application(spec, "j2", {"data": "numbers", "factor": 2})
        run_udf_application(db, app2)
        # Same definition, no second registration.
        assert db.function_names() == functions_after_first


class TestIterativeFlows:
    def test_kmeans_regenerates_zero_sql_after_first_iteration(self):
        """Ten k-means iterations must miss the plan cache exactly as often
        as two: every per-iteration step after the first is a hit."""
        miss_counts = []
        for iterations in (2, 10):
            plan_cache.clear()
            service = build_service()
            outcome = service.run_experiment(
                "kmeans", "dementia", ["edsd", "adni"],
                y=["ab_42", "p_tau"],
                parameters={
                    "k": 3, "seed": 9, "e": 0.0,
                    "iterations_max_number": iterations,
                },
            )
            assert outcome.status.value == "success"
            assert outcome.result["iterations"] == iterations
            stats = plan_cache.stats()
            assert stats["hits"] > stats["misses"]
            miss_counts.append(stats["misses"])
        assert miss_counts[0] == miss_counts[1]

    def test_no_stale_state_between_jobs(self):
        """Two k-means jobs on one federation share cached plans but must not
        share stateful ``_cache`` entries or output tables."""
        service = build_service()
        results = []
        for _ in range(2):
            outcome = service.run_experiment(
                "kmeans", "dementia", ["edsd", "adni"],
                y=["ab_42", "p_tau"], parameters={"k": 3, "seed": 9},
            )
            assert outcome.status.value == "success"
            results.append(outcome.result)
        assert results[0]["centroids"] == results[1]["centroids"]
        assert results[0]["inertia_history"] == results[1]["inertia_history"]

    def test_session_cache_keys_are_job_scoped(self, db):
        """State tables (the ``_cache`` keys) embed the job id, so two jobs
        running the same cached plan can never collide."""
        spec = get_spec(plan_fit)
        app1 = generate_udf_application(spec, "j1", {"data": "numbers", "factor": 1})
        app2 = generate_udf_application(spec, "j2", {"data": "numbers", "factor": 1})
        state1, _ = run_udf_application(db, app1)
        state2, _ = run_udf_application(db, app2)
        assert state1 != state2
        assert state1 in db.session_cache and state2 in db.session_cache
        # Chaining from each state stays independent.
        cont_spec = get_spec(plan_continue)
        next1 = generate_udf_application(cont_spec, "j1b", {"previous": state1, "bump": 1})
        next2 = generate_udf_application(cont_spec, "j2b", {"previous": state2, "bump": 2})
        (out1,) = run_udf_application(db, next1)
        (out2,) = run_udf_application(db, next2)
        assert deserialize_transfer(db.scalar(f"SELECT * FROM {out1}")) == {"echo": 11.0}
        assert deserialize_transfer(db.scalar(f"SELECT * FROM {out2}")) == {"echo": 12.0}

    def test_dropping_state_table_evicts_cache_entry(self, db):
        spec = get_spec(plan_fit)
        app = generate_udf_application(spec, "j1", {"data": "numbers", "factor": 1})
        state_table, _ = run_udf_application(db, app)
        assert state_table in db.session_cache
        db.drop_table(state_table)
        assert state_table not in db.session_cache


class TestCacheMechanics:
    def test_lru_eviction(self):
        small = type(plan_cache)(maxsize=2)
        small.store(("a",), object())
        small.store(("b",), object())
        small.lookup(("a",))
        small.store(("c",), object())  # evicts ("b",): least recently used
        assert small.lookup(("b",)) is None
        assert small.lookup(("a",)) is not None
        assert small.lookup(("c",)) is not None

    def test_clear_resets_counters(self):
        spec = get_spec(plan_fit)
        generate_udf_application(spec, "j1", {"data": "numbers", "factor": 1})
        generate_udf_application(spec, "j2", {"data": "numbers", "factor": 1})
        assert plan_cache.stats()["hits"] == 1
        plan_cache.clear()
        assert plan_cache.stats() == {"hits": 0, "misses": 0, "size": 0}

    def test_numpy_and_tuple_literals_round_trip(self, db):
        """The plan travels as a repr literal; every value the old baking
        scheme supported must survive the round trip."""

        @udf(data=relation(), weights=literal(), return_type=[transfer()])
        def weighted(data, weights):
            lo, hi = weights
            return {"v": float(data.to_matrix().sum()) * lo + hi}

        spec = get_spec(weighted)
        app = generate_udf_application(spec, "j1", {"data": "numbers", "weights": (2.0, 0.5)})
        (out,) = run_udf_application(db, app)
        assert deserialize_transfer(db.scalar(f"SELECT * FROM {out}")) == {"v": 20.5}

    def test_quotes_in_literals_survive_sql_escaping(self, db):
        @udf(data=relation(), tag=literal(), return_type=[transfer()])
        def tagged(data, tag):
            return {"tag": tag, "n": float(data.to_matrix().sum())}

        spec = get_spec(tagged)
        tag = "it's a 'quoted' tag"
        app = generate_udf_application(spec, "j1", {"data": "numbers", "tag": tag})
        (out,) = run_udf_application(db, app)
        assert deserialize_transfer(db.scalar(f"SELECT * FROM {out}")) == {
            "tag": tag, "n": 10.0,
        }
