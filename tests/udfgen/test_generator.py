"""UDF-to-SQL generation and execution through the engine."""

import json

import numpy as np
import pytest

from repro.engine.database import Database
from repro.engine.types import SQLType
from repro.errors import UDFError
from repro.udfgen.decorators import get_spec, udf
from repro.udfgen.generator import (
    TableArg,
    generate_udf_application,
    run_udf_application,
)
from repro.udfgen.iotypes import (
    literal,
    merge_transfer,
    relation,
    secure_transfer,
    state,
    tensor,
    transfer,
)
from repro.udfgen.runtime import deserialize_state, deserialize_transfer


@udf(data=relation(), factor=literal(), return_type=[state(), transfer()])
def fit_step(data, factor):
    total = data.to_matrix().sum()
    return {"total": total, "factor": factor}, {"scaled": float(total * factor)}


@udf(previous=state(), return_type=[transfer()])
def continue_step(previous):
    return {"echo": float(previous["total"])}


@udf(transfers=merge_transfer(), return_type=[transfer()])
def merge_step(transfers):
    return {"sum": sum(t["scaled"] for t in transfers)}


@udf(data=relation(), return_type=[secure_transfer()])
def secure_step(data):
    return {"s": {"data": float(data.to_matrix().sum()), "operation": "sum"}}


@udf(data=relation(), return_type=[tensor(2)])
def tensor_step(data):
    return data.to_matrix() * 2


@udf(data=relation(), return_type=[relation([("v", SQLType.REAL)])])
def relation_step(data):
    return {"v": data.to_matrix().sum(axis=1)}


@pytest.fixture()
def db():
    database = Database()
    database.execute("CREATE TABLE numbers (a REAL, b REAL)")
    database.execute("INSERT INTO numbers VALUES (1.0, 2.0), (3.0, 4.0)")
    return database


class TestTableArg:
    def test_bare_name(self):
        assert TableArg.of("numbers").query == "SELECT * FROM numbers"

    def test_full_query_passthrough(self):
        q = "SELECT a FROM numbers WHERE a > 1"
        assert TableArg.of(q).query == q


class TestGeneration:
    def test_statements_shape(self):
        app = generate_udf_application(
            get_spec(fit_step), "job1", {"data": "numbers", "factor": 2}
        )
        assert app.definition_sql.startswith("CREATE OR REPLACE FUNCTION")
        assert len(app.create_output_sql) == 2
        assert app.execute_sql.startswith(f"INSERT INTO {app.output_tables[0]}")

    def test_missing_argument(self):
        with pytest.raises(UDFError, match="missing"):
            generate_udf_application(get_spec(fit_step), "job1", {"data": "numbers"})

    def test_unknown_argument(self):
        with pytest.raises(UDFError, match="unknown"):
            generate_udf_application(
                get_spec(fit_step), "job1",
                {"data": "numbers", "factor": 2, "bogus": 1},
            )


class TestExecution:
    def test_state_and_transfer_outputs(self, db):
        app = generate_udf_application(
            get_spec(fit_step), "job1", {"data": "numbers", "factor": 3}
        )
        tables = run_udf_application(db, app)
        restored_state = deserialize_state(db.scalar(f"SELECT * FROM {tables[0]}"))
        assert restored_state["total"] == 10.0
        restored_transfer = deserialize_transfer(db.scalar(f"SELECT * FROM {tables[1]}"))
        assert restored_transfer == {"scaled": 30.0}

    def test_state_chains_between_steps(self, db):
        first = generate_udf_application(
            get_spec(fit_step), "j1", {"data": "numbers", "factor": 1}
        )
        state_table, _ = run_udf_application(db, first)
        second = generate_udf_application(
            get_spec(continue_step), "j2", {"previous": state_table}
        )
        (out,) = run_udf_application(db, second)
        assert deserialize_transfer(db.scalar(f"SELECT * FROM {out}")) == {"echo": 10.0}

    def test_merge_transfer_input(self, db):
        tables = []
        for index, factor in enumerate((1, 2)):
            app = generate_udf_application(
                get_spec(fit_step), f"m{index}", {"data": "numbers", "factor": factor}
            )
            tables.append(run_udf_application(db, app)[1])
        merged = generate_udf_application(get_spec(merge_step), "mm", {"transfers": tables})
        (out,) = run_udf_application(db, merged)
        assert deserialize_transfer(db.scalar(f"SELECT * FROM {out}")) == {"sum": 30.0}

    def test_secure_transfer_output_validated(self, db):
        app = generate_udf_application(get_spec(secure_step), "s1", {"data": "numbers"})
        (out,) = run_udf_application(db, app)
        payload = json.loads(db.scalar(f"SELECT * FROM {out}"))
        assert payload == {"s": {"data": 10.0, "operation": "sum"}}

    def test_tensor_output(self, db):
        app = generate_udf_application(get_spec(tensor_step), "t1", {"data": "numbers"})
        (out,) = run_udf_application(db, app)
        result = db.query(f"SELECT * FROM {out} ORDER BY dim0, dim1").to_rows()
        assert result == [(0, 0, 2.0), (0, 1, 4.0), (1, 0, 6.0), (1, 1, 8.0)]

    def test_relation_output(self, db):
        app = generate_udf_application(get_spec(relation_step), "r1", {"data": "numbers"})
        (out,) = run_udf_application(db, app)
        assert db.query(f"SELECT * FROM {out}").to_rows() == [(3.0,), (7.0,)]

    def test_view_query_argument(self, db):
        app = generate_udf_application(
            get_spec(secure_step), "v1",
            {"data": "SELECT a FROM numbers WHERE a > 1"},
        )
        (out,) = run_udf_application(db, app)
        payload = json.loads(db.scalar(f"SELECT * FROM {out}"))
        assert payload["s"]["data"] == 3.0

    def test_stable_function_unique_outputs_per_job(self, db):
        # Plan-cached generation: one stable function per UDF shape, but the
        # output tables (and thus the results) stay unique per job.
        app1 = generate_udf_application(get_spec(secure_step), "ja", {"data": "numbers"})
        app2 = generate_udf_application(get_spec(secure_step), "jb", {"data": "numbers"})
        assert app1.function_name == app2.function_name
        assert app1.definition_sql == app2.definition_sql
        assert app1.output_tables != app2.output_tables
        run_udf_application(db, app1)
        run_udf_application(db, app2)
