"""UDF fusion and stateful (session-cache) execution — the paper's roadmap
items reproduced as working features."""

import numpy as np
import pytest

from repro.engine.database import Database
from repro.errors import UDFError
from repro.udfgen import (
    FusionStep,
    StepOutput,
    generate_fused_application,
    generate_udf_application,
    literal,
    relation,
    run_udf_application,
    state,
    transfer,
    udf,
)
from repro.udfgen.decorators import get_spec
from repro.udfgen.runtime import deserialize_state, deserialize_transfer


@udf(data=relation(), return_type=[state()])
def fusion_load(data):
    return {"matrix": data.to_matrix()}


@udf(previous=state(), power=literal(), return_type=[state()])
def fusion_square(previous, power):
    return {"matrix": previous["matrix"] ** power}


@udf(previous=state(), return_type=[transfer()])
def fusion_reduce(previous):
    return {"total": float(previous["matrix"].sum())}


@pytest.fixture()
def db():
    database = Database()
    database.execute("CREATE TABLE numbers (a REAL, b REAL)")
    database.execute("INSERT INTO numbers VALUES (1.0, 2.0), (3.0, 4.0)")
    return database


class TestFusion:
    def test_three_step_pipeline_single_application(self, db):
        application = generate_fused_application(
            [
                FusionStep(get_spec(fusion_load), {"data": "numbers"}),
                FusionStep(get_spec(fusion_square),
                           {"previous": StepOutput(0), "power": 2}),
                FusionStep(get_spec(fusion_reduce), {"previous": StepOutput(1)}),
            ],
            "fuse1",
        )
        (out,) = run_udf_application(db, application)
        result = deserialize_transfer(db.scalar(f"SELECT * FROM {out}"))
        assert result == {"total": 1.0 + 4.0 + 9.0 + 16.0}

    def test_matches_unfused_chain(self, db):
        # unfused: three applications with intermediate tables
        first = generate_udf_application(get_spec(fusion_load), "u1", {"data": "numbers"})
        (state_1,) = run_udf_application(db, first)
        second = generate_udf_application(
            get_spec(fusion_square), "u2", {"previous": state_1, "power": 2}
        )
        (state_2,) = run_udf_application(db, second)
        third = generate_udf_application(get_spec(fusion_reduce), "u3", {"previous": state_2})
        (out_unfused,) = run_udf_application(db, third)
        unfused = deserialize_transfer(db.scalar(f"SELECT * FROM {out_unfused}"))

        fused_app = generate_fused_application(
            [
                FusionStep(get_spec(fusion_load), {"data": "numbers"}),
                FusionStep(get_spec(fusion_square),
                           {"previous": StepOutput(0), "power": 2}),
                FusionStep(get_spec(fusion_reduce), {"previous": StepOutput(1)}),
            ],
            "fuse2",
        )
        (out_fused,) = run_udf_application(db, fused_app)
        fused = deserialize_transfer(db.scalar(f"SELECT * FROM {out_fused}"))
        assert fused == unfused

    def test_no_intermediate_tables(self, db):
        before = set(db.table_names())
        application = generate_fused_application(
            [
                FusionStep(get_spec(fusion_load), {"data": "numbers"}),
                FusionStep(get_spec(fusion_reduce), {"previous": StepOutput(0)}),
            ],
            "fuse3",
        )
        run_udf_application(db, application)
        created = set(db.table_names()) - before
        assert created == set(application.output_tables)
        assert len(created) == 1  # only the final transfer

    def test_forward_reference_rejected(self, db):
        with pytest.raises(UDFError, match="earlier step"):
            generate_fused_application(
                [
                    FusionStep(get_spec(fusion_reduce), {"previous": StepOutput(0)}),
                ],
                "bad",
            )

    def test_zero_steps_rejected(self):
        with pytest.raises(UDFError):
            generate_fused_application([], "empty")

    def test_missing_argument_names_step(self):
        with pytest.raises(UDFError, match="fused step 0"):
            generate_fused_application(
                [FusionStep(get_spec(fusion_square), {"power": 2})], "bad2"
            )


class TestStatefulExecution:
    def test_state_served_from_session_cache(self, db):
        first = generate_udf_application(get_spec(fusion_load), "s1", {"data": "numbers"})
        (state_table,) = run_udf_application(db, first)
        assert state_table in db.session_cache
        # poison the serialized blob: if the cache is used, the chain still works
        db.execute(f"DELETE FROM {state_table}")
        db.execute(f"INSERT INTO {state_table} VALUES ('not-base64-pickle')")
        second = generate_udf_application(
            get_spec(fusion_reduce), "s2", {"previous": state_table}
        )
        (out,) = run_udf_application(db, second)
        assert deserialize_transfer(db.scalar(f"SELECT * FROM {out}"))["total"] == 10.0

    def test_stateless_mode_deserializes(self, db):
        first = generate_udf_application(
            get_spec(fusion_load), "s3", {"data": "numbers"}, stateful=False
        )
        (state_table,) = run_udf_application(db, first)
        assert state_table not in db.session_cache
        restored = deserialize_state(db.scalar(f"SELECT * FROM {state_table}"))
        assert np.array_equal(restored["matrix"], np.array([[1.0, 2.0], [3.0, 4.0]]))

    def test_cache_invalidated_on_drop(self, db):
        first = generate_udf_application(get_spec(fusion_load), "s4", {"data": "numbers"})
        (state_table,) = run_udf_application(db, first)
        db.drop_table(state_table)
        assert state_table not in db.session_cache

    def test_fallback_to_blob_on_cache_miss(self, db):
        first = generate_udf_application(get_spec(fusion_load), "s5", {"data": "numbers"})
        (state_table,) = run_udf_application(db, first)
        db.session_cache.clear()  # e.g. a different session resumes the job
        second = generate_udf_application(
            get_spec(fusion_reduce), "s6", {"previous": state_table}
        )
        (out,) = run_udf_application(db, second)
        assert deserialize_transfer(db.scalar(f"SELECT * FROM {out}"))["total"] == 10.0
