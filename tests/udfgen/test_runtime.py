"""Serialization runtime used by generated UDF bodies."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import UDFError
from repro.udfgen.runtime import (
    Relation,
    columns_to_tensor,
    deserialize_state,
    deserialize_transfer,
    serialize_state,
    serialize_transfer,
    sql_quote,
    tensor_to_columns,
    validate_secure_transfer,
)


class TestRelation:
    def test_shape_and_access(self):
        rel = Relation({"a": np.array([1.0, 2.0]), "b": np.array([3.0, 4.0])})
        assert rel.shape == (2, 2)
        assert list(rel["a"]) == [1.0, 2.0]
        assert "a" in rel and "z" not in rel

    def test_ragged_rejected(self):
        with pytest.raises(UDFError):
            Relation({"a": np.array([1.0]), "b": np.array([1.0, 2.0])})

    def test_to_matrix_column_order(self):
        rel = Relation({"a": np.array([1.0]), "b": np.array([2.0])})
        assert rel.to_matrix(["b", "a"]).tolist() == [[2.0, 1.0]]

    def test_dropna(self):
        rel = Relation(
            {"a": np.array([1.0, np.nan]), "b": np.array(["x", "y"], dtype=object)}
        )
        clean = rel.dropna()
        assert len(clean) == 1
        assert clean["b"][0] == "x"

    def test_dropna_object_none(self):
        rel = Relation({"b": np.array(["x", None], dtype=object)})
        assert len(rel.dropna()) == 1

    def test_empty(self):
        assert len(Relation({})) == 0


class TestStateSerialization:
    def test_roundtrip_arbitrary_objects(self):
        payload = {"matrix": np.eye(2), "nested": {"x": [1, 2]}, "text": "hi"}
        restored = deserialize_state(serialize_state(payload))
        assert np.array_equal(restored["matrix"], np.eye(2))
        assert restored["nested"] == {"x": [1, 2]}


class TestTransferSerialization:
    def test_numpy_becomes_lists(self):
        blob = serialize_transfer({"v": np.array([1.5, 2.5]), "n": np.int64(3)})
        restored = deserialize_transfer(blob)
        assert restored == {"v": [1.5, 2.5], "n": 3}

    def test_non_dict_rejected(self):
        with pytest.raises(UDFError):
            serialize_transfer([1, 2])

    def test_numpy_bool(self):
        assert deserialize_transfer(serialize_transfer({"f": np.bool_(True)})) == {"f": True}


class TestSecureTransferValidation:
    def test_valid(self):
        payload = {"s": {"data": [1, 2], "operation": "sum"}}
        assert validate_secure_transfer(payload) == payload

    def test_missing_operation(self):
        with pytest.raises(UDFError):
            validate_secure_transfer({"s": {"data": [1]}})

    def test_bad_operation(self):
        with pytest.raises(UDFError):
            validate_secure_transfer({"s": {"data": [1], "operation": "mean"}})

    def test_non_dict(self):
        with pytest.raises(UDFError):
            validate_secure_transfer("nope")


class TestTensorLayout:
    def test_1d_roundtrip(self):
        array = np.array([1.5, 2.5, 3.5])
        assert np.array_equal(columns_to_tensor(tensor_to_columns(array)), array)

    def test_2d_roundtrip(self):
        array = np.arange(6, dtype=np.float64).reshape(2, 3)
        assert np.array_equal(columns_to_tensor(tensor_to_columns(array)), array)

    def test_3d_rejected(self):
        with pytest.raises(UDFError):
            tensor_to_columns(np.zeros((2, 2, 2)))

    @given(
        st.integers(1, 5), st.integers(1, 5),
    )
    def test_2d_roundtrip_property(self, rows, cols):
        array = np.arange(rows * cols, dtype=np.float64).reshape(rows, cols)
        assert np.array_equal(columns_to_tensor(tensor_to_columns(array)), array)


class TestSQLQuote:
    @pytest.mark.parametrize(
        "value, expected",
        [
            (None, "NULL"),
            (True, "TRUE"),
            (False, "FALSE"),
            (3, "3"),
            (2.5, "2.5"),
            ("plain", "'plain'"),
            ("it's", "'it''s'"),
        ],
    )
    def test_quoting(self, value, expected):
        assert sql_quote(value) == expected

    def test_numpy_scalars(self):
        assert sql_quote(np.int64(3)) == "3"
        assert sql_quote(np.float64(1.5)) == "1.5"
