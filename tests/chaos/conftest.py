"""Chaos-suite configuration: one seed controls every drop schedule.

The seed comes from ``CHAOS_SEED`` (CI runs three fixed seeds plus one
randomized seed per build); it defaults to 101 locally.  The seed is printed
so a red randomized run can be reproduced exactly with
``CHAOS_SEED=<seed> pytest tests/chaos``.
"""

from __future__ import annotations

import os

import pytest

DEFAULT_CHAOS_SEED = 101


@pytest.fixture(scope="session")
def chaos_seed(request) -> int:
    seed = int(os.environ.get("CHAOS_SEED", DEFAULT_CHAOS_SEED))
    capmanager = request.config.pluginmanager.getplugin("capturemanager")
    with capmanager.global_and_fixture_disabled():
        print(f"\n[chaos] CHAOS_SEED={seed}")
    return seed
