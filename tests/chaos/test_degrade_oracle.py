"""The degrade correctness oracle (satellite 3).

If a worker is evicted before contributing anything, degrading must be
*exactly* equivalent to never having invited that worker: an algorithm run
on N workers with zero failures equals the same run on N+1 workers where the
extra worker is down and gets evicted on the first fan-out.
"""

from __future__ import annotations

import pytest

from repro.data.cohorts import CohortSpec, generate_cohort
from repro.errors import QuorumError
from repro.federation.policy import FailurePolicy

from tests.chaos.harness import (
    assert_close,
    build_chaos_federation,
    run_algorithm_on_context,
    run_experiment,
)

CASES = [
    ("linear_regression", ("lefthippocampus",), ("agevalue", "alzheimerbroadcategory"), {}),
    ("ttest_independent", ("lefthippocampus",), ("gender",), {}),
    ("kmeans", ("ab_42", "p_tau"), (), {"k": 2, "seed": 3}),
]
CASE_IDS = [case[0] for case in CASES]

DEGRADE = FailurePolicy(retries=1, on_worker_loss="degrade", min_workers=1)

ALL_WORKERS = {"h1": ["edsd"], "h2": ["adni"], "h3": ["ppmi"]}


def three_worker_data():
    return {
        "h1": {"dementia": generate_cohort(CohortSpec("edsd", 140, seed=77))},
        "h2": {"dementia": generate_cohort(CohortSpec("adni", 120, seed=78))},
        "h3": {"dementia": generate_cohort(CohortSpec("ppmi", 100, seed=79))},
    }


def build(policy=DEGRADE):
    return build_chaos_federation(
        three_worker_data(), drop_probability=0.0, seed=5, policy=policy
    )


@pytest.mark.parametrize("algorithm, y, x, parameters", CASES, ids=CASE_IDS)
def test_preflight_eviction_equals_clean_run_without_worker(
    algorithm, y, x, parameters
):
    """Clean 2-worker result == 3-worker run with the third worker down."""
    federation = build()
    clean = run_experiment(
        federation, algorithm, y, x, parameters, datasets=("edsd", "adni")
    )
    assert clean.status.value == "success", clean.error

    federation.transport.set_down("h3", True)
    degraded, context = run_algorithm_on_context(
        federation, ALL_WORKERS, algorithm, y, x, parameters
    )
    assert list(context.evicted) == ["h3"]
    assert context.workers == ["h1", "h2"]
    assert_close(clean.result, degraded)


def test_eviction_is_visible_in_health_and_stats():
    federation = build(
        FailurePolicy(
            retries=1, on_worker_loss="degrade", min_workers=1, failure_threshold=1
        )
    )
    federation.transport.set_down("h3", True)
    _result, context = run_algorithm_on_context(
        federation, ALL_WORKERS, "linear_regression", ("lefthippocampus",), ("agevalue",)
    )
    assert "h3" in context.evicted
    stats = federation.transport.stats
    assert stats.failed_sends > 0
    assert stats.retries > 0  # the doomed sends were retried before eviction
    assert federation.master.health.is_quarantined("h3")
    assert federation.master.health.evictions >= 1


def test_quorum_violation_raises_instead_of_degrading_further():
    """With min_workers=2, losing two of three workers is a typed abort."""
    federation = build(
        FailurePolicy(retries=0, on_worker_loss="degrade", min_workers=2)
    )
    federation.transport.set_down("h2", True)
    federation.transport.set_down("h3", True)
    with pytest.raises(QuorumError):
        run_algorithm_on_context(
            federation, ALL_WORKERS, "linear_regression",
            ("lefthippocampus",), ("agevalue",),
        )


def test_fail_policy_never_evicts():
    """Under on_worker_loss="fail" the same down worker aborts the flow."""
    federation = build(FailurePolicy(retries=0, on_worker_loss="fail"))
    federation.transport.set_down("h3", True)
    with pytest.raises(Exception) as excinfo:
        run_algorithm_on_context(
            federation, ALL_WORKERS, "linear_regression",
            ("lefthippocampus",), ("agevalue",),
        )
    from repro.errors import NodeUnavailableError

    assert isinstance(excinfo.value, NodeUnavailableError)


def test_secure_path_reshapes_around_evicted_worker():
    """SMPC aggregation with a pre-flight-evicted worker equals the clean
    secure run on the survivors (the share re-split path end to end)."""
    federation = build()
    clean = run_experiment(
        federation,
        "linear_regression",
        ("lefthippocampus",),
        ("agevalue",),
        datasets=("edsd", "adni"),
        aggregation="smpc",
    )
    assert clean.status.value == "success", clean.error

    federation.transport.set_down("h3", True)
    degraded, context = run_algorithm_on_context(
        federation,
        ALL_WORKERS,
        "linear_regression",
        ("lefthippocampus",),
        ("agevalue",),
        aggregation="smpc",
    )
    assert list(context.evicted) == ["h3"]
    assert_close(clean.result, degraded)
