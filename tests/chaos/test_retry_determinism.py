"""Retry determinism under concurrency (satellite 4).

The transport pre-draws every request's drop/jitter schedule in request
order, so the *same seed and drop schedule* must produce identical retry
counts and identical final results whether the fan-out runs on one thread
or eight.  This is the property that makes every chaos seed reproducible.
"""

from __future__ import annotations

import pytest

from repro.federation.policy import FailurePolicy

from tests.chaos.harness import (
    build_chaos_federation,
    chaos_worker_data,
    run_experiment,
)

POLICY = FailurePolicy(retries=3, on_worker_loss="degrade", min_workers=1)


def run_at_parallelism(worker_data, parallelism, chaos_seed, aggregation="plain"):
    federation = build_chaos_federation(
        worker_data,
        drop_probability=0.15,
        seed=chaos_seed,
        policy=POLICY,
        parallelism=parallelism,
    )
    result = run_experiment(
        federation,
        "linear_regression",
        ("lefthippocampus",),
        ("agevalue", "alzheimerbroadcategory"),
        aggregation=aggregation,
    )
    stats = federation.transport.stats
    return result, (stats.messages, stats.retries, stats.failed_sends)


@pytest.fixture(scope="module")
def worker_data():
    return chaos_worker_data()


def test_parallelism_does_not_change_retries_or_result(worker_data, chaos_seed):
    sequential, seq_stats = run_at_parallelism(worker_data, 1, chaos_seed)
    concurrent, conc_stats = run_at_parallelism(worker_data, 8, chaos_seed)
    assert sequential.status.value == concurrent.status.value
    assert sequential.error == concurrent.error
    assert sequential.result == concurrent.result
    assert seq_stats == conc_stats


def test_parallelism_invariance_holds_on_secure_path(worker_data, chaos_seed):
    sequential, seq_stats = run_at_parallelism(
        worker_data, 1, chaos_seed, aggregation="smpc"
    )
    concurrent, conc_stats = run_at_parallelism(
        worker_data, 8, chaos_seed, aggregation="smpc"
    )
    assert sequential.status.value == concurrent.status.value
    assert sequential.error == concurrent.error
    assert sequential.result == concurrent.result
    assert seq_stats == conc_stats


def test_repeat_runs_identical_at_high_parallelism(worker_data, chaos_seed):
    """Thread scheduling varies between runs; the outcome must not."""
    first, first_stats = run_at_parallelism(worker_data, 8, chaos_seed)
    second, second_stats = run_at_parallelism(worker_data, 8, chaos_seed)
    assert first.result == second.result
    assert first.error == second.error
    assert first_stats == second_stats


def test_different_seeds_draw_different_schedules(worker_data, chaos_seed):
    """Sanity check that the schedule actually depends on the seed (a
    constant schedule would make the invariance tests vacuous).  Retry
    *counts* can collide between seeds, but the jittered backoff delays
    make the simulated clock a near-perfect fingerprint of the schedule."""
    fed_a = build_chaos_federation(
        worker_data, drop_probability=0.15, seed=chaos_seed, policy=POLICY
    )
    fed_b = build_chaos_federation(
        worker_data, drop_probability=0.15, seed=chaos_seed + 1, policy=POLICY
    )
    for federation in (fed_a, fed_b):
        run_experiment(
            federation, "linear_regression",
            ("lefthippocampus",), ("agevalue", "alzheimerbroadcategory"),
        )
    assert (
        fed_a.transport.stats.simulated_seconds
        != fed_b.transport.stats.simulated_seconds
    )
