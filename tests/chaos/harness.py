"""Shared machinery for the chaos suite.

Builds lossy federations (seeded drop schedules + failure policies), runs
algorithms through the regular experiment engine, and classifies outcomes
against the suite's contract: a chaos run must either *succeed with a result
matching the clean oracle* or *fail with a typed FederationError subclass* —
never hang, and never return a silently wrong aggregate.
"""

from __future__ import annotations

from typing import Any, Mapping

import pytest

from repro import errors as error_module
from repro.core.context import ExecutionContext
from repro.core.experiment import ExperimentEngine, ExperimentRequest
from repro.core.registry import algorithm_registry
from repro.core.specs import validate_parameters
from repro.data.cdes import cde_registry
from repro.data.cohorts import CohortSpec, generate_cohort
from repro.federation.controller import Federation, FederationConfig, create_federation
from repro.federation.policy import FailurePolicy

import repro.algorithms  # noqa: F401  (register algorithms once)


def federation_error_names() -> frozenset[str]:
    """Names of every FederationError subclass (the allowed typed failures)."""
    names: set[str] = set()
    stack = [error_module.FederationError]
    while stack:
        cls = stack.pop()
        names.add(cls.__name__)
        stack.extend(cls.__subclasses__())
    return frozenset(names)


TYPED_FAILURES = federation_error_names()


def chaos_worker_data(rows: int = 120) -> dict[str, dict[str, Any]]:
    """Three hospitals, one dataset each (small, for many chaos runs)."""
    return {
        "hospital_a": {"dementia": generate_cohort(CohortSpec("edsd", rows, seed=11))},
        "hospital_b": {"dementia": generate_cohort(CohortSpec("adni", rows, seed=22))},
        "hospital_c": {"dementia": generate_cohort(CohortSpec("ppmi", rows, seed=33))},
    }


def build_chaos_federation(
    worker_data: Mapping[str, Mapping[str, Any]],
    *,
    drop_probability: float,
    seed: int,
    policy: FailurePolicy,
    parallelism: int | None = None,
) -> Federation:
    return create_federation(
        worker_data,
        FederationConfig(
            smpc_nodes=3,
            smpc_scheme="shamir",
            drop_probability=drop_probability,
            seed=seed,
            parallelism=parallelism,
            failure_policy=policy,
        ),
    )


def run_experiment(
    federation: Federation,
    algorithm: str,
    y=(),
    x=(),
    parameters: Mapping[str, Any] | None = None,
    datasets=("edsd", "adni", "ppmi"),
    aggregation: str = "plain",
):
    engine = ExperimentEngine(federation, aggregation=aggregation)
    return engine.run(
        ExperimentRequest(
            algorithm=algorithm,
            data_model="dementia",
            datasets=tuple(datasets),
            y=tuple(y),
            x=tuple(x),
            parameters=dict(parameters or {}),
        )
    )


def run_algorithm_on_context(
    federation: Federation,
    worker_datasets: Mapping[str, list[str]],
    algorithm: str,
    y=(),
    x=(),
    parameters: Mapping[str, Any] | None = None,
    aggregation: str = "plain",
    job_prefix: str | None = None,
) -> tuple[dict[str, Any], ExecutionContext]:
    """Drive an algorithm over an explicit worker set, bypassing planning.

    The engine's shipping planner consults the live catalog, which already
    excludes down workers — so it can never exercise the mid-flow eviction
    path.  Chaos tests that need a doomed worker *inside* the flow construct
    the context directly.
    """
    algorithm_cls = algorithm_registry.get(algorithm)
    validated = validate_parameters(algorithm_cls.parameters, dict(parameters or {}))
    model = cde_registry.get("dementia")
    metadata = model.metadata_for(list(y) + list(x))
    context = ExecutionContext(
        master=federation.master,
        data_model="dementia",
        worker_datasets={w: list(d) for w, d in worker_datasets.items()},
        aggregation=aggregation,
        job_prefix=job_prefix,
    )
    instance = algorithm_cls(
        context, y=list(y), x=list(x), parameters=validated, metadata=metadata
    )
    result = instance.run()
    context.cleanup()
    return result, context


def classify_outcome(result, oracle: Mapping[str, Any] | None = None) -> str:
    """Enforce the chaos contract on one finished experiment.

    Returns ``"success"`` or ``"typed-failure"``.  Anything else — an
    untyped error, a non-terminal status, or a successful result that
    disagrees with the oracle — fails the calling test.
    """
    status = result.status.value
    assert status in ("success", "error"), f"non-terminal status {status!r}"
    if status == "success":
        if oracle is not None:
            assert_close(oracle, result.result)
        return "success"
    error_name = (result.error or "").split(":", 1)[0]
    assert error_name in TYPED_FAILURES, (
        f"chaos run failed with untyped error {result.error!r}; "
        f"expected one of {sorted(TYPED_FAILURES)}"
    )
    return "typed-failure"


def assert_close(a, b, path="result"):
    """Recursive approximate equality over result dicts."""
    if isinstance(a, dict):
        assert set(a) == set(b), f"{path}: keys differ ({set(a) ^ set(b)})"
        for key in a:
            assert_close(a[key], b[key], f"{path}.{key}")
    elif isinstance(a, (list, tuple)):
        assert len(a) == len(b), f"{path}: length differs"
        for index, (x, y) in enumerate(zip(a, b)):
            assert_close(x, y, f"{path}[{index}]")
    elif isinstance(a, float):
        assert b == pytest.approx(a, rel=1e-5, abs=1e-4), f"{path}: {a} != {b}"
    else:
        assert a == b, f"{path}: {a} != {b}"
