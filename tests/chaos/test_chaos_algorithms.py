"""Chaos runs: representative algorithms under seeded drop/down schedules.

The contract (ISSUE acceptance criterion): under a lossy transport every
experiment must either return a quorum result matching the clean oracle or
fail with a typed :class:`FederationError` subclass — never hang (the
simulated transport is synchronous, so a hang would be a test timeout) and
never return a silently wrong aggregate.
"""

from __future__ import annotations

import pytest

from repro.federation.policy import FailurePolicy

from tests.chaos.harness import (
    build_chaos_federation,
    chaos_worker_data,
    classify_outcome,
    run_experiment,
)

CASES = [
    ("linear_regression", ("lefthippocampus",), ("agevalue", "alzheimerbroadcategory"), {}),
    ("logistic_regression", ("converted_ad",), ("p_tau", "lefthippocampus"), {}),
    ("kmeans", ("ab_42", "p_tau"), (), {"k": 2, "seed": 3}),
]
CASE_IDS = [case[0] for case in CASES]

DEGRADE = FailurePolicy(retries=5, on_worker_loss="degrade", min_workers=1)


@pytest.fixture(scope="module")
def worker_data():
    return chaos_worker_data()


@pytest.fixture(scope="module")
def clean_results(worker_data):
    """Oracle: every case's result on a lossless federation."""
    federation = build_chaos_federation(
        worker_data, drop_probability=0.0, seed=1, policy=FailurePolicy()
    )
    oracle = {}
    for algorithm, y, x, parameters in CASES:
        result = run_experiment(federation, algorithm, y, x, parameters)
        assert result.status.value == "success", result.error
        oracle[algorithm] = result.result
    return oracle


@pytest.mark.parametrize("algorithm, y, x, parameters", CASES, ids=CASE_IDS)
def test_light_drops_with_retries_match_clean_result(
    worker_data, clean_results, chaos_seed, algorithm, y, x, parameters
):
    """A 10%-drop schedule is absorbed entirely by retries: the run succeeds
    and the result is bit-for-bit the clean one."""
    federation = build_chaos_federation(
        worker_data, drop_probability=0.10, seed=chaos_seed, policy=DEGRADE
    )
    result = run_experiment(federation, algorithm, y, x, parameters)
    stats = federation.transport.stats
    if stats.failed_sends == 0:
        # No send was permanently lost, so no worker was evicted and the
        # quorum result must equal the oracle exactly.
        outcome = classify_outcome(result, oracle=clean_results[algorithm])
        assert outcome == "success", result.error
    else:
        # A send exhausted its retry budget under this seed (rare at 10%):
        # the run may degrade or abort, but only along typed paths.
        classify_outcome(result)


@pytest.mark.parametrize("algorithm, y, x, parameters", CASES, ids=CASE_IDS)
def test_heavy_drops_fail_typed_or_degrade(
    worker_data, chaos_seed, algorithm, y, x, parameters
):
    """At 35% drops with a single retry, losses reach the policy layer: each
    run must still terminate in a typed failure or a (possibly degraded)
    success — across several seeds."""
    policy = FailurePolicy(retries=1, on_worker_loss="degrade", min_workers=2)
    for offset in range(3):
        federation = build_chaos_federation(
            worker_data,
            drop_probability=0.35,
            seed=chaos_seed + offset,
            policy=policy,
        )
        result = run_experiment(federation, algorithm, y, x, parameters)
        classify_outcome(result)


def test_retries_are_exercised_and_visible(worker_data, clean_results, chaos_seed):
    """Across all three algorithms on one lossy transport, the 10% schedule
    must hit the retry path and surface it in the stats.  (A single small
    run can legitimately draw zero drops for some seeds; ~hundreds of
    messages cannot.)"""
    federation = build_chaos_federation(
        worker_data, drop_probability=0.10, seed=chaos_seed, policy=DEGRADE
    )
    for algorithm, y, x, parameters in CASES:
        result = run_experiment(federation, algorithm, y, x, parameters)
        if federation.transport.stats.failed_sends == 0:
            classify_outcome(result, oracle=clean_results[algorithm])
        else:
            classify_outcome(result)
    assert federation.transport.stats.retries > 0


def test_fail_policy_aborts_on_first_loss(worker_data, chaos_seed):
    """The legacy contract: under ``on_worker_loss="fail"`` a lossy run
    either survives on retries alone or aborts with a typed error."""
    policy = FailurePolicy(retries=0, on_worker_loss="fail")
    federation = build_chaos_federation(
        worker_data, drop_probability=0.5, seed=chaos_seed, policy=policy
    )
    result = run_experiment(
        federation, "linear_regression", ("lefthippocampus",), ("agevalue",)
    )
    outcome = classify_outcome(result)
    if outcome == "typed-failure":
        assert federation.transport.stats.failed_sends > 0


def test_smpc_path_survives_light_drops(worker_data, clean_results, chaos_seed):
    """The secure aggregation path under drops: retries keep the share
    imports complete, and the SMPC result equals the clean plain result."""
    federation = build_chaos_federation(
        worker_data, drop_probability=0.10, seed=chaos_seed, policy=DEGRADE
    )
    result = run_experiment(
        federation,
        "linear_regression",
        ("lefthippocampus",),
        ("agevalue", "alzheimerbroadcategory"),
        aggregation="smpc",
    )
    if federation.transport.stats.failed_sends == 0:
        outcome = classify_outcome(result, oracle=clean_results["linear_regression"])
        assert outcome == "success", result.error
    else:
        classify_outcome(result)


def test_chaos_runs_are_deterministic(worker_data, chaos_seed):
    """Same seed, same schedule: two independent federations produce the
    identical outcome, retry count and failure count."""
    outcomes = []
    for _ in range(2):
        federation = build_chaos_federation(
            worker_data, drop_probability=0.25, seed=chaos_seed, policy=DEGRADE
        )
        result = run_experiment(
            federation, "linear_regression", ("lefthippocampus",), ("agevalue",)
        )
        stats = federation.transport.stats
        outcomes.append(
            (result.status.value, result.error, result.result,
             stats.retries, stats.failed_sends, stats.messages)
        )
    assert outcomes[0] == outcomes[1]


def test_circuit_breaker_trips_and_readmits(worker_data):
    """A down worker trips the consecutive-failure breaker; answering a
    later ping re-admits it through ``Master.alive_workers``."""
    policy = FailurePolicy(
        retries=0, on_worker_loss="degrade", min_workers=1, failure_threshold=1
    )
    federation = build_chaos_federation(
        worker_data, drop_probability=0.0, seed=7, policy=policy
    )
    master = federation.master
    federation.transport.set_down("hospital_c", True)
    assert master.alive_workers() == ["hospital_a", "hospital_b"]
    assert master.health.is_quarantined("hospital_c")
    assert master.health.evictions == 1
    # Recovery: the worker answers the next ping and is re-admitted.
    federation.transport.set_down("hospital_c", False)
    assert master.alive_workers() == ["hospital_a", "hospital_b", "hospital_c"]
    assert not master.health.is_quarantined("hospital_c")
