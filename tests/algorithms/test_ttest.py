"""The t-test family against scipy references."""

import numpy as np
import pytest
import scipy.stats


class TestIndependent:
    def test_welch_matches_scipy(self, run, pooled):
        result = run("ttest_independent", y=["lefthippocampus"], x=["gender"])
        rows = pooled("lefthippocampus", "gender")
        females = [v for v, g in rows if g == "F"]
        males = [v for v, g in rows if g == "M"]
        reference = scipy.stats.ttest_ind(females, males, equal_var=False)
        assert result["t_statistic"] == pytest.approx(reference.statistic, abs=1e-9)
        assert result["p_value"] == pytest.approx(reference.pvalue, abs=1e-9)
        assert result["welch"] is True

    def test_pooled_matches_scipy(self, run, pooled):
        result = run(
            "ttest_independent", y=["lefthippocampus"], x=["gender"],
            parameters={"equal_variances": True},
        )
        rows = pooled("lefthippocampus", "gender")
        females = [v for v, g in rows if g == "F"]
        males = [v for v, g in rows if g == "M"]
        reference = scipy.stats.ttest_ind(females, males, equal_var=True)
        assert result["t_statistic"] == pytest.approx(reference.statistic, abs=1e-9)
        assert result["degrees_of_freedom"] == len(rows) - 2

    def test_group_means(self, run, pooled):
        result = run("ttest_independent", y=["lefthippocampus"], x=["gender"])
        rows = pooled("lefthippocampus", "gender")
        females = np.array([v for v, g in rows if g == "F"])
        assert result["means"][0] == pytest.approx(females.mean())
        assert result["n_observations"][0] == len(females)

    def test_ci_brackets_difference(self, run):
        result = run("ttest_independent", y=["lefthippocampus"], x=["gender"])
        assert result["ci_lower"] < result["mean_difference"] < result["ci_upper"]

    def test_more_than_two_groups_rejected(self, federation):
        from repro.core.experiment import ExperimentEngine, ExperimentRequest

        engine = ExperimentEngine(federation, aggregation="plain")
        result = engine.run(
            ExperimentRequest(
                algorithm="ttest_independent",
                data_model="dementia",
                datasets=("edsd", "adni", "ppmi"),
                y=("lefthippocampus",),
                x=("alzheimerbroadcategory",),
            )
        )
        assert result.status.value == "error"
        assert "exactly 2" in result.error


class TestOneSample:
    def test_matches_scipy(self, run, pooled):
        result = run("ttest_onesample", y=["p_tau"], parameters={"mu": 55.0})
        values = [v for (v,) in pooled("p_tau")]
        reference = scipy.stats.ttest_1samp(values, 55.0)
        assert result["t_statistic"] == pytest.approx(reference.statistic, abs=1e-9)
        assert result["p_value"] == pytest.approx(reference.pvalue, abs=1e-9)

    def test_default_mu_zero(self, run):
        result = run("ttest_onesample", y=["p_tau"])
        assert result["mu"] == 0.0
        assert result["t_statistic"] > 10  # p_tau is strictly positive

    def test_cohens_d(self, run, pooled):
        result = run("ttest_onesample", y=["p_tau"], parameters={"mu": 55.0})
        values = np.array([v for (v,) in pooled("p_tau")])
        expected = (values.mean() - 55.0) / values.std(ddof=1)
        assert result["cohens_d"] == pytest.approx(expected, abs=1e-9)


class TestPaired:
    def test_matches_scipy(self, run, pooled):
        result = run("ttest_paired", y=["lefthippocampus", "righthippocampus"])
        rows = pooled("lefthippocampus", "righthippocampus")
        reference = scipy.stats.ttest_rel(
            [a for a, _ in rows], [b for _, b in rows]
        )
        assert result["t_statistic"] == pytest.approx(reference.statistic, abs=1e-9)
        assert result["p_value"] == pytest.approx(reference.pvalue, abs=1e-9)

    def test_needs_exactly_two_variables(self, federation):
        from repro.core.experiment import ExperimentEngine, ExperimentRequest

        engine = ExperimentEngine(federation, aggregation="plain")
        result = engine.run(
            ExperimentRequest(
                algorithm="ttest_paired",
                data_model="dementia",
                datasets=("edsd",),
                y=("p_tau",),
            )
        )
        assert result.status.value == "error"
