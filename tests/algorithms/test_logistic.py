"""Federated logistic regression against a centralized IRLS reference."""

import numpy as np
import pytest

from tests.algorithms.conftest import design_matrix


def irls_reference(X, y, iterations=40):
    beta = np.zeros(X.shape[1])
    for _ in range(iterations):
        p = 1.0 / (1.0 + np.exp(-(X @ beta)))
        W = p * (1 - p)
        beta = beta + np.linalg.solve(X.T @ (X * W[:, None]), X.T @ (y - p))
    return beta


class TestLogisticRegression:
    def test_matches_centralized_irls(self, run, pooled):
        result = run(
            "logistic_regression",
            y=["gender"],
            x=["lefthippocampus", "agevalue"],
        )
        rows = pooled("gender", "lefthippocampus", "agevalue")
        y = np.array([1.0 if g == "M" else 0.0 for g, *_ in rows])
        X = design_matrix([(r[1], r[2]) for r in rows])
        beta = irls_reference(X, y)
        assert np.allclose(result["coefficients"], beta, atol=1e-6)
        assert result["positive_level"] == "M"
        assert result["converged"]

    def test_numeric_binary_response(self, run, pooled):
        result = run(
            "logistic_regression",
            y=["converted_ad"],
            x=["p_tau", "lefthippocampus"],
        )
        rows = pooled("converted_ad", "p_tau", "lefthippocampus")
        y = np.array([float(r[0]) for r in rows])
        X = design_matrix([(r[1], r[2]) for r in rows])
        beta = irls_reference(X, y)
        assert np.allclose(result["coefficients"], beta, atol=1e-6)
        # higher pTau and smaller hippocampus raise conversion odds
        assert result["coefficients"][1] > 0
        assert result["coefficients"][2] < 0

    def test_inference_and_fit_statistics(self, run):
        result = run(
            "logistic_regression",
            y=["converted_ad"],
            x=["p_tau", "lefthippocampus"],
        )
        assert len(result["std_err"]) == 3
        assert all(se > 0 for se in result["std_err"])
        for low, b, high in zip(result["ci_lower"], result["coefficients"], result["ci_upper"]):
            assert low < b < high
        assert result["odds_ratios"] == pytest.approx(
            list(np.exp(result["coefficients"]))
        )
        assert result["log_likelihood"] <= 0
        assert result["aic"] > 0
        assert 0 <= result["mcfadden_r_squared"] <= 1

    def test_classification_metrics_consistent(self, run):
        result = run(
            "logistic_regression",
            y=["converted_ad"],
            x=["p_tau", "lefthippocampus"],
        )
        confusion = result["confusion_matrix"]
        total = sum(confusion.values())
        assert total == result["n_observations"]
        accuracy = (confusion["tp"] + confusion["tn"]) / total
        assert result["accuracy"] == pytest.approx(accuracy)
        assert 0.5 < result["auc"] <= 1.0  # real signal

    def test_nonbinary_nominal_rejected(self, federation):
        from repro.core.experiment import ExperimentEngine, ExperimentRequest

        engine = ExperimentEngine(federation, aggregation="plain")
        result = engine.run(
            ExperimentRequest(
                algorithm="logistic_regression",
                data_model="dementia",
                datasets=("edsd", "adni", "ppmi"),
                y=("alzheimerbroadcategory",),
                x=("p_tau",),
            )
        )
        assert result.status.value == "error"
        assert "binary" in result.error


class TestLogisticRegressionCV:
    def test_fold_metrics_cover_data(self, run, pooled):
        result = run(
            "logistic_regression_cv",
            y=["converted_ad"],
            x=["p_tau", "lefthippocampus"],
            parameters={"n_splits": 3, "max_iterations": 10},
        )
        rows = pooled("converted_ad", "p_tau", "lefthippocampus")
        assert sum(f["n_test"] for f in result["folds"]) == len(rows)
        assert 0 <= result["mean_accuracy"] <= 1
        assert result["mean_accuracy"] > 0.6  # informative features

    def test_per_fold_coefficients(self, run):
        result = run(
            "logistic_regression_cv",
            y=["converted_ad"],
            x=["p_tau"],
            parameters={"n_splits": 3, "max_iterations": 10},
        )
        coefficients = np.array(result["fold_coefficients"])
        assert coefficients.shape == (3, 2)
        # folds differ but agree on the direction of the pTau effect
        assert (coefficients[:, 1] > 0).all()
