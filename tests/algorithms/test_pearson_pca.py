"""Pearson correlation and PCA against numpy/scipy references."""

import numpy as np
import pytest
import scipy.stats

VOLUMES = ["lefthippocampus", "righthippocampus", "leftlateralventricle", "minimentalstate"]


class TestPearson:
    def test_matrix_matches_numpy(self, run, pooled):
        result = run("pearson_correlation", y=VOLUMES)
        rows = pooled(*VOLUMES)
        matrix = np.array(rows, dtype=float)
        reference = np.corrcoef(matrix.T)
        assert np.allclose(result["correlations"], reference, atol=1e-10)
        assert result["n_observations"] == len(rows)

    def test_p_values_match_scipy(self, run, pooled):
        result = run("pearson_correlation", y=["lefthippocampus", "minimentalstate"])
        rows = pooled("lefthippocampus", "minimentalstate")
        reference = scipy.stats.pearsonr(
            [r[0] for r in rows], [r[1] for r in rows]
        )
        assert result["correlations"][0][1] == pytest.approx(reference.statistic, abs=1e-10)
        assert result["p_values"][0][1] == pytest.approx(reference.pvalue, abs=1e-10)

    def test_diagonal_is_one(self, run):
        result = run("pearson_correlation", y=VOLUMES)
        correlations = np.array(result["correlations"])
        assert np.allclose(np.diag(correlations), 1.0)

    def test_symmetry(self, run):
        result = run("pearson_correlation", y=VOLUMES)
        correlations = np.array(result["correlations"])
        assert np.allclose(correlations, correlations.T)

    def test_ci_brackets_estimate(self, run):
        result = run("pearson_correlation", y=["lefthippocampus", "minimentalstate"])
        r = result["correlations"][0][1]
        assert result["ci_lower"][0][1] < r < result["ci_upper"][0][1]

    def test_x_variables_merged(self, run):
        result = run(
            "pearson_correlation",
            y=["lefthippocampus"],
            x=["righthippocampus"],
        )
        assert result["variables"] == ["lefthippocampus", "righthippocampus"]

    def test_pairwise_complete_matches_per_pair_reference(self, run, worker_data):
        result = run(
            "pearson_correlation",
            y=["p_tau", "ab_42", "leftententorhinalarea"],
            parameters={"complete_cases": False},
        )
        # reference: pairwise-complete over all workers
        import numpy as np

        columns = {v: [] for v in result["variables"]}
        for models in worker_data.values():
            table = models["dementia"]
            for v in columns:
                columns[v].extend(table.column(v).to_list())
        arrays = {v: np.array([x if x is not None else np.nan for x in vals])
                  for v, vals in columns.items()}
        names = result["variables"]
        for i in range(len(names)):
            for j in range(i + 1, len(names)):
                a, b = arrays[names[i]], arrays[names[j]]
                both = ~np.isnan(a) & ~np.isnan(b)
                reference = np.corrcoef(a[both], b[both])[0, 1]
                assert result["correlations"][i][j] == pytest.approx(reference, abs=1e-9)
                assert result["pair_counts"][i][j] == int(both.sum())

    def test_pairwise_keeps_more_rows_than_complete_case(self, run):
        variables = ["p_tau", "ab_42", "leftententorhinalarea"]
        complete = run("pearson_correlation", y=variables)
        pairwise = run("pearson_correlation", y=variables,
                       parameters={"complete_cases": False})
        n_complete = complete["n_observations"]
        counts = np.asarray(pairwise["pair_counts"])
        off_diagonal = counts[~np.eye(len(variables), dtype=bool)]
        assert (off_diagonal >= n_complete).all()
        assert off_diagonal.max() > n_complete  # NA patterns differ per variable

    def test_single_variable_rejected(self, federation):
        from repro.core.experiment import ExperimentEngine, ExperimentRequest

        engine = ExperimentEngine(federation, aggregation="plain")
        result = engine.run(
            ExperimentRequest(
                algorithm="pearson_correlation",
                data_model="dementia",
                datasets=("edsd",),
                y=("p_tau",),
            )
        )
        assert result.status.value == "error"


class TestPCA:
    def test_eigenvalues_match_numpy(self, run, pooled):
        result = run("pca", y=VOLUMES)
        matrix = np.array(pooled(*VOLUMES), dtype=float)
        reference = np.sort(np.linalg.eigvalsh(np.corrcoef(matrix.T)))[::-1]
        assert np.allclose(result["eigenvalues"], reference, atol=1e-10)

    def test_eigenvectors_orthonormal(self, run):
        result = run("pca", y=VOLUMES)
        vectors = np.array(result["eigenvectors"])  # rows = components
        assert np.allclose(vectors @ vectors.T, np.eye(len(VOLUMES)), atol=1e-10)

    def test_explained_variance_sums_to_one(self, run):
        result = run("pca", y=VOLUMES)
        assert sum(result["explained_variance_ratio"]) == pytest.approx(1.0)
        cumulative = result["cumulative_explained_variance"]
        assert cumulative == sorted(cumulative)
        assert cumulative[-1] == pytest.approx(1.0)

    def test_covariance_mode(self, run, pooled):
        result = run("pca", y=VOLUMES, parameters={"standardize": False})
        matrix = np.array(pooled(*VOLUMES), dtype=float)
        reference = np.sort(np.linalg.eigvalsh(np.cov(matrix.T, ddof=1)))[::-1]
        assert np.allclose(result["eigenvalues"], reference, atol=1e-10)
        assert result["standardized"] is False

    def test_sign_convention_deterministic(self, run):
        a = run("pca", y=VOLUMES)
        b = run("pca", y=VOLUMES)
        assert a["eigenvectors"] == b["eigenvectors"]
        for component in a["eigenvectors"]:
            pivot = max(range(len(component)), key=lambda i: abs(component[i]))
            assert component[pivot] > 0

    def test_means_and_stds_reported(self, run, pooled):
        result = run("pca", y=VOLUMES)
        matrix = np.array(pooled(*VOLUMES), dtype=float)
        assert np.allclose(result["means"], matrix.mean(axis=0), atol=1e-10)
        assert np.allclose(result["stds"], matrix.std(axis=0, ddof=1), atol=1e-10)
