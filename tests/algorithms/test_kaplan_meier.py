"""Federated Kaplan-Meier estimator."""

import numpy as np
import pytest


def km_reference(times, events, grid):
    """Binned product-limit reference matching the federated convention."""
    n = len(times)
    survival = []
    current = float(n)
    s = 1.0
    for low, high in zip(grid[:-1], grid[1:]):
        in_bin = (times >= low) & (times < high)
        # the last bin is closed on the right
        if high == grid[-1]:
            in_bin = (times >= low) & (times <= high)
        d = float((in_bin & events).sum())
        c = float((in_bin & ~events).sum())
        if current > 0 and d > 0:
            s *= 1 - d / current
        survival.append(s)
        current -= d + c
    return np.array(survival)


class TestSingleCurve:
    def test_monotone_nonincreasing(self, run):
        result = run("kaplan_meier", y=["survival_months", "event_observed"])
        curve = result["curves"]["all"]["survival"]
        assert all(a >= b - 1e-12 for a, b in zip(curve, curve[1:]))
        assert curve[0] <= 1.0

    def test_matches_binned_reference(self, run, pooled):
        result = run(
            "kaplan_meier", y=["survival_months", "event_observed"],
            parameters={"n_bins": 40},
        )
        rows = pooled("survival_months", "event_observed")
        times = np.array([r[0] for r in rows])
        events = np.array([r[1] for r in rows]) > 0.5
        grid = np.array([times.min()] + result["time_grid"])
        reference = km_reference(times, events, grid)
        assert np.allclose(result["curves"]["all"]["survival"], reference, atol=1e-9)

    def test_counts(self, run, pooled):
        result = run("kaplan_meier", y=["survival_months", "event_observed"])
        rows = pooled("survival_months", "event_observed")
        curve = result["curves"]["all"]
        assert curve["n_subjects"] == len(rows)
        assert curve["n_events"] == sum(1 for r in rows if r[1] == 1)

    def test_confidence_bands_bracket_curve(self, run):
        result = run("kaplan_meier", y=["survival_months", "event_observed"])
        curve = result["curves"]["all"]
        for low, s, high in zip(curve["ci_lower"], curve["survival"], curve["ci_upper"]):
            assert low <= s <= high
            assert 0 <= low and high <= 1

    def test_wrong_variable_count(self, federation):
        from repro.core.experiment import ExperimentEngine, ExperimentRequest

        engine = ExperimentEngine(federation, aggregation="plain")
        result = engine.run(
            ExperimentRequest(
                algorithm="kaplan_meier",
                data_model="dementia",
                datasets=("edsd",),
                y=("survival_months",),
            )
        )
        assert result.status.value == "error"
        assert "two y variables" in result.error


class TestGroupedCurves:
    def test_curves_per_diagnosis(self, run):
        result = run(
            "kaplan_meier", y=["survival_months", "event_observed"],
            x=["alzheimerbroadcategory"],
        )
        assert set(result["curves"]) == set(result["groups"])
        assert len(result["groups"]) >= 3

    def test_ad_worse_survival_than_cn(self, run):
        result = run(
            "kaplan_meier", y=["survival_months", "event_observed"],
            x=["alzheimerbroadcategory"],
        )
        ad = result["curves"]["AD"]["survival"][-1]
        cn = result["curves"]["CN"]["survival"][-1]
        assert ad < cn

    def test_log_rank_detects_group_difference(self, run):
        result = run(
            "kaplan_meier", y=["survival_months", "event_observed"],
            x=["alzheimerbroadcategory"],
        )
        log_rank = result["log_rank"]
        assert log_rank["degrees_of_freedom"] == len(result["groups"]) - 1
        assert log_rank["p_value"] < 1e-6  # strong hazard separation by design
        assert sum(log_rank["observed"]) == pytest.approx(sum(log_rank["expected"]), rel=0.01)

    def test_no_log_rank_for_single_group(self, run):
        result = run("kaplan_meier", y=["survival_months", "event_observed"])
        assert "log_rank" not in result

    def test_median_survival_ordering(self, run):
        result = run(
            "kaplan_meier", y=["survival_months", "event_observed"],
            x=["alzheimerbroadcategory"],
        )
        ad_median = result["curves"]["AD"]["median_survival"]
        cn_median = result["curves"]["CN"]["median_survival"]
        assert ad_median is not None  # AD reaches 50% conversion in follow-up
        # CN rarely converts: either never reaches the median or much later
        assert cn_median is None or cn_median > ad_median

    def test_median_is_first_crossing(self, run):
        result = run("kaplan_meier", y=["survival_months", "event_observed"],
                     x=["alzheimerbroadcategory"])
        curve = result["curves"]["AD"]
        median = curve["median_survival"]
        grid = result["time_grid"]
        index = grid.index(median)
        assert curve["survival"][index] <= 0.5
        assert all(s > 0.5 for s in curve["survival"][:index])
