"""Federated k-means."""

import numpy as np
import pytest

BIOMARKERS = ["ab_42", "p_tau", "leftententorhinalarea"]


class TestKMeans:
    def test_partitions_all_points(self, run):
        result = run("kmeans", y=BIOMARKERS, parameters={"k": 3, "seed": 1})
        assert sum(result["cluster_sizes"]) == result["n_observations"]
        assert len(result["centroids"]) == 3
        assert all(len(c) == len(BIOMARKERS) for c in result["centroids"])

    def test_inertia_monotone_nonincreasing(self, run):
        result = run("kmeans", y=BIOMARKERS, parameters={"k": 3, "seed": 1})
        history = result["inertia_history"]
        assert all(a >= b - 1e-6 for a, b in zip(history, history[1:]))

    def test_converges(self, run):
        result = run(
            "kmeans", y=BIOMARKERS,
            parameters={"k": 3, "seed": 1, "iterations_max_number": 200},
        )
        assert result["converged"]
        assert result["iterations"] < 200

    def test_max_iterations_respected(self, run):
        result = run(
            "kmeans", y=BIOMARKERS,
            parameters={"k": 3, "seed": 1, "iterations_max_number": 2},
        )
        assert result["iterations"] <= 2

    def test_deterministic_for_seed(self, run):
        a = run("kmeans", y=BIOMARKERS, parameters={"k": 3, "seed": 5})
        b = run("kmeans", y=BIOMARKERS, parameters={"k": 3, "seed": 5})
        assert a["centroids"] == b["centroids"]

    def test_matches_centralized_lloyd(self, run, pooled):
        """Same init + same data => identical trajectory to a local Lloyd's."""
        result = run(
            "kmeans", y=BIOMARKERS, parameters={"k": 3, "seed": 9, "e": 1e-6},
        )
        matrix = np.array(pooled(*BIOMARKERS), dtype=float)
        rng = np.random.default_rng(9)
        lower = matrix.min(axis=0)
        upper = matrix.max(axis=0)
        centroids = lower + rng.random((3, matrix.shape[1])) * (upper - lower)
        for _ in range(result["iterations"]):
            distances = ((matrix[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
            assignment = distances.argmin(axis=1)
            for j in range(3):
                members = matrix[assignment == j]
                if len(members):
                    centroids[j] = members.mean(axis=0)
        assert np.allclose(result["centroids"], centroids, atol=1e-6)

    def test_k_larger_than_n_rejected(self, run, federation):
        from repro.core.experiment import ExperimentEngine, ExperimentRequest

        engine = ExperimentEngine(federation, aggregation="plain")
        result = engine.run(
            ExperimentRequest(
                algorithm="kmeans",
                data_model="dementia",
                datasets=("edsd",),
                y=("p_tau",),
                parameters={"k": 20, "iterations_max_number": 1},
                filter_sql="p_tau > 148",  # keeps only a handful of rows
            )
        )
        # either privacy threshold (too few rows) or the explicit k > n error
        assert result.status.value == "error"

    def test_biomarker_clusters_separate_diagnosis(self, run, worker_data):
        """The use case: clusters over Abeta42/pTau/entorhinal volume align
        with the AD spectrum (one low-Abeta42, high-pTau cluster)."""
        result = run("kmeans", y=BIOMARKERS, parameters={"k": 3, "seed": 2})
        centroids = np.array(result["centroids"])
        ab42_order = centroids[:, 0].argsort()
        ptau_of_lowest_ab42 = centroids[ab42_order[0], 1]
        ptau_of_highest_ab42 = centroids[ab42_order[-1], 1]
        assert ptau_of_lowest_ab42 > ptau_of_highest_ab42
