"""Federation-invariance: results do not depend on how data is partitioned.

The core correctness claim of a federated analytics platform: running an
algorithm over k workers must equal running it with all data on one worker
(and, through E3, equal the centralized computation).  Also checks that the
secure (SMPC) and plain aggregation paths agree.
"""

import numpy as np
import pytest

from repro.core.experiment import ExperimentEngine, ExperimentRequest
from repro.data.cohorts import CohortSpec, generate_cohort
from repro.engine.table import concat_tables
from repro.federation.controller import FederationConfig, create_federation

DATASETS = ("edsd", "adni")


def build_federations():
    """The same rows as one worker and as two workers."""
    edsd = generate_cohort(CohortSpec("edsd", 140, seed=77))
    adni = generate_cohort(CohortSpec("adni", 120, seed=78))
    config = FederationConfig(smpc_nodes=3, smpc_scheme="shamir", seed=5)
    split = create_federation(
        {"h1": {"dementia": edsd}, "h2": {"dementia": adni}}, config
    )
    single = create_federation(
        {"h_all": {"dementia": concat_tables([edsd, adni])}}, config
    )
    return single, split


@pytest.fixture(scope="module")
def engines():
    single, split = build_federations()
    return (
        ExperimentEngine(single, aggregation="plain"),
        ExperimentEngine(split, aggregation="plain"),
    )


@pytest.fixture(scope="module")
def split_engines():
    _, split = build_federations()
    return (
        ExperimentEngine(split, aggregation="plain"),
        ExperimentEngine(split, aggregation="smpc"),
    )


CASES = [
    ("linear_regression", ("lefthippocampus",), ("agevalue", "alzheimerbroadcategory"),
     {}, ("coefficients", "std_err", "r_squared")),
    ("logistic_regression", ("converted_ad",), ("p_tau", "lefthippocampus"),
     {}, ("coefficients", "accuracy", "log_likelihood")),
    ("ttest_independent", ("lefthippocampus",), ("gender",),
     {}, ("t_statistic", "p_value")),
    ("ttest_onesample", ("p_tau",), (), {"mu": 50.0}, ("t_statistic",)),
    ("ttest_paired", ("lefthippocampus", "righthippocampus"), (),
     {}, ("t_statistic",)),
    ("anova_oneway", ("lefthippocampus",), ("alzheimerbroadcategory",),
     {}, ("f_statistic", "p_value")),
    ("pearson_correlation", ("lefthippocampus", "minimentalstate"), (),
     {}, ("correlations",)),
    ("pca", ("lefthippocampus", "righthippocampus", "p_tau"), (),
     {}, ("eigenvalues", "eigenvectors")),
    ("kmeans", ("ab_42", "p_tau"), (), {"k": 2, "seed": 3}, ("centroids", "inertia")),
    ("naive_bayes", ("alzheimerbroadcategory",), ("lefthippocampus", "gender"),
     {}, ("model",)),
    ("kaplan_meier", ("survival_months", "event_observed"), (),
     {}, ("curves",)),
    ("cart", ("alzheimerbroadcategory",), ("lefthippocampus", "p_tau"),
     {"max_depth": 2}, ("tree",)),
    ("id3", ("alzheimerbroadcategory",), ("gender", "va_etiology"),
     {"max_depth": 2, "min_gain": 0.0}, ("tree",)),
    ("calibration_belt", ("converted_ad",), ("predicted_risk",),
     {}, ("degree", "test_statistic")),
    ("descriptive_stats", ("p_tau",), (), {}, ("pooled",)),
    ("linear_regression_cv", ("lefthippocampus",), ("agevalue",),
     {"n_splits": 3}, ()),  # folds are split locally, so only run-success
    ("naive_bayes_cv", ("alzheimerbroadcategory",), ("lefthippocampus",),
     {"n_splits": 3}, ()),
    ("anova_twoway", ("lefthippocampus",), ("alzheimerbroadcategory", "gender"),
     {}, ("terms",)),
]


def run_one(engine, algorithm, y, x, parameters):
    result = engine.run(
        ExperimentRequest(
            algorithm=algorithm,
            data_model="dementia",
            datasets=DATASETS,
            y=y,
            x=x,
            parameters=parameters,
        )
    )
    assert result.status.value == "success", f"{algorithm}: {result.error}"
    return result.result


def assert_close(a, b, path=""):
    if isinstance(a, dict):
        assert set(a) == set(b), f"{path}: keys differ"
        for key in a:
            assert_close(a[key], b[key], f"{path}.{key}")
    elif isinstance(a, (list, tuple)):
        assert len(a) == len(b), f"{path}: length differs"
        for index, (x, y) in enumerate(zip(a, b)):
            assert_close(x, y, f"{path}[{index}]")
    elif isinstance(a, float):
        assert b == pytest.approx(a, rel=1e-5, abs=1e-4), f"{path}: {a} != {b}"
    else:
        assert a == b, f"{path}: {a} != {b}"


@pytest.mark.parametrize("algorithm, y, x, parameters, keys", CASES,
                         ids=[c[0] for c in CASES])
def test_one_worker_equals_two_workers(engines, algorithm, y, x, parameters, keys):
    single_engine, split_engine = engines
    single = run_one(single_engine, algorithm, y, x, parameters)
    split = run_one(split_engine, algorithm, y, x, parameters)
    for key in keys:
        if algorithm == "descriptive_stats" and key == "pooled":
            # per-dataset tables depend on data placement; pooled must not
            assert_close(single[key], split[key], key)
        else:
            assert_close(single[key], split[key], key)


SMPC_CASES = [c for c in CASES if c[0] in (
    "linear_regression", "ttest_independent", "pearson_correlation", "kmeans",
)]


@pytest.mark.parametrize("algorithm, y, x, parameters, keys", SMPC_CASES,
                         ids=[c[0] for c in SMPC_CASES])
def test_plain_equals_smpc_path(split_engines, algorithm, y, x, parameters, keys):
    plain_engine, smpc_engine = split_engines
    plain = run_one(plain_engine, algorithm, y, x, parameters)
    secure = run_one(smpc_engine, algorithm, y, x, parameters)
    for key in keys:
        assert_close(plain[key], secure[key], key)
