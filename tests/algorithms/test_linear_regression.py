"""Federated linear regression equals the centralized OLS."""

import numpy as np
import pytest

from tests.algorithms.conftest import design_matrix


class TestLinearRegression:
    def test_matches_centralized_ols(self, run, pooled):
        result = run(
            "linear_regression",
            y=["lefthippocampus"],
            x=["agevalue", "alzheimerbroadcategory"],
        )
        rows = pooled("lefthippocampus", "agevalue", "alzheimerbroadcategory")
        y = np.array([r[0] for r in rows])
        levels = sorted({r[2] for r in rows}, key=["CN", "MCI", "AD", "Other"].index)
        X = design_matrix([(r[1], r[2]) for r in rows], nominal_levels={1: levels})
        beta, *_ = np.linalg.lstsq(X, y, rcond=None)
        assert np.allclose(result["coefficients"], beta, atol=1e-8)
        assert result["n_observations"] == len(rows)

    def test_inference_statistics(self, run, pooled):
        result = run("linear_regression", y=["lefthippocampus"], x=["agevalue"])
        rows = pooled("lefthippocampus", "agevalue")
        y = np.array([r[0] for r in rows])
        X = np.column_stack([np.ones(len(y)), [r[1] for r in rows]])
        beta = np.linalg.lstsq(X, y, rcond=None)[0]
        residuals = y - X @ beta
        dof = len(y) - 2
        mse = residuals @ residuals / dof
        se = np.sqrt(np.diag(np.linalg.inv(X.T @ X)) * mse)
        assert np.allclose(result["std_err"], se, atol=1e-8)
        assert result["degrees_of_freedom"] == dof
        # R^2 in [0, 1], CI brackets the estimate
        assert 0 <= result["r_squared"] <= 1
        for low, b, high in zip(result["ci_lower"], result["coefficients"], result["ci_upper"]):
            assert low < b < high

    def test_diagnosis_effect_negative(self, run):
        """The use-case signal: AD shrinks hippocampal volume."""
        result = run(
            "linear_regression",
            y=["lefthippocampus"],
            x=["alzheimerbroadcategory"],
        )
        names = result["variable_names"]
        ad_index = names.index("alzheimerbroadcategory[AD]")
        assert result["coefficients"][ad_index] < -0.5
        assert result["p_values"][ad_index] < 1e-10

    def test_variable_names_align(self, run):
        result = run(
            "linear_regression",
            y=["lefthippocampus"],
            x=["agevalue", "gender"],
        )
        assert result["variable_names"] == ["intercept", "agevalue", "gender[M]"]
        assert len(result["coefficients"]) == 3

    def test_singular_design_reported_as_error(self, federation):
        """A duplicated covariate makes X^T X singular; the experiment fails
        cleanly instead of crashing the platform."""
        from repro.core.experiment import ExperimentEngine, ExperimentRequest

        engine = ExperimentEngine(federation, aggregation="plain")
        result = engine.run(
            ExperimentRequest(
                algorithm="linear_regression",
                data_model="dementia",
                datasets=("edsd",),
                y=("lefthippocampus",),
                x=("agevalue", "agevalue"),
            )
        )
        assert result.status.value == "error"

    def test_filter_reduces_n(self, run):
        full = run("linear_regression", y=["lefthippocampus"], x=["agevalue"])
        filtered = run(
            "linear_regression", y=["lefthippocampus"], x=["agevalue"],
            filter_sql="alzheimerbroadcategory = 'AD'",
        )
        assert filtered["n_observations"] < full["n_observations"]


class TestLinearRegressionCV:
    def test_fold_metrics(self, run):
        result = run(
            "linear_regression_cv",
            y=["lefthippocampus"],
            x=["agevalue", "alzheimerbroadcategory"],
            parameters={"n_splits": 4},
        )
        assert result["n_splits"] == 4
        assert len(result["folds"]) == 4
        total_test = sum(f["n_test"] for f in result["folds"])
        assert total_test == run(
            "linear_regression", y=["lefthippocampus"],
            x=["agevalue", "alzheimerbroadcategory"],
        )["n_observations"]
        assert result["mean_r_squared"] > 0.5  # strong signal in the generator

    def test_rmse_consistent_with_mse(self, run):
        result = run(
            "linear_regression_cv", y=["lefthippocampus"], x=["agevalue"],
            parameters={"n_splits": 3},
        )
        for fold in result["folds"]:
            assert fold["rmse"] == pytest.approx(np.sqrt(fold["mse"]), rel=1e-9)

    def test_seed_changes_split(self, run):
        a = run("linear_regression_cv", y=["lefthippocampus"], x=["agevalue"],
                parameters={"n_splits": 3, "seed": 1})
        b = run("linear_regression_cv", y=["lefthippocampus"], x=["agevalue"],
                parameters={"n_splits": 3, "seed": 2})
        assert a["folds"][0]["mse"] != b["folds"][0]["mse"]
