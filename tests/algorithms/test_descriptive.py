"""Descriptive statistics: the Figure 3 dashboard tables."""

import numpy as np
import pytest


class TestPerDataset:
    def test_one_column_per_dataset(self, run):
        result = run("descriptive_stats", y=["p_tau", "leftententorhinalarea"])
        assert set(result["per_dataset"]) == {"edsd", "adni", "ppmi"}

    def test_numeric_statistics_match_direct(self, run, worker_data):
        result = run("descriptive_stats", y=["p_tau"])
        table = worker_data["hospital_a"]["dementia"]  # holds edsd
        values = np.array([v for v in table.column("p_tau").to_list() if v is not None])
        entry = result["per_dataset"]["edsd"]["p_tau"]
        assert entry["count"] == table.num_rows
        assert entry["datapoints"] == len(values)
        assert entry["na"] == table.num_rows - len(values)
        assert entry["mean"] == pytest.approx(values.mean())
        assert entry["std"] == pytest.approx(values.std(ddof=1))
        assert entry["se"] == pytest.approx(values.std(ddof=1) / np.sqrt(len(values)))
        assert entry["min"] == pytest.approx(values.min())
        assert entry["max"] == pytest.approx(values.max())
        assert entry["q2"] == pytest.approx(np.percentile(values, 50))

    def test_nominal_level_counts(self, run, worker_data):
        result = run("descriptive_stats", y=["gender"])
        table = worker_data["hospital_a"]["dementia"]
        females = sum(1 for v in table.column("gender").to_list() if v == "F")
        entry = result["per_dataset"]["edsd"]["gender"]
        assert entry["kind"] == "nominal"
        assert entry["levels"]["F"] == females

    def test_dashboard_layout_fields(self, run):
        """Each numeric cell carries the fields the Fig. 3 table shows."""
        result = run("descriptive_stats", y=["p_tau"])
        entry = result["per_dataset"]["edsd"]["p_tau"]
        for field in ("count", "datapoints", "na", "se", "mean", "min",
                      "q1", "q2", "q3", "max"):
            assert field in entry


class TestSuppression:
    def test_high_threshold_suppresses_per_dataset_stats(self, run):
        """The dashboard's NOT-ENOUGH-DATA behaviour: below the threshold a
        dataset releases only its counts."""
        result = run(
            "descriptive_stats", y=["p_tau"],
            parameters={"suppression_threshold": 10_000},
        )
        for dataset, stats in result["per_dataset"].items():
            entry = stats["p_tau"]
            assert entry["suppressed"] is True
            assert "mean" not in entry
            assert entry["count"] > 0  # counts stay visible

    def test_default_threshold_releases_stats(self, run):
        result = run("descriptive_stats", y=["p_tau"])
        for dataset, stats in result["per_dataset"].items():
            assert "mean" in stats["p_tau"]
            assert "suppressed" not in stats["p_tau"]

    def test_nominal_suppression(self, run):
        result = run(
            "descriptive_stats", y=["gender"],
            parameters={"suppression_threshold": 10_000},
        )
        for stats in result["per_dataset"].values():
            assert "levels" not in stats["gender"]
            assert stats["gender"]["suppressed"] is True


class TestPooled:
    def test_counts_add_up(self, run, pooled):
        result = run("descriptive_stats", y=["p_tau"])
        per_dataset = result["per_dataset"]
        total_datapoints = sum(per_dataset[d]["p_tau"]["datapoints"] for d in per_dataset)
        assert result["pooled"]["p_tau"]["datapoints"] == total_datapoints

    def test_pooled_moments_match_reference(self, run, pooled):
        result = run("descriptive_stats", y=["p_tau"])
        values = np.array([v for (v,) in pooled("p_tau")])
        entry = result["pooled"]["p_tau"]
        assert entry["mean"] == pytest.approx(values.mean(), rel=1e-9)
        assert entry["std"] == pytest.approx(values.std(ddof=1), rel=1e-9)
        assert entry["min"] == pytest.approx(values.min(), abs=1e-6)
        assert entry["max"] == pytest.approx(values.max(), abs=1e-6)

    def test_pooled_quantiles_approximate(self, run, pooled):
        result = run("descriptive_stats", y=["p_tau"], parameters={"n_bins": 200})
        values = np.array([v for (v,) in pooled("p_tau")])
        entry = result["pooled"]["p_tau"]
        spread = values.max() - values.min()
        for q, key in ((25, "q1"), (50, "q2"), (75, "q3")):
            assert abs(entry[key] - np.percentile(values, q)) < spread * 0.03

    def test_pooled_nominal(self, run, pooled):
        result = run("descriptive_stats", y=["gender"])
        rows = pooled("gender")
        females = sum(1 for (g,) in rows if g == "F")
        assert result["pooled"]["gender"]["levels"]["F"] == females

    def test_quantile_order(self, run):
        result = run("descriptive_stats", y=["leftententorhinalarea"])
        entry = result["pooled"]["leftententorhinalarea"]
        assert entry["min"] <= entry["q1"] <= entry["q2"] <= entry["q3"] <= entry["max"]
