"""Federated histograms and ANOVA Tukey HSD post-hoc."""

import numpy as np
import pytest
import scipy.stats


class TestHistogramNumeric:
    def test_counts_match_reference(self, run, pooled):
        result = run("histogram", y=["lefthippocampus"], parameters={"n_bins": 12})
        values = np.array([v for (v,) in pooled("lefthippocampus")])
        edges = np.asarray(result["edges"])
        reference, _ = np.histogram(values, bins=edges)
        released = np.asarray(result["histograms"]["all"]["counts"])
        # suppressed cells (small counts) become 0; everything else matches
        mask = released > 0
        assert np.array_equal(released[mask], reference[mask])
        assert result["histograms"]["all"]["total"] == len(values)

    def test_edges_span_cde_range(self, run):
        result = run("histogram", y=["lefthippocampus"], parameters={"n_bins": 10})
        assert result["edges"][0] == pytest.approx(1.0)   # CDE min
        assert result["edges"][-1] == pytest.approx(6.0)  # CDE max
        assert len(result["edges"]) == 11

    def test_small_cells_suppressed(self, run):
        result = run("histogram", y=["lefthippocampus"], parameters={"n_bins": 200})
        counts = np.asarray(result["histograms"]["all"]["counts"])
        from repro.algorithms.histograms import SUPPRESSION_THRESHOLD

        assert not ((counts > 0) & (counts < SUPPRESSION_THRESHOLD)).any()
        assert result["suppressed_cells"] > 0


class TestHistogramNominal:
    def test_level_counts(self, run, pooled):
        result = run("histogram", y=["gender"])
        rows = pooled("gender")
        females = sum(1 for (g,) in rows if g == "F")
        f_index = result["levels"].index("F")
        assert result["histograms"]["all"]["counts"][f_index] == females
        assert result["kind"] == "nominal"


class TestHistogramGrouped:
    def test_per_group_histograms(self, run, pooled):
        result = run(
            "histogram", y=["lefthippocampus"], x=["alzheimerbroadcategory"],
            parameters={"n_bins": 8},
        )
        assert set(result["groups"]) == set(result["histograms"])
        rows = pooled("lefthippocampus", "alzheimerbroadcategory")
        ad_count = sum(1 for _, g in rows if g == "AD")
        assert result["histograms"]["AD"]["total"] == ad_count

    def test_group_distributions_shift(self, run):
        """AD volumes concentrate in lower bins than CN volumes."""
        result = run(
            "histogram", y=["lefthippocampus"], x=["alzheimerbroadcategory"],
            parameters={"n_bins": 8},
        )
        edges = np.asarray(result["edges"])
        centers = (edges[:-1] + edges[1:]) / 2

        def weighted_mean(group):
            counts = np.asarray(result["histograms"][group]["counts"], dtype=float)
            return float((centers * counts).sum() / counts.sum())

        assert weighted_mean("AD") < weighted_mean("CN")


class TestTukeyHSD:
    def test_matches_scipy_tukey(self, run, pooled):
        result = run("anova_oneway", y=["lefthippocampus"], x=["alzheimerbroadcategory"])
        comparisons = {tuple(c["groups"]): c for c in result["pairwise_comparisons"]}
        rows = pooled("lefthippocampus", "alzheimerbroadcategory")
        groups = {}
        for value, level in rows:
            groups.setdefault(level, []).append(value)
        ordered_levels = result["groups"]
        reference = scipy.stats.tukey_hsd(*[groups[g] for g in ordered_levels])
        for i in range(len(ordered_levels)):
            for j in range(i + 1, len(ordered_levels)):
                ours = comparisons[(ordered_levels[i], ordered_levels[j])]
                assert ours["mean_difference"] == pytest.approx(
                    np.mean(groups[ordered_levels[i]]) - np.mean(groups[ordered_levels[j]]),
                    rel=1e-9,
                )
                assert ours["p_adjusted"] == pytest.approx(
                    reference.pvalue[i, j], abs=1e-6
                )

    def test_ci_brackets_difference(self, run):
        result = run("anova_oneway", y=["lefthippocampus"], x=["alzheimerbroadcategory"])
        for comparison in result["pairwise_comparisons"]:
            assert comparison["ci_lower"] < comparison["mean_difference"] < comparison["ci_upper"]

    def test_pairwise_disabled(self, run):
        result = run(
            "anova_oneway", y=["lefthippocampus"], x=["alzheimerbroadcategory"],
            parameters={"pairwise": False},
        )
        assert "pairwise_comparisons" not in result

    def test_all_pairs_present(self, run):
        result = run("anova_oneway", y=["lefthippocampus"], x=["alzheimerbroadcategory"])
        k = len(result["groups"])
        assert len(result["pairwise_comparisons"]) == k * (k - 1) // 2

    def test_strong_separation_detected(self, run):
        result = run("anova_oneway", y=["lefthippocampus"], x=["alzheimerbroadcategory"])
        comparisons = {tuple(sorted(c["groups"])): c for c in result["pairwise_comparisons"]}
        assert comparisons[("AD", "CN")]["significant"]
