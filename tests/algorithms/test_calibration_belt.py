"""The calibration belt."""

import numpy as np
import pytest


class TestCalibrationBelt:
    def test_detects_miscalibration(self, run):
        """The generator's risk score is deliberately overconfident."""
        result = run("calibration_belt", y=["converted_ad"], x=["predicted_risk"])
        assert result["test_p_value"] < 0.05
        assert result["well_calibrated"] is False

    def test_belt_structure(self, run):
        result = run("calibration_belt", y=["converted_ad"], x=["predicted_risk"])
        grid = result["probability_grid"]
        assert len(grid) == 100
        assert all(0 <= p <= 1 for p in grid)
        assert grid == sorted(grid)
        for band in (result["belt_80"], result["belt_95"]):
            assert len(band["lower"]) == len(grid)
            for low, mid, high in zip(band["lower"], result["calibration_curve"], band["upper"]):
                assert low <= mid <= high

    def test_95_belt_contains_80_belt(self, run):
        result = run("calibration_belt", y=["converted_ad"], x=["predicted_risk"])
        for l80, l95 in zip(result["belt_80"]["lower"], result["belt_95"]["lower"]):
            assert l95 <= l80 + 1e-12
        for u80, u95 in zip(result["belt_80"]["upper"], result["belt_95"]["upper"]):
            assert u95 >= u80 - 1e-12

    def test_degree_selection_bounded(self, run):
        result = run(
            "calibration_belt", y=["converted_ad"], x=["predicted_risk"],
            parameters={"max_degree": 2},
        )
        assert 1 <= result["degree"] <= 2
        assert len(result["coefficients"]) == result["degree"] + 1

    def test_overconfidence_direction(self, run):
        """Overconfident scores: fitted slope on logit(phat) below 1."""
        result = run("calibration_belt", y=["converted_ad"], x=["predicted_risk"])
        assert result["coefficients"][1] < 1.0

    def test_well_calibrated_score_passes(self, federation, worker_data):
        """Feeding the *observed* event frequency band as the predictor:
        recalibrated scores should not be flagged."""
        import numpy as np

        from repro.core.experiment import ExperimentEngine, ExperimentRequest
        from repro.engine.table import Table

        # Build a recalibrated predictor on each worker: p_cal chosen so that
        # logit(p_cal) = fitted a + b * logit(p_hat) from a pooled recalibration.
        rows = []
        for models in worker_data.values():
            table = models["dementia"]
            for risk, converted in zip(
                table.column("predicted_risk").to_list(),
                table.column("converted_ad").to_list(),
            ):
                rows.append((risk, converted))
        risk = np.clip(np.array([r[0] for r in rows]), 1e-6, 1 - 1e-6)
        outcome = np.array([r[1] for r in rows], dtype=float)
        g = np.log(risk / (1 - risk))
        X = np.column_stack([np.ones(len(g)), g])
        beta = np.zeros(2)
        for _ in range(30):
            p = 1 / (1 + np.exp(-(X @ beta)))
            W = p * (1 - p)
            beta += np.linalg.solve(X.T @ (X * W[:, None]), X.T @ (outcome - p))
        # if a ~ 0 and b ~ 1 the model is already calibrated; here b < 1.
        assert beta[1] < 1.0
