"""Algorithm edge cases on pathological (crafted) data."""

import numpy as np
import pytest

from repro.core.experiment import ExperimentEngine, ExperimentRequest
from repro.engine.table import Schema, Table
from repro.engine.types import SQLType
from repro.federation.controller import FederationConfig, create_federation


def crafted_federation(rows_per_worker: dict[str, list[tuple]], columns):
    """Build a federation from explicit rows; columns = [(name, type), ...]."""
    schema = Schema([("dataset", SQLType.VARCHAR)] + list(columns))
    worker_data = {}
    for worker, rows in rows_per_worker.items():
        dataset = f"ds_{worker}"
        table = Table.from_rows(schema, [(dataset, *row) for row in rows])
        worker_data[worker] = {"dementia": table}
    return create_federation(
        worker_data, FederationConfig(seed=1, privacy_threshold=5)
    )


def run(federation, algorithm, y=(), x=(), parameters=None, datasets=None):
    engine = ExperimentEngine(federation, aggregation="plain")
    if datasets is None:
        datasets = tuple(sorted(federation.master.availability["dementia"]))
    return engine.run(
        ExperimentRequest(
            algorithm=algorithm, data_model="dementia", datasets=datasets,
            y=tuple(y), x=tuple(x), parameters=parameters or {},
        )
    )


class TestAllMissingVariable:
    def test_descriptive_reports_all_na(self):
        rows = [(None, 3.0)] * 20
        federation = crafted_federation(
            {"w1": rows}, [("p_tau", SQLType.REAL), ("lefthippocampus", SQLType.REAL)]
        )
        result = run(federation, "descriptive_stats", y=["p_tau"])
        assert result.status.value == "success"
        pooled = result.result["pooled"]["p_tau"]
        assert pooled["datapoints"] == 0
        assert pooled["na"] == 20
        assert "mean" not in pooled  # nothing to summarize

    def test_regression_on_all_na_hits_privacy_threshold(self):
        rows = [(None, 3.0)] * 20
        federation = crafted_federation(
            {"w1": rows}, [("p_tau", SQLType.REAL), ("lefthippocampus", SQLType.REAL)]
        )
        result = run(federation, "linear_regression",
                     y=["lefthippocampus"], x=["p_tau"])
        assert result.status.value == "error"
        assert "privacy threshold" in result.error


class TestDegenerateDistributions:
    def test_constant_variable_ttest(self):
        rows = [(42.0,)] * 30
        federation = crafted_federation({"w1": rows}, [("p_tau", SQLType.REAL)])
        result = run(federation, "ttest_onesample", y=["p_tau"],
                     parameters={"mu": 42.0})
        assert result.status.value == "error"
        assert "zero variance" in result.error

    def test_histogram_of_constant_variable(self):
        rows = [(1.5,)] * 30
        federation = crafted_federation({"w1": rows}, [("minimentalstate", SQLType.REAL)])
        result = run(federation, "histogram", y=["minimentalstate"],
                     parameters={"n_bins": 5})
        assert result.status.value == "success"
        assert result.result["histograms"]["all"]["total"] == 30

    def test_pca_with_constant_column_reports_error(self):
        rows = [(float(i), 7.0) for i in range(30)]
        federation = crafted_federation(
            {"w1": rows}, [("p_tau", SQLType.REAL), ("ab_42", SQLType.REAL)]
        )
        result = run(federation, "pca", y=["p_tau", "ab_42"])
        assert result.status.value == "error"
        assert "constant" in result.error

    def test_pca_covariance_mode_tolerates_constant(self):
        rows = [(float(i), 7.0) for i in range(30)]
        federation = crafted_federation(
            {"w1": rows}, [("p_tau", SQLType.REAL), ("ab_42", SQLType.REAL)]
        )
        result = run(federation, "pca", y=["p_tau", "ab_42"],
                     parameters={"standardize": False})
        assert result.status.value == "success"
        assert result.result["eigenvalues"][1] == pytest.approx(0.0, abs=1e-9)


class TestGroupPathologies:
    def test_anova_group_with_one_observation(self):
        rows = [(float(i % 7), "CN") for i in range(29)] + [(5.0, "AD")]
        federation = crafted_federation(
            {"w1": rows},
            [("p_tau", SQLType.REAL), ("alzheimerbroadcategory", SQLType.VARCHAR)],
        )
        result = run(federation, "anova_oneway", y=["p_tau"],
                     x=["alzheimerbroadcategory"])
        assert result.status.value == "error"
        assert "fewer than 2" in result.error

    def test_single_observed_group_rejected(self):
        rows = [(float(i), "CN") for i in range(30)]
        federation = crafted_federation(
            {"w1": rows},
            [("p_tau", SQLType.REAL), ("alzheimerbroadcategory", SQLType.VARCHAR)],
        )
        result = run(federation, "anova_oneway", y=["p_tau"],
                     x=["alzheimerbroadcategory"])
        assert result.status.value == "error"
        assert "at least 2" in result.error

    def test_kmeans_more_clusters_than_points(self):
        rows = [(float(i), float(i)) for i in range(8)]
        federation = crafted_federation(
            {"w1": rows}, [("p_tau", SQLType.REAL), ("ab_42", SQLType.REAL)]
        )
        result = run(federation, "kmeans", y=["p_tau", "ab_42"],
                     parameters={"k": 12})
        assert result.status.value == "error"
        assert "cannot form" in result.error


class TestSurvivalEdgeCases:
    def test_no_events_flat_curve(self):
        rows = [(float(10 + i), 0) for i in range(25)]
        federation = crafted_federation(
            {"w1": rows},
            [("survival_months", SQLType.REAL), ("event_observed", SQLType.INT)],
        )
        result = run(federation, "kaplan_meier",
                     y=["survival_months", "event_observed"])
        assert result.status.value == "success"
        curve = result.result["curves"]["all"]
        assert all(s == 1.0 for s in curve["survival"])
        assert curve["n_events"] == 0

    def test_all_events_curve_reaches_zero(self):
        rows = [(float(1 + i), 1) for i in range(25)]
        federation = crafted_federation(
            {"w1": rows},
            [("survival_months", SQLType.REAL), ("event_observed", SQLType.INT)],
        )
        result = run(federation, "kaplan_meier",
                     y=["survival_months", "event_observed"])
        assert result.status.value == "success"
        assert result.result["curves"]["all"]["survival"][-1] == pytest.approx(0.0)


class TestCalibrationDirections:
    def test_well_calibrated_scores_pass(self):
        """Outcomes drawn exactly from the predicted probabilities: the belt
        must not flag miscalibration."""
        rng = np.random.default_rng(7)
        probabilities = rng.uniform(0.05, 0.95, 800)
        outcomes = (rng.random(800) < probabilities).astype(int)
        rows = list(zip(probabilities.tolist(), outcomes.tolist()))
        federation = crafted_federation(
            {"w1": rows},
            [("predicted_risk", SQLType.REAL), ("converted_ad", SQLType.INT)],
        )
        result = run(federation, "calibration_belt",
                     y=["converted_ad"], x=["predicted_risk"])
        assert result.status.value == "success"
        assert result.result["well_calibrated"] is True
        assert result.result["test_p_value"] > 0.05

    def test_underconfident_scores_flagged(self):
        """Scores squeezed toward 0.5 (underconfident): slope on logit > 1."""
        rng = np.random.default_rng(8)
        true_probability = rng.uniform(0.02, 0.98, 800)
        logit = np.log(true_probability / (1 - true_probability))
        squeezed = 1 / (1 + np.exp(-0.5 * logit))
        outcomes = (rng.random(800) < true_probability).astype(int)
        rows = list(zip(squeezed.tolist(), outcomes.tolist()))
        federation = crafted_federation(
            {"w1": rows},
            [("predicted_risk", SQLType.REAL), ("converted_ad", SQLType.INT)],
        )
        result = run(federation, "calibration_belt",
                     y=["converted_ad"], x=["predicted_risk"])
        assert result.status.value == "success"
        assert result.result["well_calibrated"] is False
        assert result.result["coefficients"][1] > 1.0


class TestWorkerErrorPaths:
    def test_unknown_udf_name_fails_cleanly(self):
        from repro.errors import UDFError
        from repro.federation.messages import Message

        rows = [(1.0,)] * 20
        federation = crafted_federation({"w1": rows}, [("p_tau", SQLType.REAL)])
        worker = federation.workers["w1"]
        with pytest.raises(UDFError, match="no registered UDF"):
            worker.handle(Message("master", "w1", "run_udf", {
                "job_id": "j", "udf_name": "ghost_udf", "arguments": {},
            }))

    def test_missing_udf_argument_fails_cleanly(self):
        from repro.algorithms.ttest import ttest_moments_local
        from repro.errors import UDFError
        from repro.federation.messages import Message
        from repro.udfgen.decorators import get_spec

        rows = [(1.0,)] * 20
        federation = crafted_federation({"w1": rows}, [("p_tau", SQLType.REAL)])
        worker = federation.workers["w1"]
        with pytest.raises(UDFError, match="missing argument"):
            worker.handle(Message("master", "w1", "run_udf", {
                "job_id": "j",
                "udf_name": get_spec(ttest_moments_local).name,
                "arguments": {},
            }))


class TestUnbalancedFederation:
    def test_tiny_worker_blocks_only_itself(self):
        """A worker below the privacy threshold fails the multi-site request
        but the big site alone still works."""
        big = [(float(i % 50), ) for i in range(60)]
        tiny = [(1.0,)] * 3
        federation = crafted_federation(
            {"w_big": big, "w_tiny": tiny}, [("p_tau", SQLType.REAL)]
        )
        both = run(federation, "ttest_onesample", y=["p_tau"],
                   datasets=("ds_w_big", "ds_w_tiny"))
        assert both.status.value == "error"
        assert "privacy threshold" in both.error
        solo = run(federation, "ttest_onesample", y=["p_tau"],
                   datasets=("ds_w_big",))
        assert solo.status.value == "success"
        assert solo.result["n_observations"] == 60
