"""Federated CART and ID3."""

import numpy as np
import pytest

from repro.udfgen.runtime import Relation
from repro.udfgen.udf_helpers import route_tree


def predict(tree, relation):
    leaves = route_tree(relation, tree)
    return [tree["nodes"][leaf]["prediction"] for leaf in leaves]


class TestCARTClassification:
    def test_tree_structure(self, run):
        result = run(
            "cart", y=["alzheimerbroadcategory"],
            x=["lefthippocampus", "p_tau", "gender"],
            parameters={"max_depth": 3},
        )
        assert result["task"] == "classification"
        tree = result["tree"]
        assert result["n_leaves"] + sum(
            1 for n in tree["nodes"].values() if n["type"] == "split"
        ) == result["n_nodes"]
        assert result["max_depth"] <= 3

    def test_split_reduces_gini(self, run):
        result = run(
            "cart", y=["alzheimerbroadcategory"],
            x=["lefthippocampus", "p_tau"],
            parameters={"max_depth": 2},
        )
        tree = result["tree"]
        for node in tree["nodes"].values():
            if node["type"] != "split":
                continue
            left = tree["nodes"][str(node["left"])]
            right = tree["nodes"][str(node["right"])]
            n = node["n"]
            weighted = (left["n"] * left["impurity"] + right["n"] * right["impurity"]) / n
            assert weighted <= node["impurity"] + 1e-12

    def test_children_partition_parent(self, run):
        result = run(
            "cart", y=["alzheimerbroadcategory"],
            x=["lefthippocampus", "p_tau"],
            parameters={"max_depth": 3},
        )
        tree = result["tree"]
        for node in tree["nodes"].values():
            if node["type"] == "split":
                left = tree["nodes"][str(node["left"])]
                right = tree["nodes"][str(node["right"])]
                assert left["n"] + right["n"] == node["n"]

    def test_min_samples_leaf_respected(self, run):
        result = run(
            "cart", y=["alzheimerbroadcategory"],
            x=["lefthippocampus", "p_tau"],
            parameters={"max_depth": 5, "min_samples_leaf": 25},
        )
        for node in result["tree"]["nodes"].values():
            if node["type"] == "leaf":
                assert node["n"] >= 25 or node["n"] == 0

    def test_predictions_beat_majority_class(self, run, pooled):
        result = run(
            "cart", y=["alzheimerbroadcategory"],
            x=["lefthippocampus", "p_tau", "gender"],
            parameters={"max_depth": 4},
        )
        rows = pooled("alzheimerbroadcategory", "lefthippocampus", "p_tau", "gender")
        relation = Relation({
            "lefthippocampus": np.array([r[1] for r in rows]),
            "p_tau": np.array([r[2] for r in rows]),
            "gender": np.array([r[3] for r in rows], dtype=object),
        })
        predictions = predict(result["tree"], relation)
        actual = [r[0] for r in rows]
        accuracy = np.mean([p == a for p, a in zip(predictions, actual)])
        majority = max(set(actual), key=actual.count)
        baseline = actual.count(majority) / len(actual)
        assert accuracy > baseline + 0.05

    def test_nominal_binary_split_supported(self, run):
        result = run(
            "cart", y=["alzheimerbroadcategory"], x=["gender", "va_etiology"],
            parameters={"max_depth": 2, "min_improvement": 0.0},
        )
        assert result["task"] == "classification"


class TestCARTRegression:
    def test_regression_tree(self, run):
        result = run(
            "cart", y=["minimentalstate"], x=["lefthippocampus", "agevalue"],
            parameters={"max_depth": 3},
        )
        assert result["task"] == "regression"
        root = result["tree"]["nodes"]["0"]
        assert isinstance(root["prediction"], float)

    def test_variance_reduction_tracks_signal(self, run):
        """MMSE is driven by hippocampal volume: the root splits on it."""
        result = run(
            "cart", y=["minimentalstate"], x=["lefthippocampus", "agevalue"],
            parameters={"max_depth": 2},
        )
        assert result["tree"]["nodes"]["0"]["feature"] == "lefthippocampus"

    def test_leaf_prediction_is_mean(self, run, pooled):
        result = run(
            "cart", y=["minimentalstate"], x=["lefthippocampus"],
            parameters={"max_depth": 1},
        )
        tree = result["tree"]
        root = tree["nodes"]["0"]
        if root["type"] == "split":
            rows = pooled("minimentalstate", "lefthippocampus")
            threshold = root["threshold"]
            left_values = [v for v, h in rows if h <= threshold]
            left = tree["nodes"][str(root["left"])]
            assert left["prediction"] == pytest.approx(np.mean(left_values), rel=1e-9)
            assert left["n"] == len(left_values)


class TestID3:
    def test_structure_and_gain(self, run):
        result = run(
            "id3", y=["alzheimerbroadcategory"],
            x=["gender", "psy_etiology", "va_etiology"],
            parameters={"max_depth": 3, "min_gain": 0.0},
        )
        tree = result["tree"]
        for node in tree["nodes"].values():
            if node["type"] == "split":
                assert node["gain"] >= 0
                assert set(node["children"]) >= {"no", "yes"} or set(node["children"]) == {"F", "M"}

    def test_feature_not_reused_on_path(self, run):
        result = run(
            "id3", y=["alzheimerbroadcategory"],
            x=["gender", "psy_etiology"],
            parameters={"max_depth": 4, "min_gain": 0.0, "min_samples_split": 2},
        )
        tree = result["tree"]

        def walk(node_id, seen):
            node = tree["nodes"][str(node_id)]
            if node["type"] != "split":
                return
            assert node["feature"] not in seen
            for child in node["children"].values():
                walk(child, seen | {node["feature"]})

        walk(tree["root"], set())

    def test_children_counts_sum(self, run):
        result = run(
            "id3", y=["alzheimerbroadcategory"],
            x=["gender", "psy_etiology", "va_etiology"],
            parameters={"max_depth": 2, "min_gain": 0.0},
        )
        tree = result["tree"]
        for node in tree["nodes"].values():
            if node["type"] == "split":
                children_n = sum(
                    tree["nodes"][str(c)]["n"] for c in node["children"].values()
                )
                assert children_n == node["n"]

    def test_max_depth_one_is_stump(self, run):
        result = run(
            "id3", y=["alzheimerbroadcategory"], x=["gender"],
            parameters={"max_depth": 1, "min_gain": 0.0},
        )
        assert result["max_depth"] <= 1
