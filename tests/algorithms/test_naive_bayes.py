"""Federated Naive Bayes training and cross-validation."""

import numpy as np
import pytest

FEATURES = ["lefthippocampus", "p_tau", "gender"]


class TestTraining:
    def test_model_structure(self, run):
        result = run("naive_bayes", y=["alzheimerbroadcategory"], x=FEATURES)
        model = result["model"]
        assert set(model["classes"]) <= {"CN", "MCI", "AD", "Other"}
        assert len(model["priors"]) == len(model["classes"])
        assert sum(model["priors"]) == pytest.approx(1.0, abs=1e-9)
        assert len(model["features"]) == len(FEATURES)

    def test_gaussian_parameters_match_reference(self, run, pooled):
        result = run("naive_bayes", y=["alzheimerbroadcategory"], x=FEATURES,
                     parameters={"alpha": 0.0})
        model = result["model"]
        rows = pooled("alzheimerbroadcategory", *FEATURES)
        ad_values = np.array([r[1] for r in rows if r[0] == "AD"])
        ad_index = model["classes"].index("AD")
        params = model["features"][0][ad_index]
        assert params["mean"] == pytest.approx(ad_values.mean(), rel=1e-9)
        assert params["var"] == pytest.approx(ad_values.var(), rel=1e-6)

    def test_categorical_probabilities(self, run, pooled):
        result = run("naive_bayes", y=["alzheimerbroadcategory"], x=FEATURES,
                     parameters={"alpha": 1.0})
        model = result["model"]
        rows = pooled("alzheimerbroadcategory", *FEATURES)
        cn_rows = [r for r in rows if r[0] == "CN"]
        cn_females = sum(1 for r in cn_rows if r[3] == "F")
        cn_index = model["classes"].index("CN")
        gender_index = FEATURES.index("gender")
        probabilities = model["features"][gender_index][cn_index]["level_probs"]
        expected = (cn_females + 1.0) / (len(cn_rows) + 2.0)
        assert probabilities[0] == pytest.approx(expected, rel=1e-9)
        assert sum(probabilities) == pytest.approx(1.0)

    def test_smoothing_avoids_zero_probabilities(self, run):
        result = run("naive_bayes", y=["alzheimerbroadcategory"], x=FEATURES)
        model = result["model"]
        gender_index = FEATURES.index("gender")
        for per_class in model["features"][gender_index]:
            assert all(p > 0 for p in per_class["level_probs"])


class TestCrossValidation:
    def test_confusion_covers_all_rows(self, run, pooled):
        result = run(
            "naive_bayes_cv", y=["alzheimerbroadcategory"], x=FEATURES,
            parameters={"n_splits": 3},
        )
        rows = pooled("alzheimerbroadcategory", *FEATURES)
        confusion = np.array(result["confusion_matrix"])
        assert confusion.sum() == len(rows)
        assert sum(f["n_test"] for f in result["folds"]) == len(rows)

    def test_informative_features_beat_chance(self, run):
        result = run(
            "naive_bayes_cv", y=["alzheimerbroadcategory"], x=FEATURES,
            parameters={"n_splits": 3},
        )
        assert result["mean_accuracy"] > 0.5

    def test_accuracy_from_confusion_diagonal(self, run):
        result = run(
            "naive_bayes_cv", y=["alzheimerbroadcategory"], x=FEATURES,
            parameters={"n_splits": 3},
        )
        confusion = np.array(result["confusion_matrix"])
        overall = np.trace(confusion) / confusion.sum()
        weighted = sum(
            f["accuracy"] * f["n_test"] for f in result["folds"]
        ) / sum(f["n_test"] for f in result["folds"])
        assert overall == pytest.approx(weighted, rel=1e-9)
