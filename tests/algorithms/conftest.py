"""Algorithm-test helpers: run experiments and build pooled references."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.experiment import ExperimentEngine, ExperimentRequest

ALL_DATASETS = ("edsd", "adni", "ppmi")


@pytest.fixture(scope="module")
def run(federation):
    """Run an algorithm on the shared federation (plain path, fast)."""
    engine = ExperimentEngine(federation, aggregation="plain")

    def _run(algorithm, y=(), x=(), parameters=None, datasets=ALL_DATASETS, filter_sql=None):
        result = engine.run(
            ExperimentRequest(
                algorithm=algorithm,
                data_model="dementia",
                datasets=tuple(datasets),
                y=tuple(y),
                x=tuple(x),
                parameters=parameters or {},
                filter_sql=filter_sql,
            )
        )
        assert result.status.value == "success", f"{algorithm}: {result.error}"
        return result.result

    return _run


@pytest.fixture(scope="session")
def pooled(worker_data):
    """Centralized complete-case reference rows."""

    def _pooled(*columns):
        rows = []
        for models in worker_data.values():
            table = models["dementia"]
            lists = [table.column(c).to_list() for c in columns]
            rows.extend(row for row in zip(*lists) if None not in row)
        return rows

    return _pooled


def design_matrix(rows, nominal_levels=None):
    """Reference design matrix: numeric passthrough + observed-level dummies."""
    nominal_levels = nominal_levels or {}
    n = len(rows)
    columns = [np.ones(n)]
    for index in range(len(rows[0])):
        values = [row[index] for row in rows]
        if index in nominal_levels:
            for level in nominal_levels[index][1:]:
                columns.append(np.array([1.0 if v == level else 0.0 for v in values]))
        else:
            columns.append(np.array(values, dtype=float))
    return np.column_stack(columns)
