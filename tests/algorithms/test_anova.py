"""ANOVA against scipy references."""

import numpy as np
import pytest
import scipy.stats


class TestOneWay:
    def test_matches_scipy_f_oneway(self, run, pooled):
        result = run("anova_oneway", y=["lefthippocampus"], x=["alzheimerbroadcategory"])
        rows = pooled("lefthippocampus", "alzheimerbroadcategory")
        groups = {}
        for value, level in rows:
            groups.setdefault(level, []).append(value)
        reference = scipy.stats.f_oneway(*groups.values())
        assert result["f_statistic"] == pytest.approx(reference.statistic, abs=1e-8)
        assert result["p_value"] == pytest.approx(reference.pvalue, abs=1e-12)

    def test_group_statistics(self, run, pooled):
        result = run("anova_oneway", y=["lefthippocampus"], x=["alzheimerbroadcategory"])
        rows = pooled("lefthippocampus", "alzheimerbroadcategory")
        cn = np.array([v for v, g in rows if g == "CN"])
        index = result["groups"].index("CN")
        assert result["group_counts"][index] == len(cn)
        assert result["group_means"][index] == pytest.approx(cn.mean())
        assert result["group_stds"][index] == pytest.approx(cn.std(ddof=1))

    def test_sum_of_squares_decomposition(self, run, pooled):
        result = run("anova_oneway", y=["lefthippocampus"], x=["alzheimerbroadcategory"])
        rows = pooled("lefthippocampus", "alzheimerbroadcategory")
        values = np.array([v for v, _ in rows])
        total_ss = ((values - values.mean()) ** 2).sum()
        assert result["ss_between"] + result["ss_within"] == pytest.approx(total_ss, rel=1e-9)
        assert 0 <= result["eta_squared"] <= 1

    def test_degrees_of_freedom(self, run, pooled):
        result = run("anova_oneway", y=["lefthippocampus"], x=["alzheimerbroadcategory"])
        n = len(pooled("lefthippocampus", "alzheimerbroadcategory"))
        k = len(result["groups"])
        assert result["df_between"] == k - 1
        assert result["df_within"] == n - k


class TestTwoWay:
    def test_terms_present(self, run):
        result = run(
            "anova_twoway",
            y=["lefthippocampus"],
            x=["alzheimerbroadcategory", "gender"],
        )
        terms = result["terms"]
        assert set(terms) == {
            "alzheimerbroadcategory", "gender",
            "alzheimerbroadcategory:gender", "residual",
        }
        for term, stats in terms.items():
            assert stats["ss"] >= 0
            if term != "residual":
                assert 0 <= stats["p_value"] <= 1

    def test_sequential_ss_matches_regression_reference(self, run, pooled):
        """Type I SS via explicit nested OLS on the pooled data."""
        result = run(
            "anova_twoway",
            y=["lefthippocampus"],
            x=["alzheimerbroadcategory", "gender"],
        )
        rows = pooled("lefthippocampus", "alzheimerbroadcategory", "gender")
        y = np.array([r[0] for r in rows])
        levels_a = result["levels"]["alzheimerbroadcategory"]
        levels_b = result["levels"]["gender"]
        a_dummies = np.column_stack(
            [[1.0 if r[1] == level else 0.0 for r in rows] for level in levels_a[1:]]
        )
        b_dummies = np.column_stack(
            [[1.0 if r[2] == level else 0.0 for r in rows] for level in levels_b[1:]]
        )
        ones = np.ones((len(y), 1))

        def sse(X):
            beta, *_ = np.linalg.lstsq(X, y, rcond=None)
            r = y - X @ beta
            return float(r @ r)

        sse_0 = sse(ones)
        sse_a = sse(np.hstack([ones, a_dummies]))
        sse_ab = sse(np.hstack([ones, a_dummies, b_dummies]))
        assert result["terms"]["alzheimerbroadcategory"]["ss"] == pytest.approx(
            sse_0 - sse_a, rel=1e-6
        )
        assert result["terms"]["gender"]["ss"] == pytest.approx(sse_a - sse_ab, rel=1e-6, abs=1e-6)

    def test_strong_main_effect_weak_interaction(self, run):
        result = run(
            "anova_twoway",
            y=["lefthippocampus"],
            x=["alzheimerbroadcategory", "gender"],
        )
        terms = result["terms"]
        assert terms["alzheimerbroadcategory"]["p_value"] < 1e-10
        # the generator has no diagnosis-gender interaction
        assert terms["alzheimerbroadcategory:gender"]["p_value"] > 0.01

    def test_requires_two_factors(self, federation):
        from repro.core.experiment import ExperimentEngine, ExperimentRequest

        engine = ExperimentEngine(federation, aggregation="plain")
        result = engine.run(
            ExperimentRequest(
                algorithm="anova_twoway",
                data_model="dementia",
                datasets=("edsd",),
                y=("lefthippocampus",),
                x=("gender",),
            )
        )
        assert result.status.value == "error"
        assert "two nominal factors" in result.error
