"""SMPC kernel benchmark: python reference vs numpy limb kernel.

The headline number of the vectorized-kernel work: a 10k-element secure sum
at 3 nodes (the E4 shape) under each kernel and each scheme, with bit-exact
opened values and identical round/element telemetry asserted inline.  The
table is written to ``results/BENCH_smpc_kernels.txt`` and the machine-
readable summary to ``results/BENCH_smpc_kernels.json`` (the CI gate and the
README performance table read the JSON).

Run: ``PYTHONPATH=src python -m pytest benchmarks/bench_smpc_kernels.py -s``
"""

from __future__ import annotations

import json
import time

import numpy as np

from benchmarks.conftest import RESULTS_DIR, write_report
from repro.smpc import field
from repro.smpc.cluster import SMPCCluster

ELEMENTS = 10_000
NODES = 3
REPS = 5
SCHEMES = ("shamir", "full_threshold")
OPS = ("sum", "min", "union")
SMALL_OPS_ELEMENTS = 200  # comparison ops are bit-decomposed; keep them small


def _payloads(n_elements: int, operation: str) -> dict[str, dict]:
    rng = np.random.default_rng(42)
    out = {}
    for i in range(NODES):
        if operation == "union":
            data = rng.integers(0, 2, n_elements).astype(float).tolist()
        else:
            data = rng.normal(0.0, 100.0, n_elements).tolist()
        out[f"worker_{i}"] = {"stat": {"data": data, "operation": operation}}
    return out


def _run_once(kernel: str, scheme: str, operation: str, n_elements: int):
    previous = field.set_kernel(kernel)
    try:
        times: list[float] = []
        result = meter = None
        for _ in range(REPS):
            cluster = SMPCCluster(n_nodes=NODES, scheme=scheme, seed=7)
            payloads = _payloads(n_elements, operation)
            start = time.perf_counter()
            for worker, payload in payloads.items():
                cluster.import_shares("job", worker, payload)
            result = cluster.aggregate("job")
            times.append(time.perf_counter() - start)
            meter = (cluster.communication.rounds, cluster.communication.elements)
        return min(times), result, meter, times
    finally:
        field.set_kernel(previous)


def test_kernel_speedup_table():
    lines = [
        "SMPC kernel comparison: python reference vs numpy limb kernel",
        f"secure aggregation, {NODES} nodes, best of {REPS} runs",
        "(auto = default deployment mode: limb kernel for long vectors,",
        " python bignums below the dispatch-overhead crossover)",
        "",
        f"{'scheme':<16} {'op':<6} {'n':>6} {'python_ms':>10} {'numpy_ms':>9} "
        f"{'auto_ms':>8} {'speedup':>8} {'rounds':>7} {'elements':>9}",
    ]
    summary: dict = {
        "benchmark": "smpc_kernels",
        "elements": ELEMENTS,
        "nodes": NODES,
        "reps": REPS,
        "rows": [],
    }
    headline_samples: list[float] = []
    for scheme in SCHEMES:
        for operation in OPS:
            n = ELEMENTS if operation == "sum" else SMALL_OPS_ELEMENTS
            t_py, r_py, m_py, _ = _run_once("python", scheme, operation, n)
            t_np, r_np, m_np, np_times = _run_once("numpy", scheme, operation, n)
            t_auto, r_auto, m_auto, _ = _run_once("auto", scheme, operation, n)
            # The tentpole acceptance: bit-exact opened values and unchanged
            # SMPC telemetry under both kernels (and the auto router).
            assert r_py == r_np == r_auto, (
                f"{scheme}/{operation}: opened values differ"
            )
            assert m_py == m_np == m_auto, f"{scheme}/{operation}: telemetry differs"
            speedup = t_py / t_np
            lines.append(
                f"{scheme:<16} {operation:<6} {n:>6} {t_py * 1000:>10.2f} "
                f"{t_np * 1000:>9.2f} {t_auto * 1000:>8.2f} {speedup:>7.2f}x "
                f"{m_np[0]:>7} {m_np[1]:>9}"
            )
            summary["rows"].append(
                {
                    "scheme": scheme,
                    "operation": operation,
                    "elements": n,
                    "python_ms": round(t_py * 1000, 3),
                    "numpy_ms": round(t_np * 1000, 3),
                    "auto_ms": round(t_auto * 1000, 3),
                    "speedup": round(speedup, 3),
                    "rounds": m_np[0],
                    "meter_elements": m_np[1],
                    "bit_exact": True,
                }
            )
            if scheme == "shamir" and operation == "sum":
                summary["headline_speedup"] = round(speedup, 3)
                headline_samples = np_times
    lines += [
        "",
        "sum rows are the 10k-element headline; min/union are bit-decomposed",
        "protocols benched at smaller n (auto routes their short vectors back",
        "to python bignums).  full_threshold sharing is dominated by the",
        "stream-pinned per-party RNG draws both kernels must replay",
        "identically, so its speedup is bounded by the draw cost.",
    ]
    write_report("BENCH_smpc_kernels", lines)
    # Fold in the stable SLO-gate schema (``repro health`` reads name /
    # config / samples / p50 / p95 / wall_s) on top of the detailed table:
    # the headline is the shamir 10k-sum under the numpy limb kernel.
    from repro.observability.slo import BenchResult

    stable = BenchResult.from_samples(
        "smpc_kernels",
        headline_samples,
        config={
            "scheme": "shamir",
            "operation": "sum",
            "elements": ELEMENTS,
            "nodes": NODES,
            "kernel": "numpy",
        },
    )
    summary.update(stable.to_dict())
    (RESULTS_DIR / "BENCH_smpc_kernels.json").write_text(
        json.dumps(summary, indent=2) + "\n"
    )
    # The tentpole floor, also enforced (more leniently) by the CI gate.
    assert summary["headline_speedup"] >= 1.0
