"""E2 — §1 use case: "Federated analyses in Alzheimer's disease".

Four centers (Brescia 1960, Lausanne 1032, Lille 1103, ADNI 1066 — the
paper's caseload), data never leaving its hospital:

(a) how brain volumes contribute to diagnosis  -> federated linear
    regression of hippocampal volume on diagnosis + covariates,
(b) clusters on Abeta42, pTau and left entorhinal volume -> federated
    k-means (k = 3),
(c) influence of the non-AD etiologies PSY (depression) and VA (vascular
    damage) -> regression terms for both etiologies.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.experiment import ExperimentEngine, ExperimentRequest
from repro.data.cohorts import alzheimers_use_case_cohorts
from repro.federation.controller import FederationConfig, create_federation

from benchmarks.conftest import write_report

DATASETS = ("brescia", "lausanne", "lille", "adni")


@pytest.fixture(scope="module")
def use_case_federation():
    cohorts = alzheimers_use_case_cohorts(seed=2024)
    return create_federation(
        {worker: {"dementia": table} for worker, table in cohorts.items()},
        FederationConfig(smpc_nodes=3, smpc_scheme="shamir", seed=7),
    )


@pytest.fixture(scope="module")
def engine(use_case_federation):
    return ExperimentEngine(use_case_federation, aggregation="smpc")


def run(engine, algorithm, y, x=(), parameters=None):
    result = engine.run(
        ExperimentRequest(
            algorithm=algorithm,
            data_model="dementia",
            datasets=DATASETS,
            y=tuple(y),
            x=tuple(x),
            parameters=parameters or {},
        )
    )
    assert result.status.value == "success", result.error
    return result.result


def test_benchmark_use_case_regression(benchmark, engine):
    result = benchmark.pedantic(
        run, args=(engine, "linear_regression", ["lefthippocampus"],
                   ["alzheimerbroadcategory", "agevalue"]),
        rounds=3, iterations=1,
    )
    assert result["n_observations"] > 5000


def test_benchmark_use_case_kmeans(benchmark, engine):
    result = benchmark.pedantic(
        run, args=(engine, "kmeans", ["ab_42", "p_tau", "leftententorhinalarea"]),
        kwargs={"parameters": {"k": 3, "seed": 1, "iterations_max_number": 30}},
        rounds=3, iterations=1,
    )
    assert len(result["centroids"]) == 3


def test_report_use_case(engine):
    lines = ["E2 / §1 use case — federated analyses in Alzheimer's disease", ""]

    # (a) brain volume repartition across diagnosis
    regression = run(
        engine, "linear_regression",
        ["lefthippocampus"], ["alzheimerbroadcategory", "agevalue"],
    )
    lines.append("(a) linear regression: lefthippocampus ~ diagnosis + age "
                 f"(n={regression['n_observations']}, caseload of 4 centers)")
    lines.append(f"{'term':<32}{'coef':>10}{'se':>10}{'p':>12}")
    for name, coef, se, p in zip(
        regression["variable_names"], regression["coefficients"],
        regression["std_err"], regression["p_values"],
    ):
        lines.append(f"{name:<32}{coef:>10.4f}{se:>10.4f}{p:>12.2e}")
    lines.append(f"R^2 = {regression['r_squared']:.4f}")
    lines.append("")

    # (b) clusters on Abeta42, pTau, left entorhinal volume
    clusters = run(
        engine, "kmeans", ["ab_42", "p_tau", "leftententorhinalarea"],
        parameters={"k": 3, "seed": 1, "iterations_max_number": 50},
    )
    lines.append("(b) k-means (k=3) on Abeta42 / pTau / left entorhinal volume")
    lines.append(f"{'cluster':<10}{'ab_42':>12}{'p_tau':>12}{'ent. vol':>12}{'size':>8}")
    order = np.argsort([c[0] for c in clusters["centroids"]])
    for rank, index in enumerate(order):
        centroid = clusters["centroids"][index]
        lines.append(
            f"{rank:<10}{centroid[0]:>12.1f}{centroid[1]:>12.1f}"
            f"{centroid[2]:>12.3f}{clusters['cluster_sizes'][index]:>8}"
        )
    lines.append(f"iterations: {clusters['iterations']}, converged: {clusters['converged']}")
    lines.append("")

    # (c) influence of PSY and VA etiologies
    etiology = run(
        engine, "linear_regression",
        ["lefthippocampus"],
        ["alzheimerbroadcategory", "psy_etiology", "va_etiology"],
    )
    lines.append("(c) non-AD etiologies (PSY depression, VA vascular damage)")
    lines.append(f"{'term':<32}{'coef':>10}{'p':>12}")
    for name, coef, p in zip(
        etiology["variable_names"], etiology["coefficients"], etiology["p_values"],
    ):
        if "etiology" in name or "alzheimer" in name:
            lines.append(f"{name:<32}{coef:>10.4f}{p:>12.2e}")
    write_report("e2_alzheimers", lines)

    # Expected shapes: AD lowers hippocampal volume; low-Abeta42 cluster has
    # high pTau and small entorhinal volume (the AD-like cluster).
    names = regression["variable_names"]
    assert regression["coefficients"][names.index("alzheimerbroadcategory[AD]")] < -0.5
    low_ab42 = order[0]
    high_ab42 = order[-1]
    assert clusters["centroids"][low_ab42][1] > clusters["centroids"][high_ab42][1]
    assert clusters["centroids"][low_ab42][2] < clusters["centroids"][high_ab42][2]
