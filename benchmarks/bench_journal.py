"""Durability overhead: the write-ahead journal on the e5 workload.

Runs the e5 scaling workload (4-worker federated linear regression on a
``sleep_latency`` transport, so deterministic modeled sends dominate the
wall time) twice — once with a :class:`DurabilityManager` journaling every
submit/dispatch/read/terminal, once without — and gates the journaled p95
against the recorded e5 baseline: durability must cost **< 5%**.

A micro-section also reports raw journal append throughput so regressions
in the framing/fsync path show up even when the macro gate has headroom.

Results land in ``results/BENCH_journal.json`` (stable BenchResult schema
plus the comparison block) and ``results/journal_overhead.txt``.
"""

from __future__ import annotations

import json
import tempfile
import time

from repro.core.experiment import ExperimentEngine
from repro.durability.recovery import DurabilityManager
from repro.observability.slo import BenchResult

from benchmarks.bench_e5_scaling import (
    SPEEDUP_LATENCY_S,
    TOTAL_ROWS,
    build_federation,
    linreg_request,
)
from benchmarks.conftest import RESULTS_DIR, write_report

WORKERS = 4
ROUNDS = 5
OVERHEAD_BUDGET = 0.05  # journaling must cost < 5% of the e5 p95
BASELINE_PATH = RESULTS_DIR / "BASELINE_e5_scaling.json"
MICRO_APPENDS = 2000


def _timed_linreg(durability: DurabilityManager | None) -> float:
    federation = build_federation(
        WORKERS, sleep_latency=True, latency_seconds=SPEEDUP_LATENCY_S
    )
    engine = ExperimentEngine(
        federation, aggregation="plain", durability=durability
    )
    datasets = tuple(f"site{i}" for i in range(WORKERS))
    t0 = time.perf_counter()
    outcome = engine.run(linreg_request(datasets))
    elapsed = time.perf_counter() - t0
    assert outcome.status.value == "success", outcome.error
    return elapsed


def _micro_append_rate(state_dir: str) -> tuple[float, dict]:
    manager = DurabilityManager(state_dir)
    payload = {"job_id": "bench", "index": 0, "key": "LocalStepNode:n1"}
    t0 = time.perf_counter()
    for index in range(MICRO_APPENDS):
        manager.journal.append("step", dict(payload, index=index))
    elapsed = time.perf_counter() - t0
    stats = manager.stats()
    manager.close()
    return MICRO_APPENDS / elapsed, stats


def test_benchmark_journal_overhead():
    plain_samples: list[float] = []
    journaled_samples: list[float] = []
    journal_stats: dict = {}
    with tempfile.TemporaryDirectory(prefix="repro-bench-journal-") as state_dir:
        for round_index in range(ROUNDS):
            plain_samples.append(_timed_linreg(None))
            manager = DurabilityManager(f"{state_dir}/run{round_index}")
            journaled_samples.append(_timed_linreg(manager))
            journal_stats = manager.stats()
            manager.close()
        micro_rate, micro_stats = _micro_append_rate(f"{state_dir}/micro")

    journaled = BenchResult.from_samples(
        "journal_overhead",
        journaled_samples,
        config={
            "workers": WORKERS,
            "total_rows": TOTAL_ROWS,
            "latency_seconds": SPEEDUP_LATENCY_S,
            "parallelism": "auto",
            "algorithm": "linear_regression",
            "journaled": True,
        },
    )
    plain = BenchResult.from_samples("journal_off", plain_samples)

    baseline = json.loads(BASELINE_PATH.read_text())
    # The recorded baseline anchors the gate, but host speed drifts between
    # the machine that recorded it and the one running CI — so the reference
    # is the *slower* of the baseline and a same-host journal-off run.  On a
    # baseline-speed host this is exactly "<5% over BASELINE_e5_scaling";
    # elsewhere it degrades to the paired on/off comparison.
    reference_p95 = max(baseline["p95"], plain.p95)
    budget_p95 = reference_p95 * (1.0 + OVERHEAD_BUDGET)

    lines = [
        "journal overhead on the e5 workload "
        f"({WORKERS} workers, {ROUNDS} rounds, sleep-latency transport)",
        "",
        f"  {'':<14}{'p50 (s)':>10}{'p95 (s)':>10}",
        f"  {'journal off':<14}{plain.p50:>10.4f}{plain.p95:>10.4f}",
        f"  {'journal on':<14}{journaled.p50:>10.4f}{journaled.p95:>10.4f}",
        f"  {'e5 baseline':<14}{baseline['p50']:>10.4f}{baseline['p95']:>10.4f}",
        "",
        f"  gate: journaled p95 {journaled.p95:.4f} < "
        f"max(baseline, journal-off) p95 * {1 + OVERHEAD_BUDGET:.2f} "
        f"= {budget_p95:.4f}",
        f"  per-experiment journal records: "
        f"{journal_stats.get('journal', {}).get('appends_total', 0)}",
        f"  micro append rate: {micro_rate:,.0f} records/s "
        f"({MICRO_APPENDS} framed+CRC'd appends)",
    ]
    write_report("journal_overhead", lines)

    payload = journaled.to_dict()
    payload["comparison"] = {
        "baseline": "BASELINE_e5_scaling.json",
        "baseline_p95": baseline["p95"],
        "reference_p95": round(reference_p95, 6),
        "budget": OVERHEAD_BUDGET,
        "budget_p95": round(budget_p95, 6),
        "plain_p50": plain.p50,
        "plain_p95": plain.p95,
        "micro_appends_per_second": round(micro_rate, 1),
        "journal_stats": journal_stats,
        "micro_stats": micro_stats,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_journal.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    # With only ROUNDS samples the p95 is effectively the max, so a single
    # scheduler hiccup could trip the tail gate on a loaded CI host.  The
    # paired medians are far more stable: accept the run when either the
    # tail is inside the budget or the median overhead clearly is.
    median_overhead = journaled.p50 / plain.p50 - 1.0
    assert journaled.p95 < budget_p95 or median_overhead < OVERHEAD_BUDGET, (
        f"journaling p95 {journaled.p95:.4f}s exceeds the {OVERHEAD_BUDGET:.0%} "
        f"budget over the e5 baseline ({budget_p95:.4f}s) and the paired "
        f"median overhead is {median_overhead:.1%}"
    )
    # Sanity: journaling really happened during the timed runs.
    assert journal_stats["journal"]["appends_total"] > 0
