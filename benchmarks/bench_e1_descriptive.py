"""E1 — Figure 3: the descriptive-statistics dashboard tables.

Regenerates the per-dataset variable tables the MIP dashboard shows
(datapoints, NA, SE, mean, min, Q1-Q3, max per dataset column) and measures
the latency of the descriptive-statistics experiment.
"""

from __future__ import annotations

import pytest

from repro.core.experiment import ExperimentEngine, ExperimentRequest

from benchmarks.conftest import write_report

VARIABLES = ["p_tau", "leftententorhinalarea", "rightlateralventricle", "gender"]
DATASETS = ("edsd", "adni", "ppmi")


def run_descriptive(federation, aggregation="smpc"):
    engine = ExperimentEngine(federation, aggregation=aggregation)
    result = engine.run(
        ExperimentRequest(
            algorithm="descriptive_stats",
            data_model="dementia",
            datasets=DATASETS,
            y=tuple(VARIABLES),
        )
    )
    assert result.status.value == "success", result.error
    return result.result


def test_benchmark_descriptive_dashboard(benchmark, bench_federation):
    result = benchmark.pedantic(
        run_descriptive, args=(bench_federation,), rounds=3, iterations=1
    )
    assert set(result["per_dataset"]) == set(DATASETS)


def test_report_figure3_tables(bench_federation):
    result = run_descriptive(bench_federation)
    lines = ["E1 / paper Figure 3 — descriptive statistics dashboard", ""]
    row_keys = ["count", "datapoints", "na", "se", "mean", "min", "q1", "q2", "q3", "max"]
    for variable in VARIABLES:
        lines.append(f"== {variable} ==")
        header = f"{'statistic':<12}" + "".join(f"{d:>14}" for d in DATASETS) + f"{'pooled':>14}"
        lines.append(header)
        per_dataset = result["per_dataset"]
        pooled = result["pooled"][variable]
        if pooled.get("kind") == "nominal":
            for level in pooled["levels"]:
                cells = [per_dataset[d][variable]["levels"].get(level, 0) for d in DATASETS]
                row = f"{level:<12}" + "".join(f"{c:>14}" for c in cells)
                lines.append(row + f"{pooled['levels'][level]:>14}")
            continue
        for key in row_keys:
            cells = []
            for dataset in DATASETS:
                value = per_dataset[dataset][variable].get(key)
                cells.append(f"{value:>14.3f}" if isinstance(value, float) else f"{value!s:>14}")
            pooled_value = pooled.get(key)
            pooled_cell = (
                f"{pooled_value:>14.3f}" if isinstance(pooled_value, float) else f"{pooled_value!s:>14}"
            )
            lines.append(f"{key:<12}" + "".join(cells) + pooled_cell)
        lines.append("")
    write_report("e1_descriptive", lines)
    # Shape checks mirroring the paper's dashboard values: NA rates present,
    # per-dataset counts equal cohort sizes.
    assert result["per_dataset"]["edsd"]["p_tau"]["count"] == 500
    assert result["per_dataset"]["edsd"]["p_tau"]["na"] > 0
