"""Shared benchmark fixtures and the results reporter.

Every bench regenerates one table/figure of the paper's evaluation story
(see DESIGN.md §4 and EXPERIMENTS.md).  Reproduced tables are printed and
written to ``benchmarks/results/`` so EXPERIMENTS.md can cite them.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.data.cohorts import CohortSpec, generate_cohort
from repro.federation.controller import FederationConfig, create_federation

import repro.algorithms  # noqa: F401

RESULTS_DIR = Path(__file__).parent / "results"


def write_report(name: str, lines: list[str]) -> None:
    """Print a reproduced table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = "\n".join(lines)
    print(f"\n{text}")
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def write_metrics_snapshot(name: str, federation) -> Path:
    """Persist the federation's unified metrics next to the bench results.

    Writes ``results/METRICS_<name>.json`` so each ``BENCH_*.json`` ships
    with the transport/plan-cache/SMPC/audit counters of the run that
    produced it.
    """
    import json

    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"METRICS_{name}.json"
    snapshot = federation.metrics_registry().snapshot()
    path.write_text(json.dumps(snapshot, indent=2, sort_keys=True, default=str) + "\n")
    return path


@pytest.fixture(scope="session")
def bench_federation():
    """Three hospitals, moderate cohorts; plain transport defaults."""
    worker_data = {
        "hospital_a": {"dementia": generate_cohort(CohortSpec("edsd", 500, seed=1))},
        "hospital_b": {"dementia": generate_cohort(CohortSpec("adni", 400, seed=2))},
        "hospital_c": {"dementia": generate_cohort(CohortSpec("ppmi", 350, seed=3))},
    }
    return create_federation(
        worker_data, FederationConfig(smpc_nodes=3, smpc_scheme="shamir", seed=11)
    )
