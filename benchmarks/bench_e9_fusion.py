"""E9 — §2 roadmap ablation: UDF fusion and stateful execution.

The paper's roadmap: "integrating this process with recent research
advancements to in-engine, performant and stateful Python UDF execution
using tracing JIT compilation and UDF fusion [1, 9]".  Both are implemented
(see `repro.udfgen.generator`); this bench quantifies them on a step chain
with a large intermediate state:

- *naive*       — one application per step, state pickled between steps,
- *stateful*    — session cache hands the live state object to the next step,
- *fused*       — the whole chain is one generated UDF; intermediates never
                  touch SQL at all.
"""

from __future__ import annotations

import itertools
import time

import numpy as np
import pytest

from repro.engine.database import Database, table_from_arrays
from repro.udfgen import (
    FusionStep,
    StepOutput,
    generate_fused_application,
    generate_udf_application,
    literal,
    relation,
    run_udf_application,
    state,
    transfer,
    udf,
)
from repro.udfgen.decorators import get_spec

from benchmarks.conftest import write_report

N_ROWS = 40_000
N_STEPS = 6

_INVOCATION = itertools.count()


@udf(data=relation(), return_type=[state()])
def chain_load(data):
    return {"matrix": data.to_matrix()}


@udf(previous=state(), shift=literal(), return_type=[state()])
def chain_transform(previous, shift):
    return {"matrix": previous["matrix"] * 1.0001 + shift}


@udf(previous=state(), return_type=[transfer()])
def chain_reduce(previous):
    return {"total": float(previous["matrix"].sum())}


def make_database() -> Database:
    rng = np.random.default_rng(3)
    database = Database()
    database.register_table(
        "chain_data",
        table_from_arrays(
            ["a", "b", "c"],
            [rng.normal(size=N_ROWS) for _ in range(3)],
        ),
    )
    return database


def run_naive(database: Database) -> float:
    tag = f"n{next(_INVOCATION)}"
    app = generate_udf_application(
        get_spec(chain_load), f"{tag}_0", {"data": "chain_data"}, stateful=False
    )
    (current,) = run_udf_application(database, app)
    for index in range(N_STEPS):
        app = generate_udf_application(
            get_spec(chain_transform), f"{tag}_{index + 1}",
            {"previous": current, "shift": 0.5}, stateful=False,
        )
        (current,) = run_udf_application(database, app)
    app = generate_udf_application(
        get_spec(chain_reduce), f"{tag}_r", {"previous": current}, stateful=False
    )
    (out,) = run_udf_application(database, app)
    import json

    return json.loads(database.scalar(f"SELECT * FROM {out}"))["total"]


def run_stateful(database: Database) -> float:
    tag = f"s{next(_INVOCATION)}"
    app = generate_udf_application(get_spec(chain_load), f"{tag}_0", {"data": "chain_data"})
    (current,) = run_udf_application(database, app)
    for index in range(N_STEPS):
        app = generate_udf_application(
            get_spec(chain_transform), f"{tag}_{index + 1}",
            {"previous": current, "shift": 0.5},
        )
        (current,) = run_udf_application(database, app)
    app = generate_udf_application(get_spec(chain_reduce), f"{tag}_r", {"previous": current})
    (out,) = run_udf_application(database, app)
    import json

    return json.loads(database.scalar(f"SELECT * FROM {out}"))["total"]


def run_fused(database: Database) -> float:
    steps = [FusionStep(get_spec(chain_load), {"data": "chain_data"})]
    for index in range(N_STEPS):
        steps.append(
            FusionStep(
                get_spec(chain_transform),
                {"previous": StepOutput(index), "shift": 0.5},
            )
        )
    steps.append(FusionStep(get_spec(chain_reduce), {"previous": StepOutput(N_STEPS)}))
    app = generate_fused_application(steps, f"f{next(_INVOCATION)}")
    (out,) = run_udf_application(database, app)
    import json

    return json.loads(database.scalar(f"SELECT * FROM {out}"))["total"]


def test_benchmark_naive_chain(benchmark):
    benchmark.pedantic(run_naive, args=(make_database(),), rounds=2, iterations=1)


def test_benchmark_stateful_chain(benchmark):
    benchmark.pedantic(run_stateful, args=(make_database(),), rounds=2, iterations=1)


def test_benchmark_fused_chain(benchmark):
    benchmark.pedantic(run_fused, args=(make_database(),), rounds=2, iterations=1)


def test_report_fusion_ablation():
    timings = {}
    results = {}
    for label, runner in (
        ("naive (pickle per step)", run_naive),
        ("stateful (session cache)", run_stateful),
        ("fused (single UDF)", run_fused),
    ):
        # Best of three: the plan/compile caches make the absolute runtimes
        # small enough that a single run is at the mercy of GC pauses.
        best = float("inf")
        for _ in range(3):
            database = make_database()
            start = time.perf_counter()
            results[label] = runner(database)
            best = min(best, time.perf_counter() - start)
        timings[label] = best
    baseline = timings["naive (pickle per step)"]
    lines = [
        "E9 — roadmap ablation: stateful execution and UDF fusion",
        f"({N_STEPS}-step transform chain over a {N_ROWS}x3 matrix state)",
        "",
        f"{'variant':<28}{'time (s)':>10}{'speedup':>9}",
    ]
    for label, elapsed in timings.items():
        lines.append(f"{label:<28}{elapsed:>10.4f}{baseline / elapsed:>8.1f}x")
    lines.append("")
    lines.append("identical results across variants: "
                 f"{len(set(round(v, 6) for v in results.values())) == 1}")
    write_report("e9_fusion", lines)
    values = list(results.values())
    assert max(values) - min(values) < 1e-6
    assert timings["stateful (session cache)"] < baseline
    assert timings["fused (single UDF)"] <= timings["stateful (session cache)"] * 1.5
