"""E6 — §2 Training: local DP vs secure aggregation.

Trains the same federated logistic model under (i) no privacy, (ii) local
DP (each worker perturbs its update), and (iii) secure aggregation with
central noise, across an epsilon sweep.  Expected shape: both private paths
approach the non-private accuracy as epsilon grows, and SA dominates local
DP at equal epsilon because one noise draw replaces one per worker.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.cohorts import CohortSpec, generate_cohort
from repro.federation.controller import FederationConfig, create_federation
from repro.learning.trainer import FederatedTrainer, TrainingConfig

from benchmarks.conftest import write_report

EPSILONS = (2.0, 8.0, 32.0, 128.0)
SEEDS = (0, 1, 2)
ROUNDS = 10


@pytest.fixture(scope="module")
def training_federation():
    worker_data = {
        f"hospital_{i}": {
            "dementia": generate_cohort(CohortSpec(f"site{i}", 400, seed=50 + i))
        }
        for i in range(4)
    }
    return create_federation(
        worker_data, FederationConfig(smpc_nodes=3, smpc_scheme="shamir", seed=13)
    )


def train(federation, mode, epsilon, seed=0, rounds=ROUNDS):
    trainer = FederatedTrainer(federation)
    config = TrainingConfig(
        data_model="dementia",
        datasets=tuple(f"site{i}" for i in range(4)),
        response="converted_ad",
        covariates=("lefthippocampus", "p_tau"),
        mode=mode,
        rounds=rounds,
        learning_rate=0.8,
        clip_norm=1.0,
        epsilon=epsilon,
        delta=1e-5,
        seed=seed,
        evaluate_every=rounds,
    )
    return trainer.train(config)


def test_benchmark_training_round_sa(benchmark, training_federation):
    benchmark.pedantic(
        train, args=(training_federation, "sa", 16.0),
        kwargs={"rounds": 3}, rounds=2, iterations=1,
    )


def test_benchmark_training_round_dp(benchmark, training_federation):
    benchmark.pedantic(
        train, args=(training_federation, "dp", 16.0),
        kwargs={"rounds": 3}, rounds=2, iterations=1,
    )


def test_report_privacy_utility(training_federation):
    clean = train(training_federation, "none", 1.0)
    lines = [
        "E6 — training privacy/utility: local DP vs secure aggregation",
        f"(logistic model, 4 workers, {ROUNDS} rounds, mean over {len(SEEDS)} seeds)",
        "",
        f"non-private accuracy: {clean.final_accuracy:.4f} "
        f"(loss {clean.final_loss:.4f})",
        "",
        f"{'epsilon':>8}{'local-DP acc':>14}{'SA acc':>10}{'DP loss':>10}{'SA loss':>10}",
    ]
    table = {}
    for epsilon in EPSILONS:
        accuracy = {"dp": [], "sa": []}
        loss = {"dp": [], "sa": []}
        for seed in SEEDS:
            for mode in ("dp", "sa"):
                result = train(training_federation, mode, epsilon, seed=seed)
                accuracy[mode].append(result.final_accuracy)
                loss[mode].append(result.final_loss)
        row = (
            float(np.mean(accuracy["dp"])), float(np.mean(accuracy["sa"])),
            float(np.mean(loss["dp"])), float(np.mean(loss["sa"])),
        )
        table[epsilon] = row
        lines.append(
            f"{epsilon:>8.1f}{row[0]:>14.4f}{row[1]:>10.4f}{row[2]:>10.4f}{row[3]:>10.4f}"
        )
    lines.append("")
    lines.append("shape: accuracy approaches the non-private ceiling as epsilon grows;")
    lines.append("secure aggregation (one central noise draw) dominates local DP")
    lines.append("(one draw per worker) at equal epsilon.")
    write_report("e6_training", lines)
    # both paths near the ceiling at the largest epsilon
    assert table[EPSILONS[-1]][0] > clean.final_accuracy - 0.12
    assert table[EPSILONS[-1]][1] > clean.final_accuracy - 0.12
    # SA no worse than DP on average across the sweep (its noise is 1/sqrt(k) smaller)
    sa_mean = np.mean([row[1] for row in table.values()])
    dp_mean = np.mean([row[0] for row in table.values()])
    assert sa_mean >= dp_mean - 0.05
    # smaller epsilon hurts (loss at eps=2 worse than at eps=128 for DP)
    assert table[EPSILONS[0]][2] >= table[EPSILONS[-1]][2] - 1e-6
