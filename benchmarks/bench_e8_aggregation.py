"""E8 — §2 Data aggregation: remote/merge tables vs SMPC.

The paper offers two ways to move local results to the Master: the
non-secure remote/merge-table path and the SMPC path (with either scheme).
This bench runs the *same* federated mean/sum experiment over all three and
reports latency plus transport traffic.  Expected shape:
plain < Shamir < full-threshold in cost, identical results.
"""

from __future__ import annotations

import time

import pytest

from repro.core.experiment import ExperimentEngine, ExperimentRequest
from repro.data.cohorts import CohortSpec, generate_cohort
from repro.federation.controller import FederationConfig, create_federation

from benchmarks.conftest import write_report

PATHS = (
    ("plain (remote/merge)", "plain", "shamir"),
    ("SMPC shamir", "smpc", "shamir"),
    ("SMPC full-threshold", "smpc", "full_threshold"),
)


def build(scheme: str):
    worker_data = {
        "h1": {"dementia": generate_cohort(CohortSpec("edsd", 250, seed=1))},
        "h2": {"dementia": generate_cohort(CohortSpec("adni", 250, seed=2))},
        "h3": {"dementia": generate_cohort(CohortSpec("ppmi", 250, seed=3))},
    }
    return create_federation(
        worker_data, FederationConfig(smpc_nodes=3, smpc_scheme=scheme, seed=21)
    )


def run_regression(federation, aggregation):
    engine = ExperimentEngine(federation, aggregation=aggregation)
    result = engine.run(
        ExperimentRequest(
            algorithm="linear_regression", data_model="dementia",
            datasets=("edsd", "adni", "ppmi"),
            y=("lefthippocampus",), x=("agevalue",),
        )
    )
    assert result.status.value == "success", result.error
    return result.result


@pytest.mark.parametrize("label, aggregation, scheme", PATHS,
                         ids=[p[0] for p in PATHS])
def test_benchmark_aggregation_path(benchmark, label, aggregation, scheme):
    federation = build(scheme)
    benchmark.pedantic(run_regression, args=(federation, aggregation),
                       rounds=3, iterations=1)


#: Network model used to price the metered protocol rounds (LAN, 1 Gb/s).
ROUND_TRIP_SECONDS = 0.002
BANDWIDTH_BYTES_PER_SECOND = 1.25e8


def test_report_aggregation_paths():
    lines = [
        "E8 — aggregation paths for the same federated linear regression",
        "(3 hospitals, 750 rows total; modeled = cpu + metered network at "
        f"{ROUND_TRIP_SECONDS * 1e3:.0f} ms/round)",
        "",
        f"{'path':<24}{'cpu (s)':>10}{'modeled (s)':>13}{'coef(age)':>12}"
        f"{'SMPC rounds':>13}{'SMPC elems':>12}",
    ]
    coefficients = {}
    modeled = {}
    for label, aggregation, scheme in PATHS:
        federation = build(scheme)
        start = time.perf_counter()
        result = run_regression(federation, aggregation)
        elapsed = time.perf_counter() - start
        cluster = federation.smpc_cluster
        used_rounds = cluster.communication.rounds if aggregation == "smpc" else 0
        used_elements = cluster.communication.elements if aggregation == "smpc" else 0
        total = (
            elapsed
            + used_rounds * ROUND_TRIP_SECONDS
            + (used_elements * 16) / BANDWIDTH_BYTES_PER_SECOND
            + federation.transport.stats.simulated_seconds
        )
        coefficients[label] = result["coefficients"][1]
        modeled[label] = total
        lines.append(
            f"{label:<24}{elapsed:>10.3f}{total:>13.3f}"
            f"{result['coefficients'][1]:>12.6f}{used_rounds:>13}{used_elements:>12}"
        )
    lines.append("")
    lines.append("shape: all three paths return the same aggregate; the secure paths")
    lines.append("pay protocol overhead, FT paying more than Shamir.")
    write_report("e8_aggregation", lines)
    values = list(coefficients.values())
    assert max(values) - min(values) < 1e-3  # identical results (fixed-point tolerance)
    assert modeled["plain (remote/merge)"] <= modeled["SMPC shamir"]
    assert modeled["SMPC shamir"] <= modeled["SMPC full-threshold"]
