"""E5 — Figure 1 architecture: scaling with the number of workers.

Two measurements:

1. *Scaling shape* — fixes the total caseload and partitions it over 1..8
   workers; measures the wall time of federated linear regression and
   k-means plus the transport traffic.  Expected shape: per-experiment time
   stays near-flat (master-side aggregation is constant-size) while
   per-worker data volume shrinks, and traffic grows linearly with the
   worker count.

2. *Fan-out speedup* — the same federation with ``sleep_latency=True`` so
   every message really costs its modeled network time, run once with
   ``parallelism=1`` (the pre-fan-out sequential dispatch) and once with
   full-width concurrent dispatch.  The parallel transport overlaps the
   per-worker sends, so wall time drops toward ``max()`` of each group
   instead of the sum — the speedup the production task queue provides.

Results are written both human-readable (``results/e5_scaling.txt``) and
machine-readable (``results/BENCH_e5.json``).
"""

from __future__ import annotations

import json
import time

import pytest

from repro.core.experiment import ExperimentEngine, ExperimentRequest
from repro.data.cohorts import CohortSpec, generate_cohort
from repro.federation.controller import FederationConfig, create_federation

from benchmarks.conftest import RESULTS_DIR, write_metrics_snapshot, write_report

TOTAL_ROWS = 1600
WORKER_COUNTS = (1, 2, 4, 8)

#: Modeled per-message latency for the speedup measurement; large enough to
#: dominate scheduling noise, small enough for a CI smoke run.
SPEEDUP_LATENCY_S = 0.01


def build_federation(n_workers: int, parallelism: int | None = None,
                     sleep_latency: bool = False,
                     latency_seconds: float = 0.0005):
    rows_per_worker = TOTAL_ROWS // n_workers
    worker_data = {}
    for index in range(n_workers):
        cohort = generate_cohort(
            CohortSpec(f"site{index}", rows_per_worker, seed=100 + index)
        )
        worker_data[f"hospital_{index}"] = {"dementia": cohort}
    return create_federation(
        worker_data,
        FederationConfig(
            seed=5,
            parallelism=parallelism,
            sleep_latency=sleep_latency,
            latency_seconds=latency_seconds,
        ),
    )


def linreg_request(datasets):
    return ExperimentRequest(
        algorithm="linear_regression", data_model="dementia",
        datasets=datasets, y=("lefthippocampus",), x=("agevalue",),
    )


def kmeans_request(datasets):
    return ExperimentRequest(
        algorithm="kmeans", data_model="dementia", datasets=datasets,
        y=("ab_42", "p_tau"),
        parameters={"k": 3, "seed": 1, "iterations_max_number": 10, "e": 0.0},
    )


def run_experiments(federation, datasets):
    engine = ExperimentEngine(federation, aggregation="plain")
    regression = engine.run(linreg_request(datasets))
    assert regression.status.value == "success", regression.error
    clusters = engine.run(kmeans_request(datasets))
    assert clusters.status.value == "success", clusters.error
    return regression, clusters


@pytest.mark.parametrize("n_workers", [1, 4])
def test_benchmark_scaling(benchmark, n_workers):
    federation = build_federation(n_workers)
    datasets = tuple(f"site{i}" for i in range(n_workers))
    benchmark.pedantic(run_experiments, args=(federation, datasets),
                       rounds=2, iterations=1)


def _timed_linreg(
    n_workers: int, parallelism: int | None, rounds: int = 2
) -> tuple[float, dict, list[float]]:
    """Wall times of federated linear regression on a federation whose
    transport actually sleeps each message's modeled latency.  Returns the
    best-of-N time, the result payload, and every per-round sample (the
    sleeps dominate, so the samples are machine-portable)."""
    times: list[float] = []
    result = None
    for _ in range(rounds):
        federation = build_federation(
            n_workers, parallelism=parallelism, sleep_latency=True,
            latency_seconds=SPEEDUP_LATENCY_S,
        )
        datasets = tuple(f"site{i}" for i in range(n_workers))
        engine = ExperimentEngine(federation, aggregation="plain")
        t0 = time.perf_counter()
        outcome = engine.run(linreg_request(datasets))
        elapsed = time.perf_counter() - t0
        assert outcome.status.value == "success", outcome.error
        times.append(elapsed)
        result = outcome.result
    return min(times), result, times


def test_report_scaling():
    lines = [
        f"E5 — scaling with worker count (total caseload fixed at {TOTAL_ROWS} rows)",
        "",
        f"{'workers':>8}{'rows/worker':>13}{'linreg (s)':>12}{'kmeans (s)':>12}"
        f"{'messages':>10}{'MB sent':>10}{'sim net (s)':>12}",
    ]
    times = {}
    scaling_rows = []
    for n_workers in WORKER_COUNTS:
        federation = build_federation(n_workers)
        datasets = tuple(f"site{i}" for i in range(n_workers))
        run_experiments(federation, datasets)
        # isolate: rerun each algorithm separately for per-algo timing
        federation.transport.stats.reset()
        engine = ExperimentEngine(federation, aggregation="plain")
        t0 = time.perf_counter()
        engine.run(linreg_request(datasets))
        linreg_time = time.perf_counter() - t0
        t0 = time.perf_counter()
        engine.run(kmeans_request(datasets))
        kmeans_time = time.perf_counter() - t0
        stats = federation.transport.snapshot()
        lines.append(
            f"{n_workers:>8}{TOTAL_ROWS // n_workers:>13}{linreg_time:>12.3f}"
            f"{kmeans_time:>12.3f}{stats.messages:>10}"
            f"{stats.bytes_sent / 1e6:>10.3f}{stats.simulated_seconds:>12.4f}"
        )
        times[n_workers] = (linreg_time, kmeans_time, stats.messages)
        scaling_rows.append({
            "workers": n_workers,
            "rows_per_worker": TOTAL_ROWS // n_workers,
            "linreg_seconds": round(linreg_time, 4),
            "kmeans_seconds": round(kmeans_time, 4),
            "messages": stats.messages,
            "bytes_sent": stats.bytes_sent,
            "simulated_network_seconds": round(stats.simulated_seconds, 4),
        })
    lines.append("")
    lines.append("shape: wall time stays near-flat as the caseload spreads; message")
    lines.append("count grows linearly with workers (per-worker task dispatch).")

    # ---- fan-out speedup: sequential vs concurrent dispatch -----------------
    lines.append("")
    lines.append(
        f"fan-out speedup — linear regression, sleep_latency transport "
        f"({SPEEDUP_LATENCY_S * 1000:.0f} ms/message)"
    )
    lines.append(
        f"{'workers':>8}{'sequential (s)':>16}{'parallel (s)':>14}{'speedup':>9}"
    )
    speedup_rows = []
    speedups = {}
    parallel_samples: list[float] = []
    for n_workers in WORKER_COUNTS:
        sequential_s, seq_result, _ = _timed_linreg(n_workers, parallelism=1)
        rounds = 5 if n_workers == 4 else 2
        parallel_s, par_result, par_times = _timed_linreg(
            n_workers, parallelism=None, rounds=rounds
        )
        if n_workers == 4:
            parallel_samples = par_times
        # The fan-out width must not change the numbers, only the wall time.
        assert seq_result["coefficients"] == par_result["coefficients"]
        speedup = sequential_s / parallel_s
        speedups[n_workers] = speedup
        lines.append(
            f"{n_workers:>8}{sequential_s:>16.3f}{parallel_s:>14.3f}{speedup:>9.2f}"
        )
        speedup_rows.append({
            "workers": n_workers,
            "sequential_seconds": round(sequential_s, 4),
            "parallel_seconds": round(parallel_s, 4),
            "speedup": round(speedup, 3),
        })
    lines.append("")
    lines.append("speedup: concurrent dispatch overlaps per-worker sends, so wall")
    lines.append("time trends toward max() of each fan-out group instead of the sum.")
    write_report("e5_scaling", lines)

    payload = {
        "benchmark": "e5_scaling",
        "total_rows": TOTAL_ROWS,
        "speedup_latency_seconds": SPEEDUP_LATENCY_S,
        "scaling": scaling_rows,
        "fanout_speedup": speedup_rows,
        "speedup_at_4_workers": round(speedups[4], 3),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_e5.json").write_text(json.dumps(payload, indent=2) + "\n")
    write_metrics_snapshot("e5", federation)

    # Stable-schema result for the SLO gate (``repro health``): the 4-worker
    # parallel sleep-latency samples, dominated by deterministic modeled
    # sleeps rather than host speed.
    from repro.observability.slo import BenchResult

    stable = BenchResult.from_samples(
        "e5_scaling",
        parallel_samples,
        config={
            "workers": 4,
            "total_rows": TOTAL_ROWS,
            "latency_seconds": SPEEDUP_LATENCY_S,
            "parallelism": "auto",
            "algorithm": "linear_regression",
        },
    )
    (RESULTS_DIR / "BENCH_e5_scaling.json").write_text(
        json.dumps(stable.to_dict(), indent=2) + "\n"
    )

    # messages grow with worker count
    assert times[8][2] > times[1][2]
    # runtime does not explode with workers (within 4x of the single-worker run)
    assert times[8][0] < times[1][0] * 4 + 0.5
    # acceptance: concurrent dispatch at 4 workers at least halves wall time
    assert speedups[4] >= 2.0, f"4-worker fan-out speedup {speedups[4]:.2f} < 2.0"


# ---- observability overhead -------------------------------------------------

OVERHEAD_WORKERS = 4
OVERHEAD_ROUNDS = 3
OVERHEAD_BUDGET = 0.05  # tracing must cost < 5% wall time


def _timed_traced_linreg(traced: bool) -> float:
    """Best-of-N wall time of federated linear regression with the tracer
    on or off, on a sleep_latency transport (deterministic modeled sleeps
    dominate, so the measurement isolates instrumentation overhead from
    scheduling noise)."""
    from repro.observability.trace import tracer

    was_enabled = tracer.enabled
    best = float("inf")
    try:
        for _ in range(OVERHEAD_ROUNDS):
            tracer.reset()
            if traced:
                tracer.enable()
            else:
                tracer.disable()
            federation = build_federation(
                OVERHEAD_WORKERS, sleep_latency=True,
                latency_seconds=SPEEDUP_LATENCY_S,
            )
            datasets = tuple(f"site{i}" for i in range(OVERHEAD_WORKERS))
            engine = ExperimentEngine(federation, aggregation="plain")
            t0 = time.perf_counter()
            outcome = engine.run(linreg_request(datasets))
            elapsed = time.perf_counter() - t0
            assert outcome.status.value == "success", outcome.error
            best = min(best, elapsed)
    finally:
        if not was_enabled:
            tracer.disable()
    return best


def test_report_tracing_overhead():
    """Tracing the full flow must cost under the 5% overhead budget, and the
    resulting artifacts (Chrome trace, Prometheus metrics) must be complete."""
    from repro.observability.trace import tracer

    untraced_s = _timed_traced_linreg(traced=False)

    was_enabled = tracer.enabled
    traced_s = _timed_traced_linreg(traced=True)
    # _timed_traced_linreg leaves the last traced run in the buffer; export
    # the artifacts before resetting.
    federation = build_federation(
        OVERHEAD_WORKERS, sleep_latency=True, latency_seconds=SPEEDUP_LATENCY_S
    )
    tracer.reset()
    tracer.enable()
    try:
        datasets = tuple(f"site{i}" for i in range(OVERHEAD_WORKERS))
        engine = ExperimentEngine(federation, aggregation="plain")
        outcome = engine.run(linreg_request(datasets))
        assert outcome.status.value == "success", outcome.error
        chrome = tracer.export_chrome()
    finally:
        tracer.reset()
        if not was_enabled:
            tracer.disable()

    overhead = traced_s / untraced_s - 1.0
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "TRACE_e5_linreg.chrome.json").write_text(
        json.dumps(chrome, indent=2) + "\n"
    )
    (RESULTS_DIR / "METRICS_e5_linreg.prom").write_text(
        federation.metrics_registry().render_prometheus()
    )
    write_metrics_snapshot("e5_linreg", federation)
    payload = {
        "benchmark": "obs_overhead",
        "workers": OVERHEAD_WORKERS,
        "rounds": OVERHEAD_ROUNDS,
        "untraced_seconds": round(untraced_s, 4),
        "traced_seconds": round(traced_s, 4),
        "overhead_fraction": round(overhead, 4),
        "budget_fraction": OVERHEAD_BUDGET,
        "spans_recorded": len(chrome["traceEvents"]),
    }
    (RESULTS_DIR / "BENCH_obs_overhead.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    write_report("obs_overhead", [
        "Observability — tracing overhead on the E5 sleep-latency flow",
        "",
        f"{'workers':>8}{'untraced (s)':>14}{'traced (s)':>12}{'overhead':>10}",
        f"{OVERHEAD_WORKERS:>8}{untraced_s:>14.3f}{traced_s:>12.3f}"
        f"{overhead:>9.1%}",
        "",
        f"spans recorded: {len(chrome['traceEvents'])}",
    ])

    assert chrome["traceEvents"], "the traced run must record spans"
    names = {event["name"] for event in chrome["traceEvents"]}
    assert {"experiment", "transport.send", "udf.execute"} <= names
    assert overhead < OVERHEAD_BUDGET, (
        f"tracing overhead {overhead:.1%} exceeds the {OVERHEAD_BUDGET:.0%} budget"
    )
