"""E5 — Figure 1 architecture: scaling with the number of workers.

Fixes the total caseload and partitions it over 1..8 workers; measures the
wall time of federated linear regression and k-means plus the transport
traffic.  Expected shape: per-experiment time stays near-flat (master-side
aggregation is constant-size) while per-worker data volume shrinks, and
traffic grows linearly with the worker count.
"""

from __future__ import annotations

import time

import pytest

from repro.core.experiment import ExperimentEngine, ExperimentRequest
from repro.data.cohorts import CohortSpec, generate_cohort
from repro.engine.table import concat_tables
from repro.federation.controller import FederationConfig, create_federation

from benchmarks.conftest import write_report

TOTAL_ROWS = 1600
WORKER_COUNTS = (1, 2, 4, 8)


def build_federation(n_workers: int):
    rows_per_worker = TOTAL_ROWS // n_workers
    worker_data = {}
    for index in range(n_workers):
        cohort = generate_cohort(
            CohortSpec(f"site{index}", rows_per_worker, seed=100 + index)
        )
        worker_data[f"hospital_{index}"] = {"dementia": cohort}
    return create_federation(worker_data, FederationConfig(seed=5))


def run_experiments(federation, datasets):
    engine = ExperimentEngine(federation, aggregation="plain")
    regression = engine.run(
        ExperimentRequest(
            algorithm="linear_regression", data_model="dementia",
            datasets=datasets, y=("lefthippocampus",), x=("agevalue",),
        )
    )
    assert regression.status.value == "success", regression.error
    clusters = engine.run(
        ExperimentRequest(
            algorithm="kmeans", data_model="dementia", datasets=datasets,
            y=("ab_42", "p_tau"),
            parameters={"k": 3, "seed": 1, "iterations_max_number": 10, "e": 0.0},
        )
    )
    assert clusters.status.value == "success", clusters.error
    return regression, clusters


@pytest.mark.parametrize("n_workers", [1, 4])
def test_benchmark_scaling(benchmark, n_workers):
    federation = build_federation(n_workers)
    datasets = tuple(f"site{i}" for i in range(n_workers))
    benchmark.pedantic(run_experiments, args=(federation, datasets),
                       rounds=2, iterations=1)


def test_report_scaling():
    lines = [
        f"E5 — scaling with worker count (total caseload fixed at {TOTAL_ROWS} rows)",
        "",
        f"{'workers':>8}{'rows/worker':>13}{'linreg (s)':>12}{'kmeans (s)':>12}"
        f"{'messages':>10}{'MB sent':>10}{'sim net (s)':>12}",
    ]
    times = {}
    for n_workers in WORKER_COUNTS:
        federation = build_federation(n_workers)
        datasets = tuple(f"site{i}" for i in range(n_workers))
        start = time.perf_counter()
        run_experiments(federation, datasets)
        # isolate: rerun each algorithm separately for per-algo timing
        federation.transport.stats.reset()
        engine = ExperimentEngine(federation, aggregation="plain")
        t0 = time.perf_counter()
        engine.run(ExperimentRequest(
            algorithm="linear_regression", data_model="dementia",
            datasets=datasets, y=("lefthippocampus",), x=("agevalue",),
        ))
        linreg_time = time.perf_counter() - t0
        t0 = time.perf_counter()
        engine.run(ExperimentRequest(
            algorithm="kmeans", data_model="dementia", datasets=datasets,
            y=("ab_42", "p_tau"),
            parameters={"k": 3, "seed": 1, "iterations_max_number": 10, "e": 0.0},
        ))
        kmeans_time = time.perf_counter() - t0
        stats = federation.transport.stats
        lines.append(
            f"{n_workers:>8}{TOTAL_ROWS // n_workers:>13}{linreg_time:>12.3f}"
            f"{kmeans_time:>12.3f}{stats.messages:>10}"
            f"{stats.bytes_sent / 1e6:>10.3f}{stats.simulated_seconds:>12.4f}"
        )
        times[n_workers] = (linreg_time, kmeans_time, stats.messages)
    lines.append("")
    lines.append("shape: wall time stays near-flat as the caseload spreads; message")
    lines.append("count grows linearly with workers (per-worker task dispatch).")
    write_report("e5_scaling", lines)
    # messages grow with worker count
    assert times[8][2] > times[1][2]
    # runtime does not explode with workers (within 4x of the single-worker run)
    assert times[8][0] < times[1][0] * 4 + 0.5
