"""E4 — §2 SMPC: the FT-vs-Shamir security/efficiency trade-off.

"FT is very secure with abort against an active-malicious majority ...
But, computations are slow with FT.  Shamir's secret sharing scheme
(with t < n/2) is much faster, but is secure only against
honest-but-curious threat models."

Sweeps secure-sum latency and communication over vector sizes and party
counts; the expected shape is FT > Shamir by a clear factor at every size,
with both linear in vector length.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.smpc.cluster import SMPCCluster

from benchmarks.conftest import write_report

VECTOR_SIZES = (64, 256, 1024)


def secure_sum(scheme: str, size: int, n_nodes: int = 3, seed: int = 1):
    cluster = SMPCCluster(n_nodes, scheme, seed=seed)
    rng = np.random.default_rng(seed)
    for worker in ("w1", "w2", "w3"):
        cluster.import_shares(
            "job", worker,
            {"v": {"data": rng.normal(0, 10, size).tolist(), "operation": "sum"}},
        )
    cluster.aggregate("job")
    return cluster


def secure_min(scheme: str, size: int, seed: int = 1):
    cluster = SMPCCluster(3, scheme, seed=seed)
    rng = np.random.default_rng(seed)
    for worker in ("w1", "w2"):
        cluster.import_shares(
            "job", worker,
            {"v": {"data": rng.normal(0, 10, size).tolist(), "operation": "min"}},
        )
    cluster.aggregate("job")
    return cluster


@pytest.mark.parametrize("scheme", ["shamir", "full_threshold"])
@pytest.mark.parametrize("size", [64, 512])
def test_benchmark_secure_sum(benchmark, scheme, size):
    benchmark.pedantic(secure_sum, args=(scheme, size), rounds=3, iterations=1)


@pytest.mark.parametrize("scheme", ["shamir", "full_threshold"])
def test_benchmark_secure_min(benchmark, scheme):
    benchmark.pedantic(secure_min, args=(scheme, 32), rounds=2, iterations=1)


#: Network model for the deployed-cluster estimate: LAN-grade RTT and 1 Gb/s.
ROUND_TRIP_SECONDS = 0.002
BANDWIDTH_BYTES_PER_SECOND = 1.25e8


def modeled_seconds(cluster, wall: float) -> float:
    """Wall time plus the metered protocol communication under the network
    model — what a deployed cluster would observe.  The in-process simulation
    executes every 'round' instantly, so rounds must be priced explicitly."""
    meter = cluster.communication
    return wall + meter.rounds * ROUND_TRIP_SECONDS + meter.bytes_sent / BANDWIDTH_BYTES_PER_SECOND


def test_report_ft_vs_shamir():
    lines = [
        "E4 — SMPC security/efficiency trade-off (secure sum, 3 SMPC nodes)",
        f"(network model: {ROUND_TRIP_SECONDS * 1e3:.0f} ms/round, 1 Gb/s)",
        "",
        f"{'vector':>8}{'scheme':>16}{'cpu (s)':>10}{'modeled (s)':>13}{'rounds':>9}"
        f"{'elements':>11}{'offline dealt':>15}",
    ]
    ratios = []
    for size in VECTOR_SIZES:
        timings = {}
        for scheme in ("shamir", "full_threshold"):
            start = time.perf_counter()
            cluster = secure_sum(scheme, size)
            elapsed = time.perf_counter() - start
            total = modeled_seconds(cluster, elapsed)
            timings[scheme] = total
            meter = cluster.communication
            lines.append(
                f"{size:>8}{scheme:>16}{elapsed:>10.4f}{total:>13.4f}{meter.rounds:>9}"
                f"{meter.elements:>11}{cluster.offline_usage.elements_dealt:>15}"
            )
        ratios.append(timings["full_threshold"] / timings["shamir"])
    lines.append("")
    lines.append(
        "FT/Shamir modeled-time ratio per size: "
        + ", ".join(f"{r:.2f}x" for r in ratios)
    )
    # Communication ordering (the protocol-level claim) is deterministic:
    shamir = secure_sum("shamir", 256)
    ft = secure_sum("full_threshold", 256)
    lines.append(
        f"communication at n=256: FT {ft.communication.elements} elements / "
        f"{ft.communication.rounds} rounds vs Shamir "
        f"{shamir.communication.elements} / {shamir.communication.rounds}"
    )
    write_report("e4_smpc", lines)
    assert ft.communication.elements > 2 * shamir.communication.elements
    assert ft.communication.rounds > shamir.communication.rounds
    # FT slower than Shamir at every size once communication is priced
    assert all(r > 1.0 for r in ratios)


def test_report_comparison_heavy_ops():
    lines = [
        "E4b — comparison-heavy operations (secure element-wise min, 2 inputs)",
        "",
        f"{'vector':>8}{'scheme':>16}{'time (s)':>12}{'triples':>9}{'rand bits':>11}",
    ]
    for size in (16, 64):
        for scheme in ("shamir", "full_threshold"):
            start = time.perf_counter()
            cluster = secure_min(scheme, size)
            elapsed = time.perf_counter() - start
            usage = cluster.offline_usage
            lines.append(
                f"{size:>8}{scheme:>16}{elapsed:>12.4f}{usage.triples:>9}"
                f"{usage.random_bits:>11}"
            )
    lines.append("")
    lines.append("min/max consume offline material (comparison bits + triples);")
    lines.append("sums are linear and consume none — matching the paper's note that")
    lines.append("SMPC overhead concentrates in multiplications/comparisons.")
    write_report("e4b_smpc_comparisons", lines)
    sum_cluster = secure_sum("shamir", 64)
    min_cluster = secure_min("shamir", 64)
    assert sum_cluster.offline_usage.triples == 0
    assert min_cluster.offline_usage.triples > 0
