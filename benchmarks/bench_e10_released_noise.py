"""E10 — §2: noise injected during the SMPC on released results.

"The engine also supports injecting Laplacian and Gaussian noise during the
SMPC to the result of the computation."  This bench sweeps the noise scale
on a released federated mean and reports the utility cost (absolute error of
the released value vs the exact aggregate) per mechanism — the basic
privacy/utility dial a deployment turns for its most sensitive variables.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.experiment import ExperimentEngine, ExperimentRequest
from repro.data.cohorts import CohortSpec, generate_cohort
from repro.federation.controller import FederationConfig, create_federation
from repro.smpc.cluster import NoiseSpec

from benchmarks.conftest import write_report

SCALES = (0.5, 2.0, 8.0)
TRIALS = 8


def build_federation(seed: int):
    return create_federation(
        {
            "h1": {"dementia": generate_cohort(CohortSpec("edsd", 200, seed=1))},
            "h2": {"dementia": generate_cohort(CohortSpec("adni", 200, seed=2))},
        },
        FederationConfig(smpc_scheme="shamir", seed=seed),
    )


def released_mean(federation, noise: NoiseSpec | None) -> float:
    engine = ExperimentEngine(federation, aggregation="smpc", noise=noise)
    result = engine.run(
        ExperimentRequest(
            algorithm="ttest_onesample", data_model="dementia",
            datasets=("edsd", "adni"), y=("p_tau",), parameters={"mu": 0.0},
        )
    )
    assert result.status.value == "success", result.error
    return float(result.result["mean"])


def test_benchmark_noisy_release(benchmark):
    federation = build_federation(seed=1)
    benchmark.pedantic(
        released_mean, args=(federation, NoiseSpec("gaussian", 2.0)),
        rounds=3, iterations=1,
    )


def test_report_release_noise_utility():
    exact = released_mean(build_federation(seed=0), noise=None)
    lines = [
        "E10 — noise injected inside the SMPC on released results",
        f"(federated mean of p_tau over 2 hospitals; exact value {exact:.4f}; "
        f"{TRIALS} trials per cell)",
        "",
        f"{'mechanism':<12}{'scale':>8}{'mean |error|':>14}{'max |error|':>13}",
    ]
    for mechanism in ("gaussian", "laplace"):
        for scale in SCALES:
            errors = []
            for trial in range(TRIALS):
                federation = build_federation(seed=100 + trial)
                noisy = released_mean(federation, NoiseSpec(mechanism, scale))
                errors.append(abs(noisy - exact))
            lines.append(
                f"{mechanism:<12}{scale:>8.1f}{np.mean(errors):>14.4f}"
                f"{np.max(errors):>13.4f}"
            )
    lines.append("")
    lines.append("shape: released-value error grows linearly with the noise scale;")
    lines.append("the exact aggregate is recovered when no noise is configured.")
    write_report("e10_released_noise", lines)
    # exact release matches the unnoised mean; noisy ones perturb it
    repeat = released_mean(build_federation(seed=0), noise=None)
    assert repeat == pytest.approx(exact, abs=1e-9)
    small = [abs(released_mean(build_federation(seed=200 + t),
                               NoiseSpec("gaussian", 0.5)) - exact)
             for t in range(4)]
    large = [abs(released_mean(build_federation(seed=300 + t),
                               NoiseSpec("gaussian", 8.0)) - exact)
             for t in range(4)]
    assert np.mean(large) > np.mean(small)
