"""E7 — §2 Worker node / UDFGenerator: in-engine vectorized execution.

"Executing the algorithm inside a data engine is a strategic choice to
leverage all the benefits of performant, in-database analytics, such as
zero-cost copy, vectorization, and data serialization."

Compares the engine's vectorized expression evaluation against a
row-at-a-time Python interpreter on the same filter + aggregate workload,
and measures the generated-UDF pipeline end to end.  Expected shape:
vectorized wins by an order of magnitude at large inputs.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.engine.database import Database
from repro.udfgen import generate_udf_application, relation, run_udf_application, secure_transfer, udf
from repro.udfgen.decorators import get_spec

from benchmarks.conftest import write_report

SIZES = (1_000, 10_000, 100_000)


def build_database(n_rows: int) -> Database:
    database = Database()
    rng = np.random.default_rng(1)
    database.execute("CREATE TABLE measurements (age REAL, volume REAL)")
    from repro.engine.database import table_from_arrays

    table = table_from_arrays(
        ["age", "volume"],
        [rng.uniform(40, 95, n_rows), rng.normal(3.0, 0.5, n_rows)],
    )
    database.register_table("measurements", table, replace=True)
    return database

QUERY = (
    "SELECT COUNT(*) AS n, AVG(volume) AS mean_volume, STDDEV(volume) AS sd "
    "FROM measurements WHERE age > 65 AND volume BETWEEN 2.0 AND 4.5"
)


def vectorized(database: Database):
    return database.query(QUERY).to_rows()


def row_at_a_time(database: Database):
    """The anti-pattern the engine avoids: Python-level row iteration."""
    table = database.get_table("measurements")
    kept = []
    for age, volume in table.rows():
        if age is not None and age > 65 and volume is not None and 2.0 <= volume <= 4.5:
            kept.append(volume)
    n = len(kept)
    mean = sum(kept) / n if n else None
    if n > 1:
        variance = sum((v - mean) ** 2 for v in kept) / (n - 1)
        sd = variance**0.5
    else:
        sd = None
    return [(n, mean, sd)]


@udf(data=relation(), return_type=[secure_transfer()])
def bench_sums_local(data):
    matrix = data.to_matrix()
    return {
        "sums": {"data": matrix.sum(axis=0).tolist(), "operation": "sum"},
        "n": {"data": int(matrix.shape[0]), "operation": "sum"},
    }


def run_generated_udf(database: Database):
    application = generate_udf_application(
        get_spec(bench_sums_local), "bench", {"data": "measurements"}
    )
    tables = run_udf_application(database, application)
    for table in tables:
        database.drop_table(table, if_exists=True)
    database.execute(f"DROP FUNCTION IF EXISTS {application.function_name}")


@pytest.mark.parametrize("size", [10_000, 100_000])
def test_benchmark_vectorized(benchmark, size):
    database = build_database(size)
    benchmark.pedantic(vectorized, args=(database,), rounds=5, iterations=1)


@pytest.mark.parametrize("size", [10_000])
def test_benchmark_row_at_a_time(benchmark, size):
    database = build_database(size)
    benchmark.pedantic(row_at_a_time, args=(database,), rounds=3, iterations=1)


def test_benchmark_generated_udf(benchmark):
    database = build_database(50_000)
    benchmark.pedantic(run_generated_udf, args=(database,), rounds=3, iterations=1)


def test_report_vectorization():
    lines = [
        "E7 — in-engine vectorized execution vs row-at-a-time",
        f"(filter + aggregate: {QUERY[:60]}...)",
        "",
        f"{'rows':>9}{'vectorized (s)':>16}{'row-at-a-time (s)':>19}{'speedup':>9}",
    ]
    speedups = []
    for size in SIZES:
        database = build_database(size)
        reference = vectorized(database)
        start = time.perf_counter()
        for _ in range(3):
            vectorized(database)
        vec_time = (time.perf_counter() - start) / 3
        start = time.perf_counter()
        slow = row_at_a_time(database)
        row_time = time.perf_counter() - start
        # both approaches agree
        assert slow[0][0] == reference[0][0]
        assert slow[0][1] == pytest.approx(reference[0][1], rel=1e-9)
        speedup = row_time / vec_time
        speedups.append(speedup)
        lines.append(f"{size:>9}{vec_time:>16.5f}{row_time:>19.5f}{speedup:>9.1f}x")
    lines.append("")
    lines.append("shape: the vectorized engine wins by an order of magnitude at the")
    lines.append("largest size — the benefit MIP buys by running UDFs in-engine.")
    write_report("e7_udf", lines)
    assert speedups[-1] > 5.0
