"""Flow-plan step dedup: identical concurrent experiments share local steps.

Eight identical experiments submitted together on an 8-wide pool, with and
without the cross-experiment :class:`~repro.core.plan_executor.StepCache`.
Without the cache every experiment recomputes every local step on every
worker; with it the first submission computes while the other seven wait on
the in-flight entry, so aggregate wall time collapses toward one
experiment's critical path plus the per-experiment aggregation tails.

Acceptance: >= 2x aggregate speedup for the deduped batch, and zero cache
hits across experiments on *different* cohorts (the fingerprint includes
the dataset assignment and catalog epoch, so unrelated work never shares).
"""

from __future__ import annotations

import json
import time

from repro.core.experiment import ExperimentEngine, ExperimentRequest
from repro.data.cohorts import CohortSpec, generate_cohort
from repro.federation.controller import FederationConfig, create_federation

from benchmarks.conftest import RESULTS_DIR, write_metrics_snapshot, write_report

import repro.algorithms  # noqa: F401

BATCH = 8
ROWS = 2400

REQUEST = ExperimentRequest(
    algorithm="logistic_regression",
    data_model="dementia",
    datasets=("edsd", "adni", "ppmi"),
    y=("converted_ad",),
    x=("p_tau", "lefthippocampus", "agevalue"),
)


def build_federation():
    worker_data = {
        "hospital_a": {"dementia": generate_cohort(CohortSpec("edsd", ROWS, seed=1))},
        "hospital_b": {"dementia": generate_cohort(CohortSpec("adni", ROWS, seed=2))},
        "hospital_c": {"dementia": generate_cohort(CohortSpec("ppmi", ROWS, seed=3))},
    }
    return create_federation(
        worker_data, FederationConfig(smpc_nodes=0, seed=7)
    )


def run_batch(federation, cache, tag: str, requests=None):
    """Submit BATCH experiments at once; returns (wall_s, results)."""
    engine = ExperimentEngine(
        federation, aggregation="plain", max_concurrent=BATCH, plan_cache=cache
    )
    requests = requests or [REQUEST] * BATCH
    started = time.perf_counter()
    try:
        ids = [
            engine.submit(request, experiment_id=f"{tag}{index}")
            for index, request in enumerate(requests)
        ]
        results = [engine.wait(job_id, timeout=600) for job_id in ids]
        wall = time.perf_counter() - started
    finally:
        engine.shutdown()
    for result in results:
        assert result.status.value == "success", result.error
    return wall, results


def test_report_plan_dedup():
    # Cache off: the baseline — every experiment recomputes every step.
    baseline_federation = build_federation()
    baseline_wall, baseline_results = run_batch(baseline_federation, None, "base")
    assert all(result.dedup_hits == 0 for result in baseline_results)
    baseline_federation.shutdown()

    # Cache on: one computation per distinct step fingerprint.
    federation = build_federation()
    cache = federation.plan_cache
    deduped_wall, deduped_results = run_batch(federation, cache, "dedup")
    follower_hits = [result.dedup_hits for result in deduped_results]
    assert sum(follower_hits) > 0, "identical concurrent experiments never deduped"
    # Byte-identical payloads: a cache hit returns the very same tables.
    payloads = {json.dumps(r.result, sort_keys=True) for r in deduped_results}
    assert len(payloads) == 1

    speedup = baseline_wall / deduped_wall if deduped_wall else float("inf")

    # Different cohorts must never share: the step fingerprint pins the
    # dataset assignment, so a different-cohort experiment scores zero hits
    # against the warm cache.
    other = ExperimentRequest(
        algorithm=REQUEST.algorithm,
        data_model=REQUEST.data_model,
        datasets=("edsd", "adni"),
        y=REQUEST.y,
        x=REQUEST.x,
    )
    engine = ExperimentEngine(
        federation, aggregation="plain", max_concurrent=1, plan_cache=cache
    )
    try:
        other_result = engine.wait(engine.submit(other, experiment_id="othercohort"))
        assert other_result.status.value == "success", other_result.error
        cross_cohort_hits = other_result.dedup_hits
        assert cross_cohort_hits == 0, "different cohorts shared cache entries"

        # A catalog-epoch bump (worker topology change) invalidates even
        # byte-identical requests: replaying the warm request scores zero.
        federation.master._catalog_epoch += 1
        epoch_result = engine.wait(engine.submit(REQUEST, experiment_id="epochbump"))
        assert epoch_result.status.value == "success", epoch_result.error
        assert epoch_result.dedup_hits == 0, "stale-epoch entries were served"
    finally:
        engine.shutdown()

    lines = [
        "plan-dedup bench: 8 identical concurrent experiments (pool 8)",
        f"  algorithm={REQUEST.algorithm} rows/worker={ROWS}",
        f"  cache off: {baseline_wall:.3f}s aggregate wall",
        f"  cache on:  {deduped_wall:.3f}s aggregate wall",
        f"  speedup:   {speedup:.2f}x  (gate: >= 2.0x)",
        f"  dedup hits per follower: {sorted(follower_hits, reverse=True)}",
        f"  cache stats: {cache.stats()}",
        "",
        "in-flight dedup: identical concurrent experiments wait on whichever",
        "submission owns each step instead of recomputing it; different",
        "cohorts and stale catalog epochs never share entries (0 hits).",
    ]
    write_report("plan_dedup", lines)

    payload = {
        "benchmark": "plan_dedup",
        "batch": BATCH,
        "rows_per_worker": ROWS,
        "algorithm": REQUEST.algorithm,
        "baseline_wall_s": round(baseline_wall, 4),
        "deduped_wall_s": round(deduped_wall, 4),
        "speedup": round(speedup, 3),
        "dedup_hits": sorted(follower_hits, reverse=True),
        "cross_cohort_hits": cross_cohort_hits,
        "cache": cache.stats(),
    }
    RESULTS_DIR.mkdir(exist_ok=True)

    # Stable-schema result for the SLO gate (``repro health``): the deduped
    # batch's per-experiment wall times plus the speedup in config.
    from repro.observability.slo import BenchResult

    stable = BenchResult.from_samples(
        "plan_dedup",
        [result.elapsed_seconds for result in deduped_results],
        config={
            "batch": BATCH,
            "pool": BATCH,
            "rows_per_worker": ROWS,
            "algorithm": REQUEST.algorithm,
            "speedup": round(speedup, 3),
        },
        wall_s=deduped_wall,
    )
    (RESULTS_DIR / "BENCH_plan_dedup.json").write_text(
        json.dumps(stable.to_dict(), indent=2) + "\n"
    )
    payload_path = RESULTS_DIR / "BENCH_plan_dedup_report.json"
    payload_path.write_text(json.dumps(payload, indent=2) + "\n")
    write_metrics_snapshot("plan_dedup", federation)
    federation.shutdown()

    # Acceptance: dedup at least halves the aggregate batch wall time.
    assert speedup >= 2.0, f"plan dedup speedup {speedup:.2f}x < 2.0x"
