"""E3 — §2 "Current status": federated-vs-centralized equivalence.

For every algorithm in the paper's list, run it federated over three
hospitals and compare against the centralized computation on the pooled
data.  The reproduced table reports the maximum relative deviation per
algorithm — the paper's implicit claim is that federation changes *where*
computation happens, not *what* it computes.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.stats

from repro.core.experiment import ExperimentEngine, ExperimentRequest

from benchmarks.conftest import write_report

DATASETS = ("edsd", "adni", "ppmi")


@pytest.fixture(scope="module")
def engine(bench_federation):
    return ExperimentEngine(bench_federation, aggregation="plain")


@pytest.fixture(scope="module")
def pooled(bench_federation):
    def _pooled(*columns):
        rows = []
        for worker in bench_federation.workers.values():
            table = worker.database.get_table("data_dementia")
            lists = [table.column(c).to_list() for c in columns]
            rows.extend(r for r in zip(*lists) if None not in r)
        return rows

    return _pooled


def run(engine, algorithm, y, x=(), parameters=None):
    result = engine.run(
        ExperimentRequest(
            algorithm=algorithm, data_model="dementia", datasets=DATASETS,
            y=tuple(y), x=tuple(x), parameters=parameters or {},
        )
    )
    assert result.status.value == "success", f"{algorithm}: {result.error}"
    return result.result


def relative_error(federated, centralized):
    federated = np.atleast_1d(np.asarray(federated, dtype=float))
    centralized = np.atleast_1d(np.asarray(centralized, dtype=float))
    scale = np.maximum(np.abs(centralized), 1e-9)
    return float(np.max(np.abs(federated - centralized) / scale))


def centralized_references(pooled):
    """Compute centralized results for each comparable algorithm."""
    references = {}

    rows = pooled("lefthippocampus", "agevalue")
    y = np.array([r[0] for r in rows])
    X = np.column_stack([np.ones(len(y)), [r[1] for r in rows]])
    references["linear_regression"] = np.linalg.lstsq(X, y, rcond=None)[0]

    rows = pooled("lefthippocampus", "gender")
    females = [v for v, g in rows if g == "F"]
    males = [v for v, g in rows if g == "M"]
    references["ttest_independent"] = scipy.stats.ttest_ind(
        females, males, equal_var=False
    ).statistic

    values = [v for (v,) in pooled("p_tau")]
    references["ttest_onesample"] = scipy.stats.ttest_1samp(values, 50.0).statistic

    rows = pooled("lefthippocampus", "righthippocampus")
    references["ttest_paired"] = scipy.stats.ttest_rel(
        [a for a, _ in rows], [b for _, b in rows]
    ).statistic

    rows = pooled("lefthippocampus", "alzheimerbroadcategory")
    groups = {}
    for value, level in rows:
        groups.setdefault(level, []).append(value)
    references["anova_oneway"] = scipy.stats.f_oneway(*groups.values()).statistic

    rows = pooled("lefthippocampus", "minimentalstate")
    references["pearson_correlation"] = scipy.stats.pearsonr(
        [a for a, _ in rows], [b for _, b in rows]
    ).statistic

    matrix = np.array(pooled("lefthippocampus", "righthippocampus", "p_tau"), dtype=float)
    references["pca"] = np.sort(np.linalg.eigvalsh(np.corrcoef(matrix.T)))[::-1]

    rows = pooled("converted_ad", "p_tau", "lefthippocampus")
    yv = np.array([float(r[0]) for r in rows])
    X = np.column_stack([np.ones(len(yv)), [r[1] for r in rows], [r[2] for r in rows]])
    beta = np.zeros(3)
    for _ in range(40):
        p = 1 / (1 + np.exp(-(X @ beta)))
        W = p * (1 - p)
        beta += np.linalg.solve(X.T @ (X * W[:, None]), X.T @ (yv - p))
    references["logistic_regression"] = beta
    return references


def federated_results(engine):
    results = {}
    results["linear_regression"] = run(
        engine, "linear_regression", ["lefthippocampus"], ["agevalue"]
    )["coefficients"]
    results["ttest_independent"] = run(
        engine, "ttest_independent", ["lefthippocampus"], ["gender"]
    )["t_statistic"]
    results["ttest_onesample"] = run(
        engine, "ttest_onesample", ["p_tau"], parameters={"mu": 50.0}
    )["t_statistic"]
    results["ttest_paired"] = run(
        engine, "ttest_paired", ["lefthippocampus", "righthippocampus"]
    )["t_statistic"]
    results["anova_oneway"] = run(
        engine, "anova_oneway", ["lefthippocampus"], ["alzheimerbroadcategory"]
    )["f_statistic"]
    results["pearson_correlation"] = run(
        engine, "pearson_correlation", ["lefthippocampus", "minimentalstate"]
    )["correlations"][0][1]
    results["pca"] = run(
        engine, "pca", ["lefthippocampus", "righthippocampus", "p_tau"]
    )["eigenvalues"]
    results["logistic_regression"] = run(
        engine, "logistic_regression", ["converted_ad"], ["p_tau", "lefthippocampus"]
    )["coefficients"]
    return results


def test_report_equivalence(engine, pooled):
    references = centralized_references(pooled)
    federated = federated_results(engine)
    lines = [
        "E3 — federated vs centralized equivalence (3 hospitals, plain path)",
        "",
        f"{'algorithm':<24}{'max relative error':>22}",
    ]
    for name in sorted(references):
        error = relative_error(federated[name], references[name])
        lines.append(f"{name:<24}{error:>22.2e}")
        assert error < 1e-6, f"{name} deviates from centralized: {error}"
    # the remaining paper algorithms run successfully federated
    extra = {
        "anova_twoway": run(engine, "anova_twoway", ["lefthippocampus"],
                            ["alzheimerbroadcategory", "gender"]),
        "kmeans": run(engine, "kmeans", ["ab_42", "p_tau"],
                      parameters={"k": 3, "seed": 1}),
        "naive_bayes": run(engine, "naive_bayes", ["alzheimerbroadcategory"],
                           ["lefthippocampus", "gender"]),
        "naive_bayes_cv": run(engine, "naive_bayes_cv", ["alzheimerbroadcategory"],
                              ["lefthippocampus", "gender"], {"n_splits": 3}),
        "cart": run(engine, "cart", ["alzheimerbroadcategory"],
                    ["lefthippocampus", "p_tau"], {"max_depth": 3}),
        "id3": run(engine, "id3", ["alzheimerbroadcategory"],
                   ["gender", "va_etiology"], {"max_depth": 2, "min_gain": 0.0}),
        "kaplan_meier": run(engine, "kaplan_meier",
                            ["survival_months", "event_observed"]),
        "calibration_belt": run(engine, "calibration_belt", ["converted_ad"],
                                ["predicted_risk"]),
        "linear_regression_cv": run(engine, "linear_regression_cv",
                                    ["lefthippocampus"], ["agevalue"],
                                    {"n_splits": 3}),
        "logistic_regression_cv": run(engine, "logistic_regression_cv",
                                      ["converted_ad"], ["p_tau"],
                                      {"n_splits": 3, "max_iterations": 8}),
        "descriptive_stats": run(engine, "descriptive_stats", ["p_tau"]),
    }
    lines.append("")
    lines.append(f"additionally executed federated: {', '.join(sorted(extra))}")
    lines.append(f"total algorithms exercised: {len(references) + len(extra)} (paper: 15+)")
    write_report("e3_equivalence", lines)
    assert len(references) + len(extra) >= 15


def test_benchmark_linear_regression_federated(benchmark, engine):
    benchmark.pedantic(
        run, args=(engine, "linear_regression", ["lefthippocampus"], ["agevalue"]),
        rounds=5, iterations=1,
    )


def test_benchmark_anova_federated(benchmark, engine):
    benchmark.pedantic(
        run, args=(engine, "anova_oneway", ["lefthippocampus"],
                   ["alzheimerbroadcategory"]),
        rounds=5, iterations=1,
    )
